"""Figure 9 bench: TIMELY's operating point vs starting conditions."""

from repro.experiments import fig09_timely_unfairness as fig09


def test_fig09_timely_unfairness(run_once):
    rows = run_once(fig09.run)
    print()
    print(fig09.report(rows))
    by_label = {r.label: r for r in rows}
    symmetric = by_label["(a) both 5Gbps at t=0"]
    late = by_label["(b) both 5Gbps, one 10ms late"]
    skewed = by_label["(c) 7Gbps vs 3Gbps"]
    # Identical symmetric starts stay symmetric...
    assert symmetric.jain_index > 0.99
    # ...while a late start or a skewed start lands on a persistently
    # unfair member of the Theorem-4 family.
    assert late.max_min > 1.3
    assert skewed.max_min > 1.5
    # And the system keeps oscillating in every case (no fixed point).
    for row in rows:
        assert row.queue_tail_std_kb > 1.0
