"""Figure 20 bench: feedback-delay jitter resilience."""

from repro.experiments import fig20_jitter as fig20


def test_fig20_jitter(run_once):
    rows = run_once(fig20.run)
    print()
    print(fig20.report(rows))
    table = {(r.protocol, r.jitter_us): r for r in rows}
    timely_clean = table[("patched_timely", 0.0)]
    timely_jittered = table[("patched_timely", 100.0)]
    dcqcn_clean = table[("dcqcn", 0.0)]
    dcqcn_jittered = table[("dcqcn", 100.0)]
    # Jitter lands inside TIMELY's *signal* and destabilizes it...
    assert timely_jittered.coefficient_of_variation > \
        5 * timely_clean.coefficient_of_variation
    # ...while DCQCN's mark is merely late: stability unaffected.
    assert dcqcn_jittered.coefficient_of_variation < \
        2 * dcqcn_clean.coefficient_of_variation + 0.05
