"""Figure 18 bench: DCQCN with a PI marking controller."""

import pytest

from repro.experiments import fig18_dcqcn_pi as fig18


def test_fig18_dcqcn_pi(run_once):
    rows = run_once(fig18.run, flow_counts=(2, 10, 64))
    print()
    print(fig18.report(rows))
    for row in rows:
        # Queue pinned to the same reference regardless of N, with
        # fair rates -- the RED operating point would instead drift
        # from ~20KB to beyond K_max across this sweep.
        assert row.pinned, f"N={row.num_flows}"
        assert row.jain_index > 0.999
        # The controller discovers each N's Eq. 11 marking rate.
        assert row.p_mark == pytest.approx(row.p_star_red, rel=0.15)
    # And p* itself varies by an order of magnitude across the sweep,
    # which is exactly the adaptation RED cannot do at fixed queue.
    assert rows[-1].p_mark > 5 * rows[0].p_mark
