"""Figure 5 bench: packet-level confirmation of the DCQCN instability."""

from repro.experiments import fig05_dcqcn_sim_instability as fig05


def test_fig05_sim_instability(run_once):
    rows = run_once(fig05.run, duration=0.05)
    print()
    print(fig05.report(rows))
    baseline, delayed = rows
    assert delayed.coefficient_of_variation > \
        2 * baseline.coefficient_of_variation
    assert delayed.queue_peak_kb > baseline.queue_peak_kb
