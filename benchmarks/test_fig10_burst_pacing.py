"""Figure 10 bench: per-burst pacing convergence vs incast collapse."""

from repro.experiments import fig10_burst_pacing as fig10


def test_fig10_burst_pacing(run_once):
    rows = run_once(fig10.run)
    print()
    print(fig10.report(rows))
    small, big = rows
    # 16KB bursts: the noise de-correlates the flows and the pair
    # converges near fair share at high utilization.
    assert small.recovered
    assert small.jain_index > 0.9
    # 64KB bursts: the initial incast slams both flows down, and the
    # delta-per-completion recovery is far too slow to refill the link
    # within the run.
    assert not big.recovered
    assert big.early_total_gbps < 0.5 * small.early_total_gbps
    # The colliding initial bursts stack most of two 64KB chunks into
    # the bottleneck queue.
    assert big.queue_peak_kb > 48.0
