"""Benches for the beyond-the-paper extensions (Section 7 future work
and the DESIGN.md ablations)."""

import math

from repro.experiments import (ablations, ext_burst_mitigation,
                               ext_convergence_time,
                               ext_dctcp_baseline,
                               ext_feedback_priority, ext_incast_pfc,
                               ext_latency_cdf, ext_leaf_spine,
                               ext_longflow_fairness,
                               ext_noise_decorrelation,
                               ext_parking_lot,
                               ext_pi_switch_sim, ext_stability_map)


def test_ext_parking_lot(run_once):
    rows = run_once(ext_parking_lot.run)
    print()
    print(ext_parking_lot.report(rows))
    by_key = {(r.protocol, r.n_segments): r for r in rows}
    # DCQCN: graceful multiplicative beat-down with hop count.
    dcqcn = [by_key[("dcqcn", n)].cross_fraction for n in (1, 2, 4)]
    assert dcqcn[0] > dcqcn[1] > dcqcn[2] > 0.2
    # Delay-based control: the multi-hop flow is starved outright (its
    # RTT sums every hop's queue, so its absolute-RTT error never
    # clears).
    assert by_key[("patched_timely", 2)].cross_fraction < 0.2


def test_ext_incast_pfc(run_once):
    rows = run_once(ext_incast_pfc.run)
    print()
    print(ext_incast_pfc.report(rows))
    by_config = {r.config: r for r in rows}
    assert by_config["plain"].dropped_packets > 0
    assert by_config["pfc"].dropped_packets == 0
    assert by_config["pfc"].completed == by_config["pfc"].senders
    assert by_config["dcqcn+pfc"].dropped_packets == 0
    assert by_config["dcqcn+pfc"].pauses < by_config["pfc"].pauses
    assert not math.isnan(by_config["dcqcn+pfc"].last_fct_ms)
    # The delay-based protocol needs PFC exactly as much (line-rate
    # start, no signal within the first RTT) and, unlike ECN, cannot
    # reduce the PAUSE churn within the epoch.
    assert by_config["timely"].dropped_packets > 0
    assert by_config["timely+pfc"].dropped_packets == 0
    assert by_config["dcqcn+pfc"].pauses < \
        by_config["timely+pfc"].pauses


def test_ext_pi_switch_sim(run_once):
    rows = run_once(ext_pi_switch_sim.run)
    print()
    print(ext_pi_switch_sim.report(rows))
    for row in rows:
        assert row.pinned
        assert row.jain_index > 0.95
    assert rows[-1].p_final > rows[0].p_final


def test_ext_burst_mitigation(run_once):
    rows = run_once(ext_burst_mitigation.run)
    print()
    print(ext_burst_mitigation.report(rows))
    by_fraction = {r.fraction: r for r in rows}
    assert not by_fraction[1.0].healthy      # the Fig. 10(b) collapse
    assert by_fraction[0.5].healthy          # the mitigation works...
    assert not by_fraction[0.25].healthy     # ...but is fragile


def test_ext_dctcp_baseline(run_once):
    rows = run_once(ext_dctcp_baseline.run, loads=(0.8,),
                    duration=0.2, drain=0.1)
    print()
    print(ext_dctcp_baseline.report(rows))
    by_protocol = {r.protocol: r for r in rows}
    dcqcn = by_protocol["dcqcn"]
    dctcp = by_protocol["dctcp"]
    # DCTCP's step marking holds the standing queue tighter...
    assert dctcp.queue_p90_kb < dcqcn.queue_p90_kb
    # ...but its slow-started small flows pay at the FCT tail versus
    # DCQCN's line-rate start.
    assert dctcp.p99_ms > dcqcn.p99_ms


def test_ext_leaf_spine(run_once):
    rows = run_once(ext_leaf_spine.run)
    print()
    print(ext_leaf_spine.report(rows))
    one, two = rows
    assert one.completed == one.flows
    assert two.completed == two.flows
    # Doubling the spine layer roughly halves the median FCT of the
    # all-cross-rack permutation.
    assert two.median_fct_ms < 0.7 * one.median_fct_ms
    # Static ECMP hashing leaves visible imbalance (the p99 price).
    assert two.spine_imbalance >= 1.0


def test_ext_feedback_priority(run_once):
    rows = run_once(ext_feedback_priority.run)
    print()
    print(ext_feedback_priority.report(rows))
    by_discipline = {r.discipline: r for r in rows}
    fifo = by_discipline["fifo"]
    priority = by_discipline["priority"]
    # Strict priority collapses CNP transit latency toward propagation
    # and tightens the forward queue.
    assert priority.cnp_delay_mean_us < 0.5 * fifo.cnp_delay_mean_us
    assert priority.forward_queue_std_kb < fifo.forward_queue_std_kb


def test_ext_convergence_time(run_once):
    rows = run_once(ext_convergence_time.run)
    print()
    print(ext_convergence_time.report(rows))
    for row in rows:
        assert row.newcomer_settle_ms is not None
    timid = next(r for r in rows if "C/20" in r.protocol)
    confident = next(r for r in rows if "C/2 " in r.protocol)
    assert timid.newcomer_settle_ms > 2 * confident.newcomer_settle_ms


def test_ext_stability_map(run_once):
    rows = run_once(ext_stability_map.run)
    print()
    print(ext_stability_map.report(rows))
    frontier = dict(ext_stability_map.boundary(rows))
    # The non-monotonic frontier: the tolerable delay dips in the
    # N~6-10 region and recovers on both sides.
    dip = min(v for v in frontier.values() if v is not None)
    dip_n = next(n for n, v in frontier.items() if v == dip)
    assert 4 <= dip_n <= 14
    assert frontier[1] > dip
    assert frontier[80] > dip


def test_ext_noise_decorrelation(run_once):
    rows = run_once(ext_noise_decorrelation.run)
    print()
    print(ext_noise_decorrelation.report(rows))
    by_noise = {r.noise_packets: r for r in rows}
    # Noiseless: Theorem 4 freezes the 7/3 asymmetry.
    assert by_noise[0.0].max_min > 2.5
    # Burst-scale noise de-correlates toward fairness (Fig. 10a's
    # conjecture, in fluid form).
    assert by_noise[16.0].max_min < 1.8
    assert by_noise[64.0].jain_index > by_noise[0.0].jain_index


def test_ext_latency_cdf(run_once):
    rows = run_once(ext_latency_cdf.run)
    print()
    print(ext_latency_cdf.report(rows))
    by_protocol = {r.protocol: r for r in rows}
    dcqcn_p99 = by_protocol["dcqcn"].latency_us[99]
    assert by_protocol["timely"].latency_us[99] > 1.5 * dcqcn_p99
    assert by_protocol["patched_timely"].latency_us[99] > \
        1.5 * dcqcn_p99


def test_ext_longflow_fairness(run_once):
    rows = run_once(ext_longflow_fairness.run)
    print()
    print(ext_longflow_fairness.report(rows))
    by_protocol = {r.protocol: r for r in rows}
    assert by_protocol["dcqcn"].jain_mean > 0.97
    assert by_protocol["dcqcn"].long_flow_share > 0.4
    assert by_protocol["timely"].long_flow_share < \
        0.3 * by_protocol["dcqcn"].long_flow_share


def test_ablations(run_once):
    def all_ablations():
        return {
            "cnp_timer": ablations.cnp_timer(),
            "ewma_gain": ablations.ewma_gain(),
            "weight": ablations.weight_halfwidth(),
            "clamp": ablations.gradient_clamp(),
        }

    results = run_once(all_ablations)
    print()
    print(ablations.report_cnp_timer(results["cnp_timer"]))
    print()
    print(ablations.report_ewma_gain(results["ewma_gain"]))
    print()
    print(ablations.report_weight_halfwidth(results["weight"]))
    print()
    print(ablations.report_gradient_clamp(results["clamp"]))
    # Theorem 2's speed/gentleness tradeoff: every g converges.
    for row in results["ewma_gain"]:
        assert row.metrics[0] < 1.0
    # The clamp rescues throughput under burst noise.
    unclamped, clamped = results["clamp"]
    assert clamped.metrics[0] > unclamped.metrics[0]
