"""Figure 4 bench: fluid-model (in)stability vs delay and flow count."""

from repro.experiments import fig04_dcqcn_delay_impact as fig04


def test_fig04_delay_impact(run_once):
    rows = run_once(fig04.run)
    print()
    print(fig04.report(rows))
    by_key = {(r.delay_us, r.num_flows): r for r in rows}
    # 4us: stable for every N.
    for n in (2, 10, 64):
        assert not by_key[(4.0, n)].oscillating
    # 85us: unstable exactly at N=10 -- the non-monotonic signature.
    assert by_key[(85.0, 10)].oscillating
    assert not by_key[(85.0, 2)].oscillating
    assert not by_key[(85.0, 64)].oscillating
