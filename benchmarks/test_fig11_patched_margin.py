"""Figure 11 bench: patched TIMELY phase margin vs flow count."""

import math

from repro.experiments import fig11_patched_phase_margin as fig11


def test_fig11_patched_margin(run_once):
    rows = run_once(fig11.run)
    print()
    print(fig11.report(rows))
    crossover = fig11.crossover_flows(rows)
    # Stable at moderate N, unstable past a crossover in the tens.
    assert crossover is not None
    assert 10 < crossover <= 40
    # Past the crossover the margin falls monotonically: more flows ->
    # bigger Eq. 31 queue -> longer Eq. 24 feedback delay.
    past = [r.margin_deg for r in rows
            if not math.isnan(r.margin_deg)
            and r.num_flows >= crossover]
    assert all(a > b for a, b in zip(past, past[1:]))
    delays = [r.feedback_delay_us for r in rows
              if not math.isnan(r.feedback_delay_us)]
    assert all(a < b for a, b in zip(delays, delays[1:]))
