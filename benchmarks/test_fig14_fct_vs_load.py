"""Figure 14 bench: small-flow FCT vs load on the Fig. 13 dumbbell."""

from repro.experiments import fct_study


def test_fig14_fct_vs_load(run_once):
    results = run_once(fct_study.run_load_sweep,
                       loads=(0.2, 0.4, 0.6, 0.8))
    print()
    print(fct_study.report_fct_vs_load(results))
    # FCT worsens with load for every protocol.
    for protocol, runs in results.items():
        p90s = [r.summary.p90_s for r in runs]
        assert p90s[-1] > p90s[0], protocol
    # At the highest load DCQCN's small-flow tail beats both
    # delay-based protocols (the paper's headline comparison).
    top = {p: runs[-1] for p, runs in results.items()}
    assert top["dcqcn"].summary.p90_s < top["timely"].summary.p90_s
    assert top["dcqcn"].summary.p90_s < \
        top["patched_timely"].summary.p90_s
    # Everyone still completes what was offered.
    for protocol, runs in results.items():
        for run in runs:
            assert run.completion_fraction > 0.9, (protocol, run.load)
