"""Figure 3 bench: DCQCN phase-margin sweeps (all three panels)."""

from repro.experiments import fig03_dcqcn_phase_margin as fig03


def test_fig03a_margin_vs_delay_and_flows(run_once):
    sweeps = run_once(fig03.panel_a)
    print()
    print(fig03.report(sweeps,
                       "Fig. 3(a) -- phase margin vs N per delay"))
    by_label = {s.label: s for s in sweeps}
    # Non-monotonic margin with a dip that goes unstable at >= 85us.
    for label in ("tau*=85us", "tau*=100us"):
        sweep = by_label[label]
        assert sweep.unstable_counts(), label
        assert sweep.margins_deg[0] > sweep.min_margin()
        assert sweep.margins_deg[-1] > sweep.min_margin()
    # Small delays keep every flow count stable.
    assert not by_label["tau*=4us"].unstable_counts()


def test_fig03b_margin_vs_rate_ai(run_once):
    sweeps = run_once(fig03.panel_b)
    print()
    print(fig03.report(sweeps,
                       "Fig. 3(b) -- phase margin vs N per R_AI "
                       "(100us delay)"))
    # The paper's claim: with small R_AI, DCQCN stays stable even at
    # 100us delay, while the default and larger steps go unstable in
    # the low-to-mid N dip (at very large N the ordering flips -- the
    # dip is what matters).
    small, default, large = sweeps
    assert not small.unstable_counts()
    assert default.unstable_counts()
    assert large.unstable_counts()
    for i, n in enumerate(small.flow_counts):
        if n <= 20:
            assert small.margins_deg[i] > large.margins_deg[i], n


def test_fig03c_margin_vs_kmax(run_once):
    sweeps = run_once(fig03.panel_c)
    print()
    print(fig03.report(sweeps,
                       "Fig. 3(c) -- phase margin vs N per K_max "
                       "(100us delay)"))
    narrow, mid, wide = sweeps
    for i in range(len(narrow.flow_counts)):
        assert wide.margins_deg[i] > narrow.margins_deg[i]
    assert not wide.unstable_counts()
