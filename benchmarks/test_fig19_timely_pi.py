"""Figure 19 bench: patched TIMELY with host-side PI controllers."""

from repro.experiments import fig19_timely_pi as fig19


def test_fig19_timely_pi(run_once):
    result = run_once(fig19.run)
    print()
    print(fig19.report(result))
    # Delay achieved: queue controlled to the 300KB reference...
    assert result.queue_pinned
    # ...fairness lost: the rate split froze whatever asymmetry the
    # per-host integrators accumulated (Theorem 6, delay side).
    assert result.max_min > 1.1
    assert abs(result.p_values[0] - result.p_values[1]) > 0.01
