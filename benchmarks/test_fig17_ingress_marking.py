"""Figure 17 bench: egress vs ingress ECN marking stability."""

from repro.experiments import fig17_ingress_marking as fig17


def test_fig17_ingress_marking(run_once):
    rows = run_once(fig17.run)
    print()
    print(fig17.report(rows))
    by_point = {r.marking_point: r for r in rows}
    ingress = by_point["ingress"]
    egress = by_point["egress"]
    assert ingress.coefficient_of_variation > \
        1.5 * egress.coefficient_of_variation
    assert ingress.queue_std_kb > egress.queue_std_kb
