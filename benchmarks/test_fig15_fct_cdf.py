"""Figure 15 bench: small-flow FCT CDF at load 0.8."""

import numpy as np

from repro.experiments import fig15_fct_cdf as fig15


def test_fig15_fct_cdf(run_once):
    results = run_once(fig15.run, load=0.8)
    print()
    print(fig15.report(results))
    # The delay-based protocols' tails (p95+) sit far above DCQCN's.
    dcqcn_p95 = np.percentile(results["dcqcn"].small_fcts, 95)
    timely_p95 = np.percentile(results["timely"].small_fcts, 95)
    patched_p95 = np.percentile(
        results["patched_timely"].small_fcts, 95)
    assert timely_p95 > dcqcn_p95
    assert patched_p95 > dcqcn_p95
    # While the fast half of the distribution is comparable: the gap
    # is a *tail* phenomenon (queue variability), not a constant slowdown.
    dcqcn_p50 = np.percentile(results["dcqcn"].small_fcts, 50)
    timely_p50 = np.percentile(results["timely"].small_fcts, 50)
    assert timely_p50 < 10 * dcqcn_p50
