"""Figure 8 bench: TIMELY fluid model vs packet simulation."""

from repro.experiments import fig08_timely_validation as fig08


def test_fig08_timely_validation(run_once):
    rows = run_once(fig08.run, flow_counts=(2, 10), duration=0.05)
    print()
    print(fig08.report(rows))
    for row in rows:
        assert row.rate_error < 0.25
        # Both the fluid model and the simulator limit-cycle: the tail
        # queue keeps a visibly nonzero swing in both.
        assert row.fluid_queue_std_kb > 0.5
        assert row.sim_queue_std_kb > 0.5
