"""Figure 16 bench: bottleneck queue behaviour at load 0.8."""

import numpy as np

from repro.experiments import fct_study


def test_fig16_queue_timeseries(run_once):
    def full_run():
        return [fct_study.run_protocol(protocol, 0.8)
                for protocol in fct_study.STUDY_PROTOCOLS]

    runs = run_once(full_run)
    print()
    print(fct_study.report_queue_stats(runs))
    by_protocol = {r.protocol: r for r in runs}
    dcqcn = by_protocol["dcqcn"].queue_bytes
    timely = by_protocol["timely"].queue_bytes
    patched = by_protocol["patched_timely"].queue_bytes
    # TIMELY's queue grows far beyond anything DCQCN sustains: its
    # extreme excursions dwarf DCQCN's 99th percentile.
    assert timely.max() > 2 * np.percentile(dcqcn, 99)
    assert patched.max() > np.percentile(dcqcn, 99)
    # DCQCN's p90 stays in the vicinity of the RED band (K_max=200KB).
    assert np.percentile(dcqcn, 90) < 400 * 1024
