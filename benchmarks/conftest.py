"""Benchmark harness configuration.

Every benchmark regenerates one paper figure: it runs the experiment
driver once (``pedantic`` with a single round -- these are simulations,
not microbenchmarks), prints the table of numbers the figure plots,
and asserts the qualitative shape the paper reports.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Execute an experiment exactly once under the benchmark timer."""

    def runner(fn, **kwargs):
        return benchmark.pedantic(fn, kwargs=kwargs, iterations=1,
                                  rounds=1)

    return runner
