"""Performance benchmarks: simulator and integrator throughput.

Unlike the figure benches (one-shot experiment runs), these are real
microbenchmarks -- pytest-benchmark repeats them and reports stable
timings, so regressions in the hot loops (event heap, port
serialization, DDE stepping) show up as numbers, not vibes.
"""

import numpy as np

from repro.core.fluid import dde
from repro.core.fluid.dcqcn import DCQCNFluidModel
from repro.core.params import DCQCNParams
from repro.sim.engine import Simulator
from repro.sim.link import Link, Port
from repro.sim.packet import Packet
from repro.sim.red import REDMarker
from repro.sim.topology import install_flow, single_switch


def test_event_engine_throughput(benchmark):
    """Raw scheduler: how many self-rescheduling events per second."""

    def run_engine():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 20_000:
                sim.schedule(1e-6, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return sim.events_processed

    events = benchmark(run_engine)
    assert events == 20_000


def test_port_serialization_throughput(benchmark):
    """Packets through a serializing port per benchmark round."""

    class Sink:
        name = "sink"

        def receive(self, packet, ingress=None):
            pass

    def run_port():
        sim = Simulator()
        port = Port(sim, 1.25e9, Link(sim, 1e-6, Sink()))
        for seq in range(10_000):
            port.send(Packet(0, 1024, "s", "sink", kind="data",
                             seq=seq))
        sim.run()
        return port.packets_transmitted

    transmitted = benchmark(run_port)
    assert transmitted == 10_000


def test_dcqcn_simulation_throughput(benchmark):
    """End-to-end: the Fig. 2 scenario for 2 ms of simulated time."""

    def run_sim():
        params = DCQCNParams.paper_default(capacity_gbps=40,
                                           num_flows=2)
        marker = REDMarker(params.red, params.mtu_bytes, seed=1)
        net = single_switch(2, link_gbps=40, marker=marker)
        for i in range(2):
            install_flow(net, "dcqcn", f"s{i}", "recv", None, 0.0,
                         params)
        net.sim.run(until=0.002)
        return net.sim.events_processed

    events = benchmark(run_sim)
    assert events > 10_000


def test_fluid_integrator_throughput(benchmark):
    """DDE stepping rate on the 10-flow DCQCN model."""

    params = DCQCNParams.paper_default(num_flows=10)
    model = DCQCNFluidModel(params)

    def run_fluid():
        trace = dde.integrate(model, t_end=0.002, dt=1e-6)
        return len(trace)

    steps = benchmark(run_fluid)
    assert steps == 2001


def test_history_lookup_throughput(benchmark):
    """Interpolated DDE history lookups -- the fluid models' hottest
    call (up to four per RK4 stage, every step)."""
    from repro.core.fluid.history import UniformHistory

    history = UniformHistory(0.0, 1e-6, np.zeros(31), capacity=2001)
    for step in range(1, 2001):
        history.append(np.full(31, float(step)))
    times = np.linspace(2e-5, 1.9e-3, 5000) + 3.3e-7
    rc = slice(21, 31)

    def lookups():
        total = 0.0
        for t in times:
            total += history(t)[0]
            total += history.interpolate(t, rc)[0]
            total += history.component(t, 0)
        return total

    total = benchmark(lookups)
    assert total > 0


def test_two_flow_dcqcn_fluid_throughput(benchmark):
    """The Fig. 2 fluid configuration: 2-flow DCQCN integration."""

    params = DCQCNParams.paper_default(capacity_gbps=40, num_flows=2)
    model = DCQCNFluidModel(params)

    def run_fluid():
        trace = dde.integrate(model, t_end=0.005, dt=1e-6,
                              record_stride=10)
        return len(trace)

    steps = benchmark(run_fluid)
    assert steps == 501


def test_stability_map_row(benchmark):
    """Macro bench: one full ext_stability_map row (11 margin grids)."""
    from repro.experiments.ext_stability_map import (DEFAULT_DELAYS_US,
                                                     compute_row)

    row = benchmark(compute_row, 10, DEFAULT_DELAYS_US, 40.0)
    assert len(row.margins_deg) == len(DEFAULT_DELAYS_US)
