"""Performance benchmarks: simulator and integrator throughput.

Unlike the figure benches (one-shot experiment runs), these are real
microbenchmarks -- pytest-benchmark repeats them and reports stable
timings, so regressions in the hot loops (event heap, port
serialization, DDE stepping) show up as numbers, not vibes.
"""

import numpy as np

from repro.core.fluid import dde
from repro.core.fluid.dcqcn import DCQCNFluidModel
from repro.core.params import DCQCNParams
from repro.sim.engine import Simulator
from repro.sim.link import Link, Port
from repro.sim.packet import Packet
from repro.sim.red import REDMarker
from repro.sim.topology import install_flow, single_switch


def test_event_engine_throughput(benchmark):
    """Raw scheduler: how many self-rescheduling events per second."""

    def run_engine():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 20_000:
                sim.schedule(1e-6, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return sim.events_processed

    events = benchmark(run_engine)
    assert events == 20_000


def test_port_serialization_throughput(benchmark):
    """Packets through a serializing port per benchmark round."""

    class Sink:
        name = "sink"

        def receive(self, packet, ingress=None):
            pass

    def run_port():
        sim = Simulator()
        port = Port(sim, 1.25e9, Link(sim, 1e-6, Sink()))
        for seq in range(10_000):
            port.send(Packet(0, 1024, "s", "sink", kind="data",
                             seq=seq))
        sim.run()
        return port.packets_transmitted

    transmitted = benchmark(run_port)
    assert transmitted == 10_000


def test_dcqcn_simulation_throughput(benchmark):
    """End-to-end: the Fig. 2 scenario for 2 ms of simulated time."""

    def run_sim():
        params = DCQCNParams.paper_default(capacity_gbps=40,
                                           num_flows=2)
        marker = REDMarker(params.red, params.mtu_bytes, seed=1)
        net = single_switch(2, link_gbps=40, marker=marker)
        for i in range(2):
            install_flow(net, "dcqcn", f"s{i}", "recv", None, 0.0,
                         params)
        net.sim.run(until=0.002)
        return net.sim.events_processed

    events = benchmark(run_sim)
    assert events > 10_000


def test_fluid_integrator_throughput(benchmark):
    """DDE stepping rate on the 10-flow DCQCN model."""

    params = DCQCNParams.paper_default(num_flows=10)
    model = DCQCNFluidModel(params)

    def run_fluid():
        trace = dde.integrate(model, t_end=0.002, dt=1e-6)
        return len(trace)

    steps = benchmark(run_fluid)
    assert steps == 2001
