"""Figure 2 bench: DCQCN fluid model vs packet simulation."""

from repro.experiments import fig02_dcqcn_validation as fig02


def test_fig02_dcqcn_validation(run_once):
    rows = run_once(fig02.run, flow_counts=(2, 10), duration=0.03)
    print()
    print(fig02.report(rows))
    for row in rows:
        # Fluid and simulator agree on steady-state rate to a few
        # percent and on the queue to tens of percent (packet-level
        # marking noise), as the paper's overlaid curves show.
        assert row.rate_error < 0.1
        assert row.queue_error < 0.5
    # The queue fixed point grows with N (Eq. 14 -> Eq. 9).
    assert rows[1].fixed_point_queue_kb > rows[0].fixed_point_queue_kb
