"""Figure 12 bench: patched TIMELY convergence and stability."""

from repro.experiments import fig12_patched_timely as fig12


def test_fig12_patched_timely(run_once):
    def full_run():
        return ([fig12.run_asymmetric()]
                + fig12.run_flow_sweep(flow_counts=(10, 40, 64),
                                       duration=0.15))

    rows = run_once(full_run)
    print()
    print(fig12.report(rows))
    asymmetric = rows[0]
    # (a): 7/3 Gbps starts converge to the fair share with the queue at
    # Eq. 31's value -- the designed contrast to Fig. 9(c).
    assert asymmetric.jain_index > 0.999
    assert asymmetric.queue_error < 0.1
    assert not asymmetric.oscillating
    # (b)/(c): moderate N stable, large N oscillating.
    by_n = {r.num_flows: r for r in rows[1:]}
    assert not by_n[10].oscillating
    assert by_n[64].oscillating
