"""Theorem benches: fixed points (Thm 1, 3-5) and convergence (Thm 2).

These regenerate the paper's analytic claims as numbers: the Eq. 11 /
Eq. 14 fixed points across flow counts, the Theorem-2 contraction
factors from the discrete model, and the TIMELY fixed-point taxonomy.
"""

import numpy as np
import pytest

from repro import units
from repro.analysis.reporting import format_table
from repro.core.convergence.discrete import (DiscreteDCQCN,
                                             alpha_fixed_point,
                                             contraction_rate)
from repro.core.fixedpoint.dcqcn import (approximate_p_star,
                                         solve_fixed_point)
from repro.core.fixedpoint.timely import (original_residual,
                                          patched_fixed_point,
                                          sample_fixed_points)
from repro.core.params import (DCQCNParams, PatchedTimelyParams,
                               TimelyParams)


def test_thm1_dcqcn_fixed_points(run_once):
    def sweep():
        rows = []
        for n in (2, 4, 8, 16, 32, 64):
            params = DCQCNParams.paper_default(num_flows=n)
            fp = solve_fixed_point(params, extend_red=True)
            rows.append([n, fp.p, approximate_p_star(params),
                         units.packets_to_kb(fp.queue), fp.alpha,
                         units.pps_to_gbps(fp.rate)])
        return rows

    rows = run_once(sweep)
    print()
    print(format_table(
        ["N", "p* (Eq.11)", "p* (Eq.14)", "q* (KB)", "alpha*",
         "R* (Gbps)"],
        rows, title="Theorem 1 -- DCQCN's unique fixed point vs N"))
    ps = [row[1] for row in rows]
    assert all(a < b for a, b in zip(ps, ps[1:]))
    for row in rows:
        # Eq. 14 tracks the exact root within its Taylor accuracy.
        assert row[2] == pytest.approx(row[1], rel=1.0)


def test_thm2_discrete_convergence(run_once):
    params = DCQCNParams.paper_default(num_flows=2)
    mtu = params.mtu_bytes

    def converge():
        model = DiscreteDCQCN(
            params,
            initial_rates=[units.gbps_to_pps(30, mtu),
                           units.gbps_to_pps(10, mtu)])
        return model.run_cycles(80)

    cycles = run_once(converge)
    spreads = [c.rate_spread for c in cycles]
    alphas = [float(np.mean(c.alphas)) for c in cycles]
    print()
    print(format_table(
        ["cycle", "rate spread (Gbps)", "alpha",
         "(1 - alpha/2)"],
        [[k, units.pps_to_gbps(spreads[k]), alphas[k],
          1 - alphas[k] / 2] for k in (0, 1, 2, 5, 10, 20, 40, 79)],
        title="Theorem 2 -- exponential contraction of the rate gap"))
    fitted = contraction_rate(spreads)
    print(f"fitted contraction/cycle: {fitted:.4f}; "
          f"alpha* = {alpha_fixed_point(params):.4f}")
    assert fitted < 1.0
    assert spreads[-1] < 0.05 * spreads[0]
    assert alphas[-1] > alpha_fixed_point(params) > 0


def test_thm3_thm4_timely_taxonomy(run_once):
    params = TimelyParams.paper_default(num_flows=2)

    def sample():
        return list(sample_fixed_points(params, 100, seed=1))

    points = run_once(sample)
    ratios = [p.fairness_ratio for p in points]
    print()
    print(format_table(
        ["statistic", "value"],
        [["family members sampled", len(points)],
         ["max max/min ratio", max(ratios)],
         ["median max/min ratio", float(np.median(ratios))],
         ["Thm 3 residual at fair point (pkts/s^2)",
          original_residual(params,
                            [params.fair_share] * 2,
                            (params.q_low + params.q_high) / 2)]],
        title="Theorems 3/4 -- no fixed point vs infinitely many"))
    assert max(ratios) > 10.0


def test_thm5_patched_queue_law(run_once):
    def sweep():
        rows = []
        for n in (2, 5, 10, 20, 40):
            patched = PatchedTimelyParams.paper_default(num_flows=n)
            point = patched_fixed_point(patched)
            rows.append([n,
                         units.packets_to_kb(point.queue),
                         units.pps_to_gbps(float(point.rates[0]))])
        return rows

    rows = run_once(sweep)
    print()
    print(format_table(
        ["N", "q* (KB, Eq.31)", "per-flow rate (Gbps)"],
        rows, title="Theorem 5 -- patched TIMELY's unique fixed point"))
    queues = [row[1] for row in rows]
    # Affine in N.
    increments = np.diff(queues) / np.diff([row[0] for row in rows])
    assert np.allclose(increments, increments[0], rtol=1e-6)
