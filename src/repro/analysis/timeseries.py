"""Time-series utilities shared by experiments and reports."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def tail_window(times: Sequence[float], values: Sequence[float],
                window: float) -> "tuple[np.ndarray, np.ndarray]":
    """The slice of a series within ``window`` seconds of its end."""
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if times.shape != values.shape:
        raise ValueError(
            f"shape mismatch: {times.shape} vs {values.shape}")
    if times.size == 0:
        raise ValueError("empty series")
    mask = times >= times[-1] - window
    return times[mask], values[mask]


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Std over mean; the oscillation yardstick in the stability tests."""
    values = np.asarray(values, dtype=float)
    mean = float(np.mean(values))
    if mean == 0.0:
        raise ValueError("series mean is zero; CoV undefined")
    return float(np.std(values)) / abs(mean)


def settling_fraction(values: Sequence[float], target: float,
                      tolerance_fraction: float) -> float:
    """Fraction of samples within +/- tolerance of a target value."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("empty series")
    band = abs(target) * tolerance_fraction
    return float(np.mean(np.abs(values - target) <= band))


def downsample(times: Sequence[float], values: Sequence[float],
               max_points: int) -> "tuple[np.ndarray, np.ndarray]":
    """Thin a series to at most ``max_points`` (for report printing)."""
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if max_points < 2:
        raise ValueError(f"max_points must be >= 2, got {max_points}")
    if times.size <= max_points:
        return times, values
    stride = int(np.ceil(times.size / max_points))
    return times[::stride], values[::stride]
