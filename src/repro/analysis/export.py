"""Structured export of experiment results (CSV / rows).

The report tables are for eyes; this module turns experiment results
into machine-readable rows so downstream users can plot the paper's
figures from their own tooling (``python -m repro run fig04 --csv
out/``).  Every experiment result in the registry is a dataclass (or a
list/dict of them), so generic dataclass flattening covers them all.
"""

from __future__ import annotations

import csv
import dataclasses
import io
from pathlib import Path
from typing import Any, Dict, List

import numpy as np


def flatten_result(result: Any) -> List[Dict[str, Any]]:
    """Normalize an experiment result into a list of flat dicts.

    Handles: a dataclass, a list of dataclasses, a dict of lists of
    dataclasses (the Fig. 14 shape, with the key exported as a
    ``group`` column), and nested dataclass fields.  Large array
    fields (time series) are summarized, not dumped.
    """
    if dataclasses.is_dataclass(result) and not isinstance(result, type):
        return [_flatten_one(result)]
    if isinstance(result, dict):
        rows: List[Dict[str, Any]] = []
        for key, value in result.items():
            for row in flatten_result(value):
                rows.append({"group": str(key), **row})
        return rows
    if isinstance(result, (list, tuple)):
        rows = []
        for item in result:
            rows.extend(flatten_result(item))
        return rows
    raise TypeError(
        f"cannot flatten result of type {type(result).__name__}")


def _flatten_one(item: Any, prefix: str = "") -> Dict[str, Any]:
    row: Dict[str, Any] = {}
    for field in dataclasses.fields(item):
        value = getattr(item, field.name)
        name = f"{prefix}{field.name}"
        if dataclasses.is_dataclass(value) and not isinstance(value,
                                                              type):
            row.update(_flatten_one(value, prefix=f"{name}."))
        elif isinstance(value, np.ndarray):
            # Time series do not belong in a summary CSV; keep the
            # shape-defining statistics.
            if value.size:
                row[f"{name}.count"] = int(value.size)
                row[f"{name}.mean"] = float(np.mean(value))
                row[f"{name}.max"] = float(np.max(value))
            else:
                row[f"{name}.count"] = 0
        elif isinstance(value, (list, tuple)):
            row[name] = "/".join(str(v) for v in value)
        else:
            row[name] = value
    return row


def to_csv(result: Any) -> str:
    """Render an experiment result as CSV text."""
    rows = flatten_result(result)
    if not rows:
        return ""
    # Union of keys, preserving first-seen order.
    headers: List[str] = []
    for row in rows:
        for key in row:
            if key not in headers:
                headers.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=headers,
                            restval="")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def write_csv(result: Any, path: "str | Path") -> Path:
    """Write an experiment result to ``path`` as CSV."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_csv(result))
    return path
