"""Measurement post-processing: FCT statistics, time-series tools,
oscillation detection, report tables, and CSV export."""
