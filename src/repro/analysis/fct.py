"""Flow-completion-time statistics for the Section 5.1 experiments."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.sim.flows import Flow

#: The paper follows pFabric: "small" flows send fewer than 100 KB.
SMALL_FLOW_BYTES = 100 * 1024


@dataclass(frozen=True)
class FCTSummary:
    """Percentile summary of a set of flow completion times."""

    count: int
    median_s: float
    p90_s: float
    p99_s: float
    mean_s: float

    @classmethod
    def from_fcts(cls, fcts: Sequence[float]) -> "FCTSummary":
        fcts = np.asarray(fcts, dtype=float)
        if fcts.size == 0:
            raise ValueError("no completed flows to summarize")
        return cls(count=int(fcts.size),
                   median_s=float(np.percentile(fcts, 50)),
                   p90_s=float(np.percentile(fcts, 90)),
                   p99_s=float(np.percentile(fcts, 99)),
                   mean_s=float(np.mean(fcts)))


def completed_fcts(flows: Sequence[Flow],
                   max_bytes: Optional[int] = None,
                   min_bytes: Optional[int] = None,
                   skip_before: float = 0.0) -> List[float]:
    """Extract FCTs of completed flows, optionally filtered by size.

    ``skip_before`` discards flows that *started* before the warmup
    cutoff, so long-run statistics are not polluted by the empty-network
    transient.
    """
    out = []
    for flow in flows:
        if not flow.completed or flow.size_bytes is None:
            continue
        if flow.start_time < skip_before:
            continue
        if max_bytes is not None and flow.size_bytes >= max_bytes:
            continue
        if min_bytes is not None and flow.size_bytes < min_bytes:
            continue
        out.append(flow.fct)
    return out


def small_flow_summary(flows: Sequence[Flow],
                       skip_before: float = 0.0) -> FCTSummary:
    """Median/90th/99th FCT of sub-100KB flows (the Fig. 14 metric)."""
    fcts = completed_fcts(flows, max_bytes=SMALL_FLOW_BYTES,
                          skip_before=skip_before)
    return FCTSummary.from_fcts(fcts)


def fct_cdf(fcts: Sequence[float]) -> "tuple[np.ndarray, np.ndarray]":
    """Empirical CDF ``(sorted_fcts, cumulative_fraction)`` (Fig. 15)."""
    fcts = np.sort(np.asarray(fcts, dtype=float))
    if fcts.size == 0:
        raise ValueError("no samples for a CDF")
    fractions = np.arange(1, fcts.size + 1) / fcts.size
    return fcts, fractions


def normalized_fcts(flows: Sequence[Flow], line_rate_bytes: float,
                    **filters) -> List[float]:
    """FCT slowdown: measured FCT over the ideal line-rate FCT.

    A slowdown of 1.0 means the flow moved at full line rate with no
    queueing; useful for comparing across flow sizes.
    """
    if line_rate_bytes <= 0:
        raise ValueError(
            f"line_rate_bytes must be positive, got {line_rate_bytes}")
    out = []
    for flow in flows:
        if not flow.completed or flow.size_bytes is None:
            continue
        if filters.get("skip_before") is not None and \
                flow.start_time < filters["skip_before"]:
            continue
        ideal = flow.size_bytes / line_rate_bytes
        out.append(flow.fct / ideal)
    return out
