"""Oscillation characterization: linking Bode predictions to traces.

When a loop's phase margin goes negative, the system settles into a
limit cycle whose frequency is close to the loop's gain-crossover
frequency -- the frequency where the Bode analysis located the
deficit.  This module extracts the dominant oscillation from a time
series (FFT on the detrended tail) so tests and experiments can close
that loop quantitatively: e.g. the DCQCN N=10/85us fluid instability
oscillates within a few tens of percent of the crossover frequency
:func:`repro.core.stability.dcqcn_margin.dcqcn_phase_margin` reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class OscillationEstimate:
    """Dominant oscillation of a (tail of a) time series."""

    frequency_hz: float      #: dominant frequency (0 if none found)
    amplitude: float         #: half peak-to-peak of that component
    power_fraction: float    #: its share of the non-DC spectral power

    @property
    def angular_frequency(self) -> float:
        """``2 pi f`` in rad/s, for comparison with crossover omegas."""
        return 2.0 * np.pi * self.frequency_hz

    @property
    def is_oscillatory(self) -> bool:
        """A real limit cycle concentrates power in one line."""
        return self.frequency_hz > 0 and self.power_fraction > 0.2


def dominant_oscillation(times: Sequence[float],
                         values: Sequence[float]) -> OscillationEstimate:
    """Estimate the dominant periodic component of a series.

    The series must be uniformly sampled (the integrator and monitors
    produce such series).  The mean and best-fit linear trend are
    removed first so slow drift does not masquerade as oscillation.
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if times.shape != values.shape:
        raise ValueError(
            f"shape mismatch: {times.shape} vs {values.shape}")
    if times.size < 8:
        raise ValueError("need at least 8 samples")
    steps = np.diff(times)
    dt = float(np.mean(steps))
    if dt <= 0 or np.max(np.abs(steps - dt)) > 1e-6 * max(dt, 1e-12):
        raise ValueError("series must be uniformly sampled")

    detrended = values - np.polyval(
        np.polyfit(times, values, 1), times)
    spectrum = np.fft.rfft(detrended * np.hanning(detrended.size))
    power = np.abs(spectrum) ** 2
    power[0] = 0.0  # DC already removed; kill residue
    total = float(np.sum(power))
    # Pure numerical residue (a constant or perfectly linear series)
    # is not an oscillation: compare against the signal's own scale.
    scale = float(np.sum(values ** 2)) + 1.0
    if total <= 1e-18 * scale:
        return OscillationEstimate(0.0, 0.0, 0.0)
    peak = int(np.argmax(power))
    frequencies = np.fft.rfftfreq(detrended.size, d=dt)
    # Hann-windowed single-line amplitude: |X| * 2 / (N * 0.5).
    amplitude = float(np.abs(spectrum[peak]) * 4.0 / detrended.size)
    return OscillationEstimate(
        frequency_hz=float(frequencies[peak]),
        amplitude=amplitude,
        power_fraction=float(power[peak] / total))


def trace_oscillation(trace, label: str,
                      window: float) -> OscillationEstimate:
    """Convenience: dominant oscillation of a FluidTrace tail."""
    mask = trace.times >= trace.times[-1] - window
    return dominant_oscillation(trace.times[mask],
                                trace.column(label)[mask])
