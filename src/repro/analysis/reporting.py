"""Plain-text tables and series dumps for the benchmark harness.

The benchmarks regenerate each paper figure as printed rows (the
numbers one would plot); these helpers keep that output uniform.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned monospace table.

    Floats are shown with 4 significant digits; everything else via
    ``str``.
    """
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    str_rows: List[List[str]] = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are "
                f"{len(headers)} headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i])
                         for i, cell in enumerate(cells))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)


def format_series(name: str, times: Sequence[float],
                  values: Sequence[float], time_unit: str = "ms",
                  time_scale: float = 1e3,
                  max_points: int = 12) -> str:
    """One-line summary of a time series, thinned for readability."""
    times = list(times)
    values = list(values)
    if len(times) != len(values):
        raise ValueError(
            f"series length mismatch: {len(times)} vs {len(values)}")
    if not times:
        return f"{name}: (empty)"
    stride = max(1, len(times) // max_points)
    points = ", ".join(
        f"{t * time_scale:.3g}{time_unit}={v:.4g}"
        for t, v in list(zip(times, values))[::stride])
    return f"{name}: {points}"
