"""Reproduction of *ECN or Delay: Lessons Learnt from Analysis of
DCQCN and TIMELY* (Zhu, Ghobadi, Misra, Padhye -- CoNEXT 2016).

The package is organized as the paper is:

* :mod:`repro.core` -- the analytic toolkit: delay-ODE fluid models of
  DCQCN (Fig. 1), TIMELY (Fig. 7), patched TIMELY (Eq. 29) and their
  PI-controlled variants; fixed-point solvers (Theorems 1, 3-5);
  Bode phase-margin stability analysis (Fig. 3, Fig. 11, App. A);
  and the discrete AIMD convergence model (Theorem 2, App. B).
* :mod:`repro.sim` -- a packet-level discrete-event simulator standing
  in for the authors' NS3 setup: switches with egress/ingress RED or
  PI marking, PFC, and full DCQCN / TIMELY / patched-TIMELY endpoint
  state machines.
* :mod:`repro.workloads` -- the Section 5.1 traffic model (DCTCP
  web-search sizes, Poisson arrivals).
* :mod:`repro.analysis` -- FCT statistics, fairness, reporting.
* :mod:`repro.experiments` -- one driver per paper figure.

Quickstart::

    from repro import DCQCNParams, solve_fixed_point
    params = DCQCNParams.paper_default(num_flows=10)
    print(solve_fixed_point(params))
"""

from repro.core.convergence.discrete import DiscreteDCQCN
from repro.core.convergence.metrics import jain_fairness
from repro.core.fixedpoint.dcqcn import (approximate_p_star,
                                         solve_fixed_point)
from repro.core.fixedpoint.timely import patched_fixed_point
from repro.core.fluid import dde
from repro.core.fluid.dcqcn import DCQCNFluidModel
from repro.core.fluid.dctcp import DCTCPFluidModel
from repro.core.fluid.noisy_timely import NoisyTimelyFluidModel
from repro.core.fluid.patched_timely import PatchedTimelyFluidModel
from repro.core.fluid.pi import (DCQCNPIFluidModel,
                                 PatchedTimelyPIFluidModel)
from repro.core.fluid.timely import TimelyFluidModel
from repro.core.params import (DCQCNParams, DCTCPParams, PIParams,
                               PatchedTimelyParams, REDParams,
                               TimelyParams)
from repro.core.stability.dcqcn_margin import dcqcn_phase_margin
from repro.core.stability.timely_margin import patched_timely_phase_margin

__version__ = "1.0.0"

__all__ = [
    "DCQCNFluidModel",
    "DCQCNPIFluidModel",
    "DCQCNParams",
    "DCTCPFluidModel",
    "DCTCPParams",
    "DiscreteDCQCN",
    "NoisyTimelyFluidModel",
    "PIParams",
    "PatchedTimelyFluidModel",
    "PatchedTimelyPIFluidModel",
    "PatchedTimelyParams",
    "REDParams",
    "TimelyFluidModel",
    "TimelyParams",
    "approximate_p_star",
    "dcqcn_phase_margin",
    "dde",
    "jain_fairness",
    "patched_fixed_point",
    "patched_timely_phase_margin",
    "solve_fixed_point",
]
