"""Sweep-execution backends: in-process, pool, and multi-host queue.

:class:`~repro.perf.sweep.SweepRunner` decides *what* to run -- cache
lookups, journaling, retry budgets, result ordering -- and delegates
*where* cells execute to a :class:`SweepBackend`:

:class:`InProcessBackend`
    Serial execution in the calling process.  Zero dispatch overhead,
    no hang protection; the baseline every other backend must be
    bit-identical to.

:class:`PoolBackend`
    Today's supervised ``ProcessPoolExecutor`` fan-out (respawn on
    breakage, width-halving degradation, per-cell timeouts).

:class:`QueueBackend`
    A shared-filesystem job queue coordinating any number of worker
    processes -- on this host or others mounting the same directory
    (see :mod:`repro.perf.worker` and ``python -m repro worker``).

The queue protocol is robustness-first.  Every transition is an
atomic rename on one directory tree::

    queue_dir/
      tasks/<key>.json     ready cells (coordinator enqueues,
                           workers claim by renaming into claims/)
      claims/<key>.json    leased cells; the file's mtime is the
                           lease heartbeat, renewed by the worker
      results/<key>-<fp>.json
                           completed or terminally-failed cells,
                           namespaced by code fingerprint so
                           coordinators on different checkouts
                           sharing one queue cannot destroy each
                           other's output
      workers/<id>.json    worker registrations; mtime = liveness,
                           payload carries the worker's code
                           fingerprint

* **Claiming** is ``os.rename(tasks/K, claims/K)`` -- exactly one
  worker wins, losers get ``FileNotFoundError`` and move on.
* **Leases** expire by *mtime age*, not by timestamps written inside
  the file, so a worker with a skewed wall clock cannot fabricate a
  fresh lease (the filesystem stamps the mtime) and cannot have its
  live lease stolen for the same reason.  Heartbeat renewal rewrites
  the claim atomically (tmp + fsync + rename), bumping the mtime.
* **Expired leases** are stolen by whoever notices first (coordinator
  or an idle worker): the cell is re-queued with its cross-worker
  ``steals`` count incremented.  At-least-once execution is safe
  because cells are deterministic and content-addressed -- a stolen
  cell recomputed by two workers produces byte-identical results.
* **Poison cells** whose ``steals`` exceed the travelling budget are
  terminally failed *in the queue* (a ``worker-lost`` result), so a
  worker-killing cell quarantines globally instead of ping-ponging
  between hosts forever.
* **Graceful degradation**: a coordinator that sees no *compatible*
  live worker -- one whose registration advertises the same code
  fingerprint as the tasks it enqueued -- for ``worker_grace``
  seconds withdraws its cells from the queue and falls back to the
  pool backend (which itself degrades to a serial drain), preserving
  the no-policy raise-on-failure contract.  A heartbeating fleet on
  a different checkout does not count: those workers skip foreign
  tasks, so waiting on them would hang forever.

Backend selection is ambient as well as explicit: the CLI's
``--backend``/``--queue-dir`` flags install a process default via
:func:`use_backend`, which every :class:`SweepRunner` without an
explicit ``backend=`` consults -- so existing sweep-backed
experiments run distributed unchanged.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from contextlib import contextmanager
from pathlib import Path
from typing import (Any, Callable, Dict, Iterator, List, Optional,
                    Tuple, Union)

from repro.obs import metrics as _metrics
from repro.perf.resilience import (decode_value, encode_value)

#: Queue task/result storage format; bump when fields change meaning.
TASK_VERSION = 1

#: Default seconds without a heartbeat before a lease (or a worker
#: registration) is considered dead.
DEFAULT_LEASE_TTL = 10.0

#: Default coordinator poll period, seconds.
DEFAULT_POLL_S = 0.1

#: Default seconds the coordinator waits for any live worker before
#: degrading to local (pool, then serial) execution.
DEFAULT_WORKER_GRACE = 20.0

#: Backend names accepted by :func:`resolve_backend` and the CLI.
BACKEND_CHOICES = ("auto", "inprocess", "pool", "queue")


# -- small filesystem helpers -------------------------------------------------


def _atomic_write_json(path: Path, payload: dict) -> None:
    """Write ``payload`` atomically: tmp + fsync + rename.

    The fsync-before-rename matters on the shared filesystems the
    queue targets: without it a crash can publish a name pointing at
    unwritten bytes.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + f".tmp-{os.getpid()}")
    with open(tmp, "w", encoding="utf-8") as stream:
        json.dump(payload, stream, sort_keys=True, default=str)
        stream.write("\n")
        stream.flush()
        os.fsync(stream.fileno())
    os.replace(tmp, path)


def _read_json(path: Path) -> Optional[dict]:
    """Best-effort JSON read: ``None`` on missing/torn/garbage files.

    Every queue file is written atomically, so a torn read means the
    file vanished (claimed/stolen) between the directory scan and the
    open, or a foreign writer misbehaved -- in either case the right
    move for a robust peer is to skip it this poll.
    """
    try:
        with open(path, "r", encoding="utf-8") as stream:
            return json.load(stream)
    except (OSError, json.JSONDecodeError):
        return None


def _mtime_age(path: Path, now: Optional[float] = None
               ) -> Optional[float]:
    """Seconds since ``path`` was last written; ``None`` if gone."""
    try:
        mtime = path.stat().st_mtime
    except OSError:
        return None
    return (now if now is not None else time.time()) - mtime


class QueueLayout:
    """Path arithmetic for one queue directory (shared-FS safe)."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.tasks = self.root / "tasks"
        self.claims = self.root / "claims"
        self.results = self.root / "results"
        self.workers = self.root / "workers"

    def ensure(self) -> "QueueLayout":
        for directory in (self.tasks, self.claims, self.results,
                          self.workers):
            directory.mkdir(parents=True, exist_ok=True)
        return self

    def task_path(self, key: str) -> Path:
        return self.tasks / f"{key}.json"

    def claim_path(self, key: str) -> Path:
        return self.claims / f"{key}.json"

    def result_path(self, key: str, fingerprint: str) -> Path:
        """Results are namespaced by code fingerprint: two
        coordinators on different checkouts sharing this queue park
        and consume results under different names, so neither can
        delete (or overwrite) the other's completed work."""
        return self.results / f"{key}-{fingerprint[:12]}.json"

    def worker_path(self, worker_id: str) -> Path:
        return self.workers / f"{worker_id}.json"

    def task_keys(self) -> List[str]:
        """Keys currently waiting in ``tasks/`` (sorted, stable)."""
        try:
            names = sorted(os.listdir(self.tasks))
        except OSError:
            return []
        return [name[:-5] for name in names
                if name.endswith(".json")]

    def claim_keys(self) -> List[str]:
        try:
            names = sorted(os.listdir(self.claims))
        except OSError:
            return []
        return [name[:-5] for name in names
                if name.endswith(".json")]

    def live_workers(self, ttl: float,
                     now: Optional[float] = None,
                     fingerprint: Optional[str] = None
                     ) -> Dict[str, float]:
        """worker id -> heartbeat age, for registrations younger
        than ``ttl`` (liveness is mtime-based: clock-skew immune).

        With ``fingerprint`` set, only workers whose registration
        advertises that code fingerprint count -- a live fleet on a
        different checkout skips this coordinator's tasks, so for
        grace/fallback purposes it is as good as dead.
        """
        live: Dict[str, float] = {}
        try:
            names = os.listdir(self.workers)
        except OSError:
            return live
        for name in names:
            if not name.endswith(".json"):
                continue
            age = _mtime_age(self.workers / name, now)
            if age is None or age >= ttl:
                continue
            if fingerprint is not None:
                payload = _read_json(self.workers / name)
                if payload is None or \
                        payload.get("fingerprint") != fingerprint:
                    continue
            live[name[:-5]] = age
        return live


# -- task / result payloads ---------------------------------------------------


def make_task(experiment: str, index: int, key: str, fn_spec: str,
              kwargs: Dict[str, Any], fingerprint: str,
              max_attempts: int, max_steals: int,
              trace_id: Optional[str] = None,
              trace_root: Optional[str] = None) -> dict:
    """The JSON payload one queued cell travels as.

    ``trace_id``/``trace_root`` stitch the cell into a cross-host
    fleet trace (see :mod:`repro.obs.spans`): whichever worker
    eventually executes the cell -- the original claimer or a
    stealer -- records its span under the coordinator's root.
    """
    task = {"version": TASK_VERSION, "experiment": experiment,
            "index": index, "key": key, "fn": fn_spec,
            "kwargs": encode_value(kwargs),
            "fingerprint": fingerprint,
            "attempts": 0, "steals": 0,
            "max_attempts": int(max_attempts),
            "max_steals": int(max_steals),
            "enqueued_ts": time.time()}
    if trace_id:
        task["trace_id"] = trace_id
        task["trace_root"] = trace_root \
            or f"coordinator[{experiment}]"
    return task


def make_result(task: dict, value: Any, elapsed: float,
                worker_id: str) -> dict:
    return {"version": TASK_VERSION, "ok": True,
            "key": task["key"], "experiment": task["experiment"],
            "fingerprint": task["fingerprint"],
            "value": encode_value(value),
            "elapsed_s": float(elapsed),
            "attempts": task.get("attempts", 0),
            "steals": task.get("steals", 0),
            "worker": worker_id, "ts": time.time()}


def make_failure_result(task: dict, kind: str, error_type: str,
                        error_message: str, traceback_text: str,
                        worker_id: str,
                        error: Optional[BaseException] = None) -> dict:
    payload = {"version": TASK_VERSION, "ok": False,
               "key": task["key"], "experiment": task["experiment"],
               "fingerprint": task["fingerprint"],
               "kind": kind, "error_type": error_type,
               "error_message": error_message,
               "traceback": traceback_text,
               "attempts": task.get("attempts", 0),
               "steals": task.get("steals", 0),
               "worker": worker_id, "ts": time.time()}
    if error is not None:
        # Best-effort exception transport so a no-policy coordinator
        # can re-raise the original type, as the pool backend does.
        try:
            payload["error_pickle"] = encode_value(error)
        except Exception:
            pass
    return payload


def steal_expired_leases(layout: QueueLayout, lease_ttl: float,
                         stealer: str = "?") -> Tuple[int, int]:
    """Re-queue (or terminally fail) every expired lease.

    Shared by the coordinator and idle workers, so a dead worker's
    cells recover no matter who survives.  Returns ``(stolen,
    quarantined)`` counts.  A cell whose cross-worker ``steals``
    budget is exhausted is failed in the queue as ``worker-lost``
    instead of re-queued -- that is the global poison quarantine.
    """
    registry = _metrics.get_registry()
    stolen = quarantined = 0
    for key in layout.claim_keys():
        claim = layout.claim_path(key)
        age = _mtime_age(claim)
        if age is None or age < lease_ttl:
            continue
        task = _read_json(claim)
        if task is None:
            continue  # torn or vanished under us; next poll
        task = dict(task)
        holder = task.pop("worker", None)
        task.pop("claimed_ts", None)
        task.pop("beats", None)
        task["steals"] = int(task.get("steals", 0)) + 1
        registry.counter("perf.queue.lease_expired_total").inc()
        if task["steals"] > int(task.get("max_steals", 0)):
            failure = make_failure_result(
                task, kind="worker-lost", error_type="WorkerLost",
                error_message=(f"lease expired {task['steals']} "
                               f"time(s); last holder "
                               f"{holder or 'unknown'} presumed "
                               f"dead"),
                traceback_text="", worker_id=stealer)
            _atomic_write_json(
                layout.result_path(key,
                                   task.get("fingerprint") or ""),
                failure)
            quarantined += 1
            _worker_event("cell_quarantined", key=key,
                          worker=stealer, steals=task["steals"])
        else:
            _atomic_write_json(layout.task_path(key), task)
            stolen += 1
            registry.counter("perf.queue.cells_stolen_total").inc()
            _worker_event("cell_stolen", key=key, worker=stealer,
                          previous_holder=holder,
                          steals=task["steals"], lease_age_s=age)
        try:
            os.unlink(claim)
        except OSError:
            pass  # a concurrent stealer beat us to it
    return stolen, quarantined


def _worker_event(event: str, **fields: Any) -> None:
    """Append a ``worker`` event to the active run log, if any."""
    from repro.obs import telemetry as _telemetry
    bundle = _telemetry.current()
    if bundle is None:
        return
    try:
        bundle.run_log.worker(event, **fields)
    except ValueError:
        pass  # run log already finished/closed


def _trace_event(trace_id: str, **fields: Any) -> None:
    """Anchor the active run log to a fleet trace, if any."""
    from repro.obs import telemetry as _telemetry
    bundle = _telemetry.current()
    if bundle is None:
        return
    try:
        bundle.run_log.trace(trace_id, **fields)
    except ValueError:
        pass  # run log already finished/closed


# -- the backend abstraction --------------------------------------------------


class SweepBackend:
    """Where sweep cells execute; the runner supplies everything else.

    ``execute`` receives the owning
    :class:`~repro.perf.sweep.SweepRunner` (for its policy, cache
    fingerprint and serial/pool machinery), the cell function, the
    list of :class:`~repro.perf.sweep._Pending` entries, and the
    ``finish`` callback that slots results/failures and feeds the
    journal + cache.  Implementations must call ``finish`` exactly
    once per entry (or raise).
    """

    name = "abstract"

    #: Whether entries must carry content-address keys (the queue
    #: backend files cells by key; local backends don't need them).
    requires_keys = False

    def execute(self, runner, fn: Callable[..., Any],
                pending: List[Any],
                finish: Callable[..., None]) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class InProcessBackend(SweepBackend):
    """Serial in-process execution (the bit-identity baseline)."""

    name = "inprocess"

    def execute(self, runner, fn, pending, finish) -> None:
        runner._execute_serial(fn, pending, finish)


class PoolBackend(SweepBackend):
    """Supervised local process-pool execution.

    Wraps the runner's ``_execute_pool`` -- BrokenProcessPool
    respawn, width-halving degradation, per-cell timeouts -- with the
    same degenerate-case guard the auto path uses: one worker or one
    cell runs serially rather than paying pool spin-up for nothing.
    """

    name = "pool"

    def execute(self, runner, fn, pending, finish) -> None:
        if runner.workers <= 1 or len(pending) <= 1:
            runner._execute_serial(fn, pending, finish)
        else:
            runner._execute_pool(fn, pending, finish)


class QueueBackend(SweepBackend):
    """Multi-host execution through a shared-filesystem job queue.

    Parameters
    ----------
    queue_dir:
        The shared directory (see the module docstring for layout).
        Every coordinator and worker pointed at the same directory
        cooperates on the same queue.
    lease_ttl:
        Seconds without a heartbeat before a lease or worker
        registration is presumed dead.  Must comfortably exceed the
        workers' heartbeat interval (workers default to ``ttl / 4``).
    poll_interval:
        Coordinator poll period, seconds.
    worker_grace:
        Seconds the coordinator tolerates *zero compatible live
        workers* (live registrations advertising the same code
        fingerprint as its tasks) before withdrawing its cells and
        degrading to local execution.  ``None`` disables degradation
        (wait forever -- strict distributed mode).
    """

    name = "queue"
    requires_keys = True

    def __init__(self, queue_dir: Union[str, Path],
                 lease_ttl: float = DEFAULT_LEASE_TTL,
                 poll_interval: float = DEFAULT_POLL_S,
                 worker_grace: Optional[float] = DEFAULT_WORKER_GRACE):
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be positive, "
                             f"got {lease_ttl}")
        self.layout = QueueLayout(queue_dir)
        self.lease_ttl = float(lease_ttl)
        self.poll_interval = float(poll_interval)
        self.worker_grace = worker_grace

    def __repr__(self) -> str:
        return (f"QueueBackend({str(self.layout.root)!r}, "
                f"lease_ttl={self.lease_ttl})")

    # -- coordinator ------------------------------------------------------

    def execute(self, runner, fn, pending, finish) -> None:
        from repro.obs import spans as _spans
        from repro.perf.cache import code_fingerprint
        from repro.perf.resilience import _qualified_name
        from repro.perf.sweep import DEFAULT_POOL_RESPAWNS, _sweep_event

        policy = runner.resilience
        label = runner.experiment_id or getattr(fn, "__name__",
                                                "sweep")
        registry = _metrics.get_registry()
        histogram = registry.histogram("perf.sweep.cell_seconds")
        layout = self.layout.ensure()
        fingerprint = runner.cache.fingerprint if runner.cache \
            else code_fingerprint()
        max_retries = policy.max_retries if policy is not None else 0
        max_steals = max_retries + (policy.max_pool_respawns
                                    if policy is not None
                                    else DEFAULT_POOL_RESPAWNS)
        sleep = policy.sleep if policy is not None else time.sleep
        fn_spec = _qualified_name(fn)
        trace_id = _spans.new_trace_id(label)
        trace_root = f"coordinator[{label}]"
        dispatch_ts = time.time()
        dispatch_wall = time.perf_counter()
        dispatch_cpu = time.process_time()

        outstanding: Dict[str, Any] = {}
        enqueued = 0
        for entry in pending:
            if entry.key is None:  # pragma: no cover - map() keys all
                raise ValueError("queue backend requires keyed cells")
            # A valid parked result (an earlier coordinator crashed
            # after a worker finished the cell) completes instantly.
            if self._consume_result(runner, fn, entry, finish,
                                    fingerprint, histogram):
                continue
            task = make_task(label, entry.index, entry.key, fn_spec,
                             entry.cell, fingerprint,
                             max_attempts=max_retries + 1,
                             max_steals=max_steals,
                             trace_id=trace_id,
                             trace_root=trace_root)
            _atomic_write_json(layout.task_path(entry.key), task)
            outstanding[entry.key] = entry
            enqueued += 1

        _sweep_event("queue_dispatch", experiment=label,
                     queue_dir=str(layout.root), cells=enqueued)
        _trace_event(trace_id, queue_dir=str(layout.root),
                     cells=enqueued)
        known_workers: Dict[str, float] = {}
        grace_started = time.monotonic()
        status = "ok"
        try:
            while outstanding:
                progressed = False
                for key in list(outstanding):
                    entry = outstanding[key]
                    if self._consume_result(runner, fn, entry,
                                            finish, fingerprint,
                                            histogram):
                        del outstanding[key]
                        progressed = True
                steal_expired_leases(layout, self.lease_ttl,
                                     stealer="coordinator")
                live = layout.live_workers(self.lease_ttl)
                self._track_workers(known_workers, live)
                registry.gauge("perf.queue.workers_live").set(
                    len(live))
                registry.gauge("perf.queue.depth").set(
                    len(layout.task_keys()))
                # Only workers that can actually execute our tasks
                # (same code fingerprint) hold off the grace timer;
                # a heartbeating fleet on a foreign checkout skips
                # our cells, so waiting on it would hang forever.
                compatible = layout.live_workers(
                    self.lease_ttl, fingerprint=fingerprint)
                if compatible or progressed:
                    grace_started = time.monotonic()
                elif self.worker_grace is not None and \
                        time.monotonic() - grace_started \
                        > self.worker_grace:
                    status = "fallback"
                    self._fall_back(runner, fn, outstanding, finish)
                    return
                if outstanding:
                    sleep(self.poll_interval)
        except BaseException:
            # Interrupt or coordinator-side failure: leave no orphan
            # tasks for unrelated sweeps to trip over.
            status = "error"
            self._withdraw(outstanding)
            raise
        finally:
            self._record_trace_root(
                trace_id, trace_root, dispatch_ts,
                wall_s=time.perf_counter() - dispatch_wall,
                cpu_s=time.process_time() - dispatch_cpu,
                cells=enqueued, status=status)

    def _record_trace_root(self, trace_id: str, trace_root: str,
                           ts: float, wall_s: float, cpu_s: float,
                           cells: int, status: str) -> None:
        """Append the coordinator's root span to its trace shard, so
        ``repro report --fleet`` has a real (not synthesized) root
        covering the whole dispatch."""
        import socket as _socket

        from repro.obs import spans as _spans
        from repro.obs.metrics import sanitize
        shard = (f"coordinator-{sanitize(_socket.gethostname())}"
                 f"-{os.getpid()}")
        record = {"trace_id": trace_id, "name": trace_root,
                  "path": trace_root, "ts": ts, "wall_s": wall_s,
                  "cpu_s": cpu_s, "cells": cells, "status": status}
        try:
            _spans.append_trace_record(
                _spans.trace_shard_path(self.layout.root, shard),
                record)
        except OSError:  # pragma: no cover - transient shared-FS
            pass

    # -- coordinator helpers ----------------------------------------------

    def _consume_result(self, runner, fn, entry, finish,
                        fingerprint: str, histogram) -> bool:
        """Fold one parked result into the sweep, if present/valid."""
        path = self.layout.result_path(entry.key, fingerprint)
        result = _read_json(path)
        if result is None:
            return False
        if result.get("version") != TASK_VERSION \
                or result.get("key") != entry.key \
                or result.get("fingerprint") != fingerprint:
            # Junk in our own fingerprint namespace (results are
            # filed as <key>-<fingerprint>, so another coordinator's
            # valid output can never appear here): discard and
            # recompute.
            try:
                os.unlink(path)
            except OSError:
                pass
            return False
        if result.get("ok"):
            try:
                value = decode_value(result["value"])
            except Exception:
                try:
                    os.unlink(path)
                except OSError:
                    pass
                return False
            elapsed = float(result.get("elapsed_s", 0.0))
            attempts = int(result.get("attempts", 0)) \
                + int(result.get("steals", 0)) + 1
            histogram.observe(elapsed)
            _worker_event("cell_completed", key=entry.key,
                          index=entry.index,
                          worker=result.get("worker"),
                          elapsed_s=elapsed, attempts=attempts)
            finish(entry, value, attempts, elapsed)
        else:
            self._handle_failure(runner, fn, entry, finish, result,
                                 fingerprint)
        self._cleanup_key(entry.key, fingerprint)
        return True

    def _handle_failure(self, runner, fn, entry, finish,
                        result: dict, fingerprint: str) -> None:
        """A terminal queue failure: re-raise or quarantine."""
        error: Optional[BaseException] = None
        payload = result.get("error_pickle")
        if payload is not None:
            try:
                decoded = decode_value(payload)
                if isinstance(decoded, BaseException):
                    error = decoded
            except Exception:
                error = None
        entry.failures = int(result.get("attempts", 0))
        entry.lost = int(result.get("steals", 0))
        entry.last_kind = result.get("kind", "exception")
        entry.last_error = error
        entry.last_traceback = result.get("traceback", "") or \
            f"{result.get('error_type')}: " \
            f"{result.get('error_message')}"
        if runner.resilience is None:
            self._cleanup_key(entry.key, fingerprint)
            if error is not None and entry.last_kind == "exception":
                raise error
            raise RuntimeError(
                f"sweep cell {result.get('experiment')}"
                f"[{entry.index}] failed terminally in the queue "
                f"({entry.last_kind}: {result.get('error_type')}: "
                f"{result.get('error_message')}); attach a "
                f"ResiliencePolicy to quarantine poison cells "
                f"instead of aborting")
        if error is None and entry.last_kind == "exception":
            # Keep the original type name visible in the CellFailure
            # even when the exception itself would not unpickle.
            entry.last_error = RuntimeError(
                f"{result.get('error_type')}: "
                f"{result.get('error_message')}")
        runner._quarantine(fn, entry, finish)

    def _track_workers(self, known: Dict[str, float],
                       live: Dict[str, float]) -> None:
        for worker_id in live:
            if worker_id not in known:
                _worker_event("worker_seen", worker=worker_id)
        for worker_id in list(known):
            if worker_id not in live:
                _worker_event("worker_lost", worker=worker_id,
                              last_heartbeat_age_s=known[worker_id])
                del known[worker_id]
        known.update(live)

    def _fall_back(self, runner, fn, outstanding: Dict[str, Any],
                   finish) -> None:
        """No live workers within the grace period: run locally."""
        from repro.perf.sweep import _sweep_event
        registry = _metrics.get_registry()
        registry.counter("perf.queue.fallbacks_total").inc()
        self._withdraw(outstanding)
        remaining = sorted(outstanding.values(),
                           key=lambda entry: entry.index)
        _sweep_event("backend_fallback", experiment=(
            runner.experiment_id or getattr(fn, "__name__", "sweep")),
            cells=len(remaining),
            reason=(f"no live workers with a compatible code "
                    f"fingerprint for {self.worker_grace:g}s"))
        _worker_event("backend_fallback", cells=len(remaining))
        warnings.warn(
            f"queue backend saw no live workers with a compatible "
            f"code fingerprint in {self.worker_grace:g}s; degrading "
            f"{len(remaining)} cell(s) to local execution",
            RuntimeWarning, stacklevel=2)
        if runner.workers > 1 and len(remaining) > 1:
            runner._execute_pool(fn, remaining, finish)
        else:
            runner._execute_serial(fn, remaining, finish)

    def _withdraw(self, outstanding: Dict[str, Any]) -> None:
        """Best-effort removal of this sweep's queue files."""
        for key in outstanding:
            for path in (self.layout.task_path(key),
                         self.layout.claim_path(key)):
                try:
                    os.unlink(path)
                except OSError:
                    pass

    def _cleanup_key(self, key: str, fingerprint: str) -> None:
        for path in (self.layout.result_path(key, fingerprint),
                     self.layout.task_path(key),
                     self.layout.claim_path(key)):
            try:
                os.unlink(path)
            except OSError:
                pass


# -- selection ----------------------------------------------------------------

_default_backend: Optional[SweepBackend] = None


def default_backend() -> Optional[SweepBackend]:
    """The ambient backend installed by :func:`use_backend` (or None)."""
    return _default_backend


def set_default_backend(backend: Optional[SweepBackend]
                        ) -> Optional[SweepBackend]:
    """Install the ambient backend; returns the previous one."""
    global _default_backend
    previous = _default_backend
    _default_backend = backend
    return previous


@contextmanager
def use_backend(backend: Optional[SweepBackend]
                ) -> Iterator[Optional[SweepBackend]]:
    """Run a block with ``backend`` as the ambient default.

    ``None`` is a no-op context (the auto serial/pool heuristic),
    so callers can wrap unconditionally.
    """
    previous = set_default_backend(backend)
    try:
        yield backend
    finally:
        set_default_backend(previous)


def resolve_backend(spec: Optional[str],
                    queue_dir: Optional[Union[str, Path]] = None,
                    lease_ttl: float = DEFAULT_LEASE_TTL,
                    worker_grace: Optional[float] =
                    DEFAULT_WORKER_GRACE
                    ) -> Optional[SweepBackend]:
    """Map a CLI ``--backend`` spec onto a backend instance.

    ``auto``/None returns None -- the runner's built-in serial/pool
    heuristic, unchanged from previous releases.
    """
    if spec is None or spec == "auto":
        return None
    if spec == "inprocess":
        return InProcessBackend()
    if spec == "pool":
        return PoolBackend()
    if spec == "queue":
        if queue_dir is None:
            raise ValueError("--backend queue requires --queue-dir "
                             "(the shared queue directory workers "
                             "were started against)")
        return QueueBackend(queue_dir, lease_ttl=lease_ttl,
                            worker_grace=worker_grace)
    raise ValueError(f"unknown backend {spec!r}; "
                     f"choose from {', '.join(BACKEND_CHOICES)}")
