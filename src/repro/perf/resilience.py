"""Resilient sweep execution: policies, journals and crash capsules.

The paper's headline artefacts are hours-long parameter sweeps, and a
sweep that dies at cell 97 of 100 -- a hung worker, an OOM kill, a
Ctrl-C -- should not cost the 96 finished cells.  This module holds
the pieces :class:`~repro.perf.sweep.SweepRunner` composes into a
fault-tolerant execution layer:

:class:`ResiliencePolicy`
    What the runner is allowed to do about a misbehaving cell:
    per-cell wall-clock timeouts, bounded retries with exponential
    backoff, how many pool breakages to survive before degrading the
    worker count, and where journals and crash capsules live.

:class:`SweepJournal`
    An append-only JSONL record of completed cells, living beside the
    :class:`~repro.perf.cache.ResultCache` and keyed the same way --
    params hash + code fingerprint -- so an interrupted sweep resumes
    exactly where it stopped and a resumed run is bit-identical to an
    uninterrupted one (values are round-tripped through pickle, the
    same serialization the process pool itself uses).

:class:`CellFailure`
    The structured placeholder a poisoned cell leaves in the result
    list once it has exhausted its retries.  The sweep completes; the
    failure is quarantined, not fatal.

:class:`CrashCapsule`
    A self-contained replay file written on terminal cell failure:
    the cell function, its exact kwargs (pickled), the code
    fingerprint, the traceback, and the tail of the active run log.
    ``python -m repro replay CAPSULE`` re-executes exactly that cell
    serially under full telemetry for debugging.
"""

from __future__ import annotations

import base64
import dataclasses
import json
import os
import pickle
import time
import traceback as _traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Any, Callable, Dict, List, Optional, Tuple,
                    Union)

from repro.perf.cache import (canonicalize, code_fingerprint,
                              default_cache_dir)

#: Capsule/journal storage format; bump when fields change meaning.
CAPSULE_VERSION = 1
JOURNAL_VERSION = 1


def default_journal_dir() -> Path:
    """Journals live beside the result cache: ``<cache root>/journals``."""
    return default_cache_dir() / "journals"


def default_capsule_dir() -> Path:
    """Crash capsules live beside the cache: ``<cache root>/capsules``."""
    return default_cache_dir() / "capsules"


@dataclass(frozen=True)
class ResiliencePolicy:
    """How a :class:`~repro.perf.sweep.SweepRunner` handles failure.

    Attaching a policy changes the failure contract of ``map``: a cell
    that exhausts ``max_retries`` yields a :class:`CellFailure`
    placeholder (and, when enabled, a :class:`CrashCapsule`) instead
    of aborting the sweep.  Without a policy the runner keeps its
    original raise-on-first-error behaviour (though pool supervision
    -- respawn after ``BrokenProcessPool`` -- is always on).

    Parameters
    ----------
    cell_timeout:
        Per-attempt wall-clock budget in seconds.  Enforced in
        parallel mode by killing the worker pool and re-dispatching
        the other in-flight cells; serial execution cannot preempt a
        running cell, so there the timeout only applies in the sense
        that a cell observed to exceed it is not retried.
    max_retries:
        Re-attempts after the first failure before quarantine.
    backoff_base / backoff_factor / backoff_max:
        Exponential backoff between attempts of the *same* cell:
        attempt ``k`` (0-based failure count) waits
        ``min(backoff_max, backoff_base * backoff_factor**k)``.
        Other cells keep executing during the wait.
    max_pool_respawns:
        Pool breakages (``BrokenProcessPool``) tolerated at a given
        worker count; one more halves the worker count, bottoming out
        at serial execution.
    journal_dir:
        When set, completed cells are journaled here (one JSONL file
        per experiment id) and previously journaled cells are skipped
        on the next run -- the ``--resume`` machinery.
    capsule_dir:
        Where crash capsules are written on terminal failure.  None
        falls back to :func:`default_capsule_dir`; ``write_capsules``
        False disables them entirely.
    sleep:
        Injection point for tests; production code leaves it alone.
    """

    cell_timeout: Optional[float] = None
    max_retries: int = 1
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    max_pool_respawns: int = 3
    journal_dir: Optional[Union[str, Path]] = None
    capsule_dir: Optional[Union[str, Path]] = None
    write_capsules: bool = True
    sleep: Callable[[float], None] = field(default=time.sleep,
                                           repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise ValueError(
                f"cell_timeout must be positive, got {self.cell_timeout}")
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.max_pool_respawns < 0:
            raise ValueError(f"max_pool_respawns must be >= 0, "
                             f"got {self.max_pool_respawns}")

    def backoff(self, failures: int) -> float:
        """Seconds to wait after the ``failures``-th failure (1-based)."""
        if failures <= 0:
            return 0.0
        return min(self.backoff_max,
                   self.backoff_base
                   * self.backoff_factor ** (failures - 1))

    def resolved_capsule_dir(self) -> Path:
        return Path(self.capsule_dir) if self.capsule_dir is not None \
            else default_capsule_dir()


@dataclass(frozen=True)
class CellFailure:
    """A cell that exhausted its retries; the sweep's quarantine entry.

    Occupies the failed cell's slot in the ``map`` result list so the
    rest of the sweep stands.  ``kind`` distinguishes how the cell
    died: ``"exception"`` (the function raised), ``"timeout"`` (the
    per-cell wall-clock budget expired) or ``"worker-lost"`` (the
    worker process died -- OOM kill, SIGKILL, hard crash).
    """

    experiment_id: str
    index: int
    params: Dict[str, Any]
    kind: str
    error_type: str
    error_message: str
    attempts: int
    traceback: str = ""
    capsule_path: Optional[str] = None

    def __str__(self) -> str:
        where = f"{self.experiment_id}[{self.index}]"
        return (f"CellFailure({where}, {self.kind}: {self.error_type}"
                f": {self.error_message!r} after {self.attempts} "
                f"attempt(s))")


def is_failure(value: Any) -> bool:
    """Whether a sweep result slot holds a quarantined failure."""
    return isinstance(value, CellFailure)


def collect_failures(result: Any) -> List[CellFailure]:
    """Walk an experiment result for quarantined cells.

    Experiments return lists, dicts-of-lists and nested tuples of
    result dataclasses; this digs :class:`CellFailure` placeholders
    out of any such container so callers (the CLI, tests) can report
    partial sweeps without knowing each experiment's result shape.
    """
    failures: List[CellFailure] = []
    if isinstance(result, CellFailure):
        failures.append(result)
    elif isinstance(result, dict):
        for value in result.values():
            failures.extend(collect_failures(value))
    elif isinstance(result, (list, tuple, set)):
        for value in result:
            failures.extend(collect_failures(value))
    return failures


# -- value serialization ------------------------------------------------------


def encode_value(value: Any) -> str:
    """Pickle + base64 a cell value for JSON transport.

    Pickle is the same serialization results already cross the process
    -pool boundary with, so anything a parallel sweep can return, a
    journal can store -- and the decoded object is the same object the
    pool would have delivered (bit-identical resume).
    """
    return base64.b64encode(
        pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def decode_value(payload: str) -> Any:
    return pickle.loads(base64.b64decode(payload.encode("ascii")))


# -- the sweep journal --------------------------------------------------------


class SweepJournal:
    """Append-only JSONL record of completed (and failed) sweep cells.

    One journal file per experiment id, one JSON object per line.
    Lines are flushed and fsync'd as they are written, so the journal
    on disk is always a valid prefix of the sweep -- a SIGKILL can
    lose at most the line being written, and the loader tolerates that
    torn tail the same way :func:`repro.obs.runlog.read_events` does.

    Entries carry the code fingerprint they were computed under;
    loading skips entries whose fingerprint does not match (editing
    any source file orphans the journal, exactly like the result
    cache).

    Concurrent-writer safety (distributed sweeps): two processes
    appending to one JSONL file can interleave torn records, so each
    writer may claim a private *shard* -- ``shard="host-123"`` writes
    to ``<stem>-host-123<suffix>`` -- while **reads always merge** the
    base file plus every sibling shard.  One process per shard means
    every individual file keeps the single-writer append-only
    invariant, and any reader (a resuming coordinator, a worker
    warming up) sees the union.  So shards do not accumulate one
    file per process forever, :meth:`compact` folds them back into
    the base file once a sweep completes.
    """

    def __init__(self, path: Union[str, Path],
                 fingerprint: Optional[str] = None,
                 shard: Optional[str] = None):
        self.path = Path(path)
        self.shard = shard
        #: Where this instance appends; reads merge all shards.
        self.write_path = self.path if shard is None \
            else self.path.with_name(
                f"{self.path.stem}-{shard}{self.path.suffix}")
        self.fingerprint = fingerprint or code_fingerprint()
        self._stream = None
        #: key -> encoded value, loaded from pre-existing files.
        self.completed: Dict[str, str] = {}
        #: keys recorded as terminally failed in a previous run.
        self.failed: Dict[str, dict] = {}
        self._stale_entries = 0
        self._torn_lines = 0
        self._load()

    # -- reading ---------------------------------------------------------

    def _shard_paths(self) -> "List[Path]":
        """The base journal plus every sibling shard, base first."""
        paths = [self.path]
        try:
            siblings = sorted(self.path.parent.glob(
                f"{self.path.stem}-*{self.path.suffix}"))
        except OSError:
            siblings = []
        paths.extend(siblings)
        return paths

    def _load(self) -> None:
        for path in self._shard_paths():
            if path.exists():
                self._load_file(path)

    def _parse_entries(self, path: Path) -> "List[dict]":
        """One file's valid current-fingerprint entries, in order.

        Applies the load tolerances -- a torn *final* line is
        skipped (the writer died mid-event), stale versions and
        foreign fingerprints are counted and dropped -- and raises
        on mid-file corruption, which an append-only writer cannot
        produce.
        """
        entries: List[dict] = []
        lines = path.read_text(encoding="utf-8").splitlines()
        last_content = -1
        for index, line in enumerate(lines):
            if line.strip():
                last_content = index
        for index, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                if index != last_content:
                    raise
                self._torn_lines += 1
                continue  # torn final line: the writer died mid-event
            if entry.get("version") != JOURNAL_VERSION \
                    or entry.get("fingerprint") != self.fingerprint:
                self._stale_entries += 1
                continue
            entries.append(entry)
        return entries

    def _load_file(self, path: Path) -> None:
        for entry in self._parse_entries(path):
            kind = entry.get("type")
            if kind == "cell_done":
                self.completed[entry["key"]] = entry["value"]
                # A later success supersedes an earlier failure.
                self.failed.pop(entry["key"], None)
            elif kind == "cell_failed":
                self.failed[entry["key"]] = entry

    def lookup(self, key: str) -> Tuple[bool, Any]:
        """Return ``(hit, value)`` for a journaled completed cell."""
        payload = self.completed.get(key)
        if payload is None:
            return False, None
        return True, decode_value(payload)

    @property
    def stale_entries(self) -> int:
        """Entries ignored at load (old fingerprint or version)."""
        return self._stale_entries

    @property
    def torn_lines(self) -> int:
        """Truncated trailing lines tolerated at load."""
        return self._torn_lines

    # -- writing ---------------------------------------------------------

    def _write(self, entry: dict) -> None:
        if self._stream is None:
            self.write_path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = open(self.write_path, "a",
                                encoding="utf-8")
        self._stream.write(json.dumps(entry, sort_keys=True) + "\n")
        self._stream.flush()
        os.fsync(self._stream.fileno())

    def record_cell(self, experiment_id: str, key: str, value: Any,
                    attempts: int, elapsed: float) -> None:
        """Journal one completed cell atomically (append + fsync)."""
        payload = encode_value(value)
        self._write({"version": JOURNAL_VERSION, "type": "cell_done",
                     "experiment": experiment_id, "key": key,
                     "fingerprint": self.fingerprint,
                     "attempts": attempts,
                     "elapsed_s": round(float(elapsed), 6),
                     "ts": time.time(), "value": payload})
        self.completed[key] = payload

    def record_failure(self, failure: CellFailure, key: str) -> None:
        """Journal a terminal cell failure (informational: a resumed
        run re-attempts the cell -- a fresh environment may succeed)."""
        entry = {"version": JOURNAL_VERSION, "type": "cell_failed",
                 "experiment": failure.experiment_id, "key": key,
                 "fingerprint": self.fingerprint,
                 "kind": failure.kind,
                 "error_type": failure.error_type,
                 "error_message": failure.error_message,
                 "attempts": failure.attempts,
                 "capsule": failure.capsule_path,
                 "ts": time.time()}
        self._write(entry)
        self.failed[key] = entry

    def flush(self) -> None:
        if self._stream is not None:
            self._stream.flush()
            os.fsync(self._stream.fileno())

    def compact(self) -> int:
        """Fold every shard into the base file and delete the shards.

        Without compaction a long-lived experiment accumulates one
        ``<stem>-<host>-<pid>`` shard per process that ever journaled
        it, slowing every subsequent open.  Called on successful
        sweep completion, this rewrites the base journal with the
        merged view (atomic tmp + fsync + rename), unlinks the
        absorbed shard files, and returns how many were absorbed.

        Entries under a stale version or foreign fingerprint are
        dropped -- they are skipped at load anyway (editing any
        source file orphans the journal, exactly like the cache), so
        compaction doubles as garbage collection.  Concurrency: a
        shard unlinked under a still-live writer silently drops that
        writer's *later* appends, which costs a recompute on the
        next resume, never correctness -- acceptable for the
        end-of-sweep call sites this is meant for.
        """
        self.close()
        paths = [path for path in self._shard_paths()
                 if path.exists()]
        shards = [path for path in paths if path != self.path]
        if not shards:
            return 0
        done: Dict[str, dict] = {}
        failed: Dict[str, dict] = {}
        order: List[str] = []
        for path in paths:
            for entry in self._parse_entries(path):
                key = entry.get("key")
                kind = entry.get("type")
                if key is None or kind not in ("cell_done",
                                               "cell_failed"):
                    continue
                if key not in done and key not in failed:
                    order.append(key)
                if kind == "cell_done":
                    done[key] = entry
                    # Mirror load semantics: success supersedes an
                    # earlier failure of the same cell.
                    failed.pop(key, None)
                else:
                    failed[key] = entry
        tmp = self.path.with_name(self.path.name
                                  + f".tmp-{os.getpid()}")
        tmp.parent.mkdir(parents=True, exist_ok=True)
        with open(tmp, "w", encoding="utf-8") as stream:
            for key in order:
                for entry in (done.get(key), failed.get(key)):
                    if entry is not None:
                        stream.write(json.dumps(entry,
                                                sort_keys=True)
                                     + "\n")
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp, self.path)
        for path in shards:
            try:
                os.unlink(path)
            except OSError:
                pass
        return len(shards)

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def process_shard() -> str:
    """A journal shard name unique to this process: ``<host>-<pid>``."""
    import re
    import socket
    host = re.sub(r"[^A-Za-z0-9_.]+", "_", socket.gethostname())
    return f"{host}-{os.getpid()}"


def journal_for(experiment_id: str,
                journal_dir: Union[str, Path],
                fingerprint: Optional[str] = None,
                shard: Optional[str] = None) -> SweepJournal:
    """Open (creating lazily) the journal for one experiment id.

    ``shard`` directs this process's appends to a private sibling
    file (see :class:`SweepJournal`); pass :func:`process_shard` when
    multiple processes may journal the same experiment concurrently.
    """
    directory = Path(journal_dir)
    return SweepJournal(directory / f"{experiment_id}.journal.jsonl",
                        fingerprint=fingerprint, shard=shard)


# -- crash capsules -----------------------------------------------------------


def _qualified_name(fn: Callable[..., Any]) -> str:
    return f"{fn.__module__}:{fn.__qualname__}"


def _resolve_callable(spec: str) -> Callable[..., Any]:
    """Inverse of :func:`_qualified_name` for module-level functions."""
    import importlib

    module_name, _, qualname = spec.partition(":")
    if not module_name or not qualname:
        raise ValueError(f"malformed callable spec {spec!r}")
    try:
        target: Any = importlib.import_module(module_name)
        for part in qualname.split("."):
            target = getattr(target, part)
    except (ImportError, AttributeError) as error:
        raise ValueError(
            f"cannot resolve {spec!r}: {error} (the capsule's cell "
            f"function must be importable, e.g. a module-level "
            f"function -- not defined in a script or REPL)") from error
    if not callable(target):
        raise TypeError(f"{spec} resolved to non-callable {target!r}")
    return target


@dataclass
class CrashCapsule:
    """Everything needed to re-execute one failed sweep cell exactly.

    The kwargs ride along twice: pickled (``kwargs_pickle``) for exact
    replay -- parameter dataclasses, numpy arrays and derived seeds
    survive unchanged -- and canonicalized (``params``) so a human can
    read the capsule without unpickling anything.
    """

    experiment_id: str
    cell_key: str
    fn: str
    kwargs_pickle: str
    params: Dict[str, Any]
    fingerprint: str
    kind: str
    error_type: str
    error_message: str
    traceback: str
    attempts: int
    created_ts: float
    seed: Optional[int] = None
    telemetry_tail: List[dict] = field(default_factory=list)
    version: int = CAPSULE_VERSION

    @classmethod
    def from_failure(cls, fn: Callable[..., Any],
                     kwargs: Dict[str, Any],
                     failure: CellFailure,
                     cell_key: str,
                     fingerprint: str,
                     telemetry_tail: Optional[List[dict]] = None
                     ) -> "CrashCapsule":
        seed = kwargs.get("seed")
        return cls(
            experiment_id=failure.experiment_id,
            cell_key=cell_key,
            fn=_qualified_name(fn),
            kwargs_pickle=encode_value(kwargs),
            params=canonicalize(kwargs),
            fingerprint=fingerprint,
            kind=failure.kind,
            error_type=failure.error_type,
            error_message=failure.error_message,
            traceback=failure.traceback,
            attempts=failure.attempts,
            created_ts=time.time(),
            seed=int(seed) if isinstance(seed, (int,)) else None,
            telemetry_tail=list(telemetry_tail or []))

    def write(self, path: Union[str, Path]) -> Path:
        """Write the capsule atomically (tmp + rename)."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(dataclass_as_dict(self), indent=2,
                             sort_keys=True, default=str)
        tmp = target.with_name(target.name + ".tmp")
        tmp.write_text(payload + "\n", encoding="utf-8")
        os.replace(tmp, target)
        return target

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CrashCapsule":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        version = data.get("version")
        if version != CAPSULE_VERSION:
            raise ValueError(
                f"{path}: capsule version {version!r} not supported "
                f"(expected {CAPSULE_VERSION})")
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{key: value for key, value in data.items()
                      if key in known})

    @property
    def kwargs(self) -> Dict[str, Any]:
        return decode_value(self.kwargs_pickle)

    def resolve(self) -> Callable[..., Any]:
        return _resolve_callable(self.fn)


def dataclass_as_dict(obj: Any) -> dict:
    """`dataclasses.asdict` without deep-copying value payloads."""
    return {f.name: getattr(obj, f.name)
            for f in dataclasses.fields(obj)}


def capsule_path_for(capsule_dir: Union[str, Path],
                     experiment_id: str, cell_key: str) -> Path:
    return Path(capsule_dir) / \
        f"{experiment_id}-{cell_key[:12]}.capsule.json"


@dataclass
class ReplayResult:
    """What :func:`replay_capsule` observed."""

    capsule: CrashCapsule
    reproduced: bool
    value: Any = None
    error_type: Optional[str] = None
    error_message: Optional[str] = None
    traceback: Optional[str] = None
    elapsed_s: float = 0.0

    @property
    def matches_original(self) -> bool:
        """Whether the replay died the same way the sweep cell did."""
        return self.reproduced \
            and self.error_type == self.capsule.error_type


def replay_capsule(path: Union[str, Path],
                   telemetry: Any = None) -> ReplayResult:
    """Re-execute a crash capsule's cell serially.

    Runs the exact pickled kwargs through the original cell function
    in this process -- no pool, no cache, no journal -- optionally
    inside ``telemetry.activate()`` so the replay streams spans,
    metrics, retry events and health findings for debugging.  Returns
    a :class:`ReplayResult`; never raises the cell's own exception
    (the point is to observe it).
    """
    capsule = CrashCapsule.load(path)
    fn = capsule.resolve()
    kwargs = capsule.kwargs

    def attempt() -> ReplayResult:
        started = time.perf_counter()
        try:
            value = fn(**kwargs)
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as exc:
            return ReplayResult(
                capsule=capsule, reproduced=True,
                error_type=type(exc).__name__,
                error_message=str(exc),
                traceback=_traceback.format_exc(),
                elapsed_s=time.perf_counter() - started)
        return ReplayResult(capsule=capsule, reproduced=False,
                            value=value,
                            elapsed_s=time.perf_counter() - started)

    if telemetry is None:
        return attempt()
    from repro.obs.telemetry import Telemetry
    bundle = Telemetry.ensure(
        telemetry, experiment=f"replay-{capsule.experiment_id}")
    with bundle.activate(params=capsule.params):
        result = attempt()
    return result
