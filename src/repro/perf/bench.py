"""Throughput benchmarks for the performance layer.

``python -m repro bench`` runs these and writes a JSON report (the
checked-in ``BENCH_PR7.json``; format documented in
``docs/PERFORMANCE.md``; diff two reports with ``python -m repro
compare``).  Four microbenchmarks cover the hot loops
the perf work targets -- the event heap, port serialization, DDE
stepping, and one stability-map row -- and a sweep section times the
``ext_stability_map`` grid (plus, with ``full=True``, the Section 5.1
FCT study) serially, with workers, and against a warm result cache.
A resilience section measures what the journal + retry machinery
costs an all-success sweep (it should be nearly free) and proves a
journaled resume is bit-identical to the plain run.  An engines
section compares the event-queue backends (heap oracle vs calendar),
measures the batched struct-of-arrays port fast path, and gates the
hybrid fluid/packet mode: calendar must be bit-identical to heap on
fig05, hybrid statistically compatible (see :func:`bench_engines`).  A backends
section compares the same grid through the in-process, pool and
distributed-queue execution backends (two local ``repro worker``
subprocesses) and records the queue protocol's per-cell overhead.

Unlike ``benchmarks/test_performance.py`` (pytest-benchmark, relative
regression tracking) this module produces absolute numbers meant to be
committed alongside the code they measure.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from typing import Callable, Optional

from repro.perf.cache import ResultCache

#: Report format version; bump when fields change meaning.
#: 3 added the health-sampling telemetry measurement (PR 4).
#: 4 added the resilience (journal overhead + resume) section (PR 5).
#: 5 added the backend comparison (inprocess/pool/queue) section and
#:   the effective (affinity-aware) CPU count (PR 6).
#: 6 added the engines section: heap/calendar event-loop rates,
#:   batched (struct-of-arrays window) port throughput, the fig05
#:   calendar-vs-heap bit-identity check and the hybrid fluid/packet
#:   statistical-compatibility gate (PR 7).
#: 7 added the profiler section: event-loop throughput with the
#:   sampling profiler attached, the on/off ratio CI gates at
#:   >= 0.95, and the sampled category shares (PR 8).
#: 8 added the forensics section: port throughput with the flow
#:   ledger detached vs attached; the off/on ratio CI gates at
#:   >= 0.95 (the forensics-off hot path must keep short-circuiting
#:   on the ``ledger is None`` guards) (PR 9).
REPORT_VERSION = 8

#: Default output file, repo-root relative.
DEFAULT_REPORT = "BENCH_PR7.json"


def _best_of(fn: Callable[[], object], repeats: int = 3) -> float:
    """Minimum wall time of ``repeats`` calls, seconds."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def bench_event_loop(n_events: int = 200_000,
                     attach_health: bool = False,
                     scheduler: str = "heap") -> float:
    """Self-rescheduling no-op events per second through the queue.

    ``scheduler`` picks the event-queue backend (``"heap"`` /
    ``"calendar"``).  ``attach_health=True`` additionally installs a
    periodic sampler (every 20 sim-microseconds, i.e. one sample per
    20 events) feeding a live
    :class:`~repro.obs.health.QueueOscillationDetector`
    -- the worst realistic health-sampling duty cycle, used by the
    telemetry overhead guard.
    """
    from repro.sim.engine import Simulator

    def run() -> None:
        sim = Simulator(scheduler=scheduler)
        count = [0]

        def tick() -> None:
            count[0] += 1
            if count[0] < n_events:
                sim.schedule(1e-6, tick)

        if attach_health:
            from repro.obs.health import (HealthMonitor,
                                          QueueOscillationDetector)
            monitor = HealthMonitor(
                [QueueOscillationDetector(window=1e-3,
                                          check_interval=1e-3)],
                session=None)
            # stop= bounds the sampler: without it the sampler keeps
            # the heap populated forever once the tick chain ends and
            # an until-less run() never returns.
            sim.sample_every(2e-5, lambda now:
                             monitor.sample(now, queue=count[0]),
                             stop=n_events * 1e-6)
        sim.schedule(0.0, tick)
        sim.run()

    return n_events / _best_of(run)


def bench_port(n_packets: int = 50_000) -> float:
    """Packets serialized through one port + link per second."""
    from repro.sim.engine import Simulator
    from repro.sim.link import Link, Port
    from repro.sim.packet import Packet

    class Sink:
        name = "sink"

        def receive(self, packet, ingress=None):
            pass

    def run() -> None:
        sim = Simulator()
        port = Port(sim, 1.25e9, Link(sim, 1e-6, Sink()))
        for seq in range(n_packets):
            port.send(Packet(0, 1024, "s", "sink", kind="data",
                             seq=seq))
        sim.run()

    return n_packets / _best_of(run)


def bench_port_batched(n_packets: int = 200_000,
                       window: int = 64) -> float:
    """Packets through one batch-capable port per second.

    The feed hands the port :class:`~repro.sim.packet.PacketBatch`
    windows of ``window`` packets, paced at the line rate so the port
    alternates accept-and-serialize like a saturated NIC.  This is
    the struct-of-arrays fast path: one transmission event and one
    delivery event per *window* instead of four events per packet.
    """
    from repro.sim.engine import Simulator
    from repro.sim.link import Link, Port
    from repro.sim.packet import PacketBatch

    class Sink:
        name = "sink"

        def receive(self, packet, ingress=None):
            pass

        def receive_window(self, payload, arrivals, ingress=None):
            pass

    rate = 1.25e9

    def run() -> None:
        sim = Simulator()
        port = Port(sim, rate, Link(sim, 1e-6, Sink()),
                    batch_window=window)
        done = 0

        def feed() -> None:
            nonlocal done
            if done >= n_packets:
                return
            count = min(window, n_packets - done)
            port.send_batch(PacketBatch.uniform(
                0, count, 1024, "s", "sink", seq_start=done))
            done += count
            sim.schedule(count * 1024 / rate, feed)

        sim.schedule(0.0, feed)
        sim.run()

    return n_packets / _best_of(run)


def bench_dde(t_end: float = 0.01) -> float:
    """Heun steps per second on the 10-flow DCQCN fluid model."""
    from repro.core.fluid import dde
    from repro.core.fluid.dcqcn import DCQCNFluidModel
    from repro.core.params import DCQCNParams

    params = DCQCNParams.paper_default(num_flows=10)
    model = DCQCNFluidModel(params)
    steps = int(round(t_end / 1e-6))

    def run() -> None:
        dde.integrate(model, t_end=t_end, dt=1e-6)

    return steps / _best_of(run)


def bench_stability_row() -> float:
    """Wall seconds for one default ext_stability_map row (N=10)."""
    from repro.experiments.ext_stability_map import (DEFAULT_DELAYS_US,
                                                     compute_row)

    return _best_of(lambda: compute_row(10, DEFAULT_DELAYS_US, 40.0))


def bench_telemetry_overhead(n_events: int = 100_000) -> dict:
    """Event-loop throughput with telemetry off vs on.

    The zero-overhead guard for :mod:`repro.obs`: instrumentation is
    compiled in unconditionally, so the telemetry-off path must cost
    nothing beyond the inert null-registry attribute lookups at run
    boundaries.  ``overhead_off`` is the ratio of the default (null
    registry) throughput to a pre-instrumentation-equivalent baseline
    -- but with no such baseline available at runtime, we instead
    compare telemetry *on* (live registry + span recorder) against
    *off* and report both rates; CI asserts the off/on ratio stays
    near 1.0 because publishing happens only at aggregation points.
    """
    import tempfile

    from repro.obs import Telemetry

    off_rate = bench_event_loop(n_events)
    with tempfile.TemporaryDirectory() as tmp:
        telemetry = Telemetry(tmp, experiment="bench")
        with telemetry.activate():
            on_rate = bench_event_loop(n_events)
        health_telemetry = Telemetry(tmp, experiment="bench-health")
        with health_telemetry.activate():
            health_rate = bench_event_loop(n_events,
                                           attach_health=True)
    return {
        "events_per_sec_off": off_rate,
        "events_per_sec_on": on_rate,
        "events_per_sec_on_health": health_rate,
        "off_over_on_ratio": off_rate / on_rate if on_rate else
        float("inf"),
        "off_over_health_ratio": off_rate / health_rate
        if health_rate else float("inf"),
    }


def bench_profiler_overhead(n_events: int = 200_000) -> dict:
    """Event-loop throughput with the sampling profiler off vs on.

    The profiler's contract is that the profiled thread pays nothing
    per event (a sidecar thread reads its stack from outside), so the
    on/off throughput ratio must stay near 1.0; CI gates it at
    >= 0.95 (the ISSUE's <= 5% overhead bound).  The sampled category
    shares ride along so the report shows where a pure event-loop
    spin actually lands (engine + scheduler frames).
    """
    from repro.obs.profile import SamplingProfiler

    off_rate = bench_event_loop(n_events)
    profiler = SamplingProfiler()
    profiler.start()
    try:
        on_rate = bench_event_loop(n_events)
    finally:
        profiler.stop()
    return {
        "events_per_sec_off": off_rate,
        "events_per_sec_on": on_rate,
        "on_over_off_ratio": on_rate / off_rate if off_rate
        else float("inf"),
        "samples": profiler.total_samples,
        "shares": profiler.shares(),
    }


def bench_forensics_overhead(n_packets: int = 50_000) -> dict:
    """Port throughput with the flow-forensics ledger off vs on.

    The forensics hooks live inside :class:`~repro.sim.link.Port`'s
    hot paths behind ``if self.ledger is not None`` guards, so the
    default (ledger-off) path must cost nothing beyond that attribute
    test -- CI gates ``off_over_on_ratio >= 0.95``, which only fails
    if the off path stops short-circuiting and starts paying the
    bookkeeping itself.  ``on_cost_fraction`` records what a
    ``--forensics`` run pays in the worst case: a pure port loop with
    no protocol or marker work to dilute the per-packet ledger
    update (real experiments pay far less).  Cross-version off-path
    regressions are caught separately by ``repro compare`` on
    ``micro.port_packets_per_sec`` (the identical code path).
    """
    from repro.obs.forensics import FlowLedger
    from repro.sim.engine import Simulator
    from repro.sim.link import Link, Port
    from repro.sim.packet import Packet

    class Sink:
        name = "sink"

        def receive(self, packet, ingress=None):
            pass

    def run(ledger) -> None:
        sim = Simulator()
        port = Port(sim, 1.25e9, Link(sim, 1e-6, Sink()))
        port.ledger = ledger
        for seq in range(n_packets):
            port.send(Packet(0, 1024, "s", "sink", kind="data",
                             seq=seq))
        sim.run()

    off_rate = n_packets / _best_of(lambda: run(None))
    on_rate = n_packets / _best_of(lambda: run(FlowLedger()))
    return {
        "port_packets_per_sec_off": off_rate,
        "port_packets_per_sec_on": on_rate,
        "off_over_on_ratio": off_rate / on_rate if on_rate
        else float("inf"),
        "on_cost_fraction": 1.0 - (on_rate / off_rate if off_rate
                                   else 0.0),
    }


def _timed(fn: Callable[[], object]) -> "tuple[float, object]":
    started = time.perf_counter()
    result = fn()
    return time.perf_counter() - started, result


def bench_sweeps(workers: int = 4, full: bool = False,
                 cache_dir: Optional[str] = None) -> dict:
    """Grid experiments serial vs parallel vs warm-cached.

    Each variant's results are compared against the serial run, so the
    report doubles as a determinism check: ``identical`` must be true.
    """
    import tempfile

    from repro.experiments import ext_stability_map

    report: dict = {"workers": workers}

    serial_s, serial_rows = _timed(lambda: ext_stability_map.run())
    parallel_s, parallel_rows = _timed(
        lambda: ext_stability_map.run(workers=workers))
    with tempfile.TemporaryDirectory(dir=cache_dir) as tmp:
        cache = ResultCache(root=tmp)
        cold_s, _ = _timed(lambda: ext_stability_map.run(cache=cache))
        warm_s, warm_rows = _timed(
            lambda: ext_stability_map.run(cache=cache))
    report["ext_stability_map"] = {
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "cache_cold_s": cold_s,
        "cache_warm_s": warm_s,
        "parallel_speedup": serial_s / parallel_s,
        "cache_warm_speedup": serial_s / warm_s,
        "identical": serial_rows == parallel_rows == warm_rows,
    }

    if full:
        from repro.experiments import fct_study

        def runs_equal(a, b):
            from dataclasses import asdict
            import numpy as np
            for protocol in a:
                for left, right in zip(a[protocol], b[protocol]):
                    for key, value in asdict(left).items():
                        other = asdict(right)[key]
                        if isinstance(value, np.ndarray):
                            if not np.array_equal(value, other):
                                return False
                        elif value != other:
                            return False
            return True

        serial_s, serial_res = _timed(lambda: fct_study.run_load_sweep())
        parallel_s, parallel_res = _timed(
            lambda: fct_study.run_load_sweep(workers=workers))
        with tempfile.TemporaryDirectory(dir=cache_dir) as tmp:
            cache = ResultCache(root=tmp)
            cold_s, _ = _timed(
                lambda: fct_study.run_load_sweep(cache=cache))
            warm_s, warm_res = _timed(
                lambda: fct_study.run_load_sweep(cache=cache))
        report["fct_study"] = {
            "serial_s": serial_s,
            "parallel_s": parallel_s,
            "cache_cold_s": cold_s,
            "cache_warm_s": warm_s,
            "parallel_speedup": serial_s / parallel_s,
            "cache_warm_speedup": serial_s / warm_s,
            "identical": runs_equal(serial_res, parallel_res)
            and runs_equal(serial_res, warm_res),
        }
    return report


def bench_resilience(workers: int = 4) -> dict:
    """Cost of the resilience machinery on an all-success sweep.

    Runs ``ext_stability_map`` plain, then with a full
    :class:`~repro.perf.resilience.ResiliencePolicy` (journal +
    timeout + retry budget), then resumes from the written journal.
    ``journal_overhead`` is the with/without time ratio (near 1.0:
    journaling is one fsynced JSONL line per cell); ``identical``
    asserts the journaled and resumed grids match the plain run
    bit-for-bit.
    """
    import tempfile
    from pathlib import Path

    from repro.experiments import ext_stability_map
    from repro.perf.resilience import ResiliencePolicy

    plain_s, plain_rows = _timed(
        lambda: ext_stability_map.run(workers=workers))
    with tempfile.TemporaryDirectory() as tmp:
        policy = ResiliencePolicy(cell_timeout=600.0, max_retries=1,
                                  journal_dir=Path(tmp) / "journals",
                                  capsule_dir=Path(tmp) / "capsules")
        journaled_s, journaled_rows = _timed(
            lambda: ext_stability_map.run(workers=workers,
                                          resilience=policy))
        resumed_s, resumed_rows = _timed(
            lambda: ext_stability_map.run(workers=workers,
                                          resilience=policy))
    return {
        "workers": workers,
        "plain_s": plain_s,
        "journaled_s": journaled_s,
        "resumed_s": resumed_s,
        "journal_overhead": journaled_s / plain_s if plain_s
        else float("inf"),
        "resume_speedup": plain_s / resumed_s if resumed_s
        else float("inf"),
        "identical": plain_rows == journaled_rows == resumed_rows,
    }


def bench_backends(workers: int = 2) -> dict:
    """Backend comparison on the ``ext_stability_map`` grid.

    Times the same sweep through :class:`~repro.perf.backend
    .InProcessBackend`, :class:`~repro.perf.backend.PoolBackend`
    (``workers`` local processes) and :class:`~repro.perf.backend
    .QueueBackend` with ``workers`` local ``repro worker``
    subprocesses draining a tmpdir queue.  ``*_overhead_per_cell_s``
    is the extra wall time each backend pays per cell over the
    in-process baseline -- the queue's file-per-transition protocol
    is the one with real overhead, and this records how much.
    ``identical`` doubles as the cross-backend determinism check.
    """
    import tempfile

    from repro.experiments import ext_stability_map
    from repro.perf.backend import (InProcessBackend, PoolBackend,
                                    QueueBackend)
    from repro.perf.worker import spawn_worker

    cells = len(ext_stability_map.DEFAULT_FLOWS)
    inprocess_s, inprocess_rows = _timed(
        lambda: ext_stability_map.run(backend=InProcessBackend()))
    pool_s, pool_rows = _timed(
        lambda: ext_stability_map.run(workers=workers,
                                      backend=PoolBackend()))
    with tempfile.TemporaryDirectory() as tmp:
        procs = [spawn_worker(tmp, lease_ttl=5.0, max_idle=20.0)
                 for _ in range(workers)]
        backend = QueueBackend(tmp, lease_ttl=5.0, worker_grace=60.0)
        queue_s, queue_rows = _timed(
            lambda: ext_stability_map.run(backend=backend))
        for proc in procs:
            proc.terminate()
        for proc in procs:
            proc.wait(timeout=30)
    return {
        "workers": workers,
        "cells": cells,
        "inprocess_s": inprocess_s,
        "pool_s": pool_s,
        "queue_s": queue_s,
        "inprocess_cells_per_sec": cells / inprocess_s,
        "pool_cells_per_sec": cells / pool_s,
        "queue_cells_per_sec": cells / queue_s,
        "pool_overhead_per_cell_s": (pool_s - inprocess_s) / cells,
        "queue_overhead_per_cell_s": (queue_s - inprocess_s) / cells,
        "identical": inprocess_rows == pool_rows == queue_rows,
    }


def bench_engines(duration: float = 0.02) -> dict:
    """Engine-backend comparison on the Fig. 5 packet scenario.

    Three gates ride on this section:

    * ``fig05_calendar_identical`` -- the calendar event queue must
      reproduce the heap oracle's rows bit-for-bit;
    * ``hybrid.tail_mean_within_tolerance`` -- the fluid/packet
      hybrid's tail-mean queue must land within +/-50% of the oracle
      on every extra-delay point;
    * ``hybrid.cov_ordering_preserved`` -- the 85 us run must keep a
      higher queue CoV than the low-delay run (the paper's
      instability signature survives the fluid step).

    Per-backend event-loop rates and the batched struct-of-arrays
    port throughput (two window sizes) quantify the speedups the
    non-oracle backends buy.
    """
    from repro.experiments import fig05_dcqcn_sim_instability as fig05

    report: dict = {
        "heap": {
            "event_loop_events_per_sec":
                bench_event_loop(scheduler="heap"),
            "port_packets_per_sec": bench_port(),
        },
        "calendar": {
            "event_loop_events_per_sec":
                bench_event_loop(scheduler="calendar"),
        },
        "batched": {
            "port_packets_per_sec": bench_port_batched(window=64),
            "port_packets_per_sec_w256":
                bench_port_batched(window=256),
            "window": 64,
        },
    }

    heap_rows = fig05.run(duration=duration, engine="heap")
    calendar_rows = fig05.run(duration=duration, engine="calendar")
    hybrid_rows = fig05.run(duration=duration, engine="hybrid")
    report["fig05_duration_s"] = duration
    report["fig05_calendar_identical"] = heap_rows == calendar_rows

    points = []
    for oracle, hybrid in zip(heap_rows, hybrid_rows):
        points.append({
            "extra_delay_us": oracle.extra_delay_us,
            "oracle_queue_mean_kb": oracle.queue_mean_kb,
            "hybrid_queue_mean_kb": hybrid.queue_mean_kb,
            "mean_ratio": hybrid.queue_mean_kb
            / oracle.queue_mean_kb if oracle.queue_mean_kb
            else float("inf"),
            "oracle_cov": oracle.coefficient_of_variation,
            "hybrid_cov": hybrid.coefficient_of_variation,
        })
    by_delay = {row.extra_delay_us: row for row in hybrid_rows}
    report["hybrid"] = {
        "points": points,
        "tail_mean_within_tolerance": all(
            0.5 <= point["mean_ratio"] <= 1.5 for point in points),
        "cov_ordering_preserved":
            by_delay[85.0].coefficient_of_variation
            > by_delay[0.0].coefficient_of_variation,
    }
    return report


def run_benchmarks(workers: int = 4, full: bool = False,
                   baseline: Optional[dict] = None) -> dict:
    """Run everything and return the report dictionary."""
    import os

    from repro.perf.sweep import effective_cpu_count, resolve_workers

    report = {
        "version": REPORT_VERSION,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "effective_cpu_count": effective_cpu_count(),
        "workers_requested": workers,
        "workers_effective": resolve_workers(workers),
        "micro": {
            "event_loop_events_per_sec": bench_event_loop(),
            "port_packets_per_sec": bench_port(),
            "dde_steps_per_sec": bench_dde(),
            "stability_map_row_s": bench_stability_row(),
        },
        "telemetry": bench_telemetry_overhead(),
        "profiler": bench_profiler_overhead(),
        "forensics": bench_forensics_overhead(),
        "engines": bench_engines(),
        "sweeps": bench_sweeps(workers=workers, full=full),
        "resilience": bench_resilience(workers=workers),
        "backends": bench_backends(workers=min(workers, 2)),
    }
    if baseline:
        report["pre_pr_baseline"] = baseline
    return report


def write_report(report: dict, path: str = DEFAULT_REPORT) -> str:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def main(path: str = DEFAULT_REPORT, workers: int = 4,
         full: bool = False) -> int:
    report = run_benchmarks(workers=workers, full=full)
    target = write_report(report, path)
    json.dump(report, sys.stdout, indent=2, sort_keys=True)
    print(f"\n[report written to {target}]")
    return 0
