"""Parallel sweep execution over independent experiment cells.

Every sweep in this package -- phase-margin grids, FCT-vs-load curves,
fault scenarios -- evaluates one *cell function* over a list of
keyword-argument cells with no shared state between cells.  That makes
them embarrassingly parallel: :class:`SweepRunner` fans the cells out
over a :class:`concurrent.futures.ProcessPoolExecutor`, preserves the
input order of results, and optionally memoizes each cell through a
:class:`~repro.perf.cache.ResultCache`.

Determinism rules:

* Cell functions must be module-level (picklable) and must derive all
  randomness from their own arguments -- never from global state -- so
  a cell computes the same value no matter which process runs it, and
  ``workers=4`` is bit-identical to ``workers=1``.
* Cells that need per-cell seeds should derive them with
  :func:`derive_seed`, which follows numpy's ``spawn_key`` scheme: the
  derived stream depends only on ``(base_seed, *key)``, not on how
  many cells exist or the order they run in.

Worker processes set :data:`WORKER_ENV` so nested sweeps inside a
worker degrade to serial execution instead of oversubscribing the
machine.  If the platform cannot spawn a pool at all (restricted
sandboxes), the runner falls back to serial execution with a warning
-- results are identical either way, only the wall clock differs.
"""

from __future__ import annotations

import os
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from typing import (Any, Callable, Dict, List, Optional, Sequence,
                    Tuple)

import numpy as np

from repro.obs import metrics as _metrics
from repro.obs import spans as _spans
from repro.perf.cache import ResultCache

#: Set in sweep worker processes; nested SweepRunners see it and run
#: serially rather than forking pools of pools.
WORKER_ENV = "REPRO_SWEEP_WORKER"


def derive_seed(base_seed: int, *key: int) -> int:
    """Derive an independent per-cell seed from a base seed and a key.

    Uses ``numpy.random.SeedSequence(base_seed, spawn_key=key)`` -- the
    same construction ``Generator.spawn`` uses -- so distinct keys give
    statistically independent streams and the mapping depends only on
    the values, never on evaluation order.
    """
    sequence = np.random.SeedSequence(
        int(base_seed), spawn_key=tuple(int(part) for part in key))
    return int(sequence.generate_state(1, dtype=np.uint64)[0])


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a ``workers`` argument to an effective process count.

    ``None``, 0 and 1 mean serial; negative values mean "one per CPU".
    Inside a sweep worker process the answer is always 1.
    """
    if os.environ.get(WORKER_ENV):
        return 1
    if workers is None or workers == 0:
        return 1
    if workers < 0:
        return os.cpu_count() or 1
    return int(workers)


def _run_cell(payload: "Tuple[Callable[..., Any], Dict[str, Any]]"
              ) -> Any:
    """Top-level trampoline so (fn, kwargs) pairs cross the pickle."""
    fn, kwargs = payload
    os.environ[WORKER_ENV] = "1"
    return fn(**kwargs)


def _run_cell_timed(payload: "Tuple[Callable[..., Any], Dict[str, Any]]"
                    ) -> "Tuple[float, Any]":
    """Like :func:`_run_cell`, returning ``(wall_seconds, value)``.

    The elapsed time crosses the pickle boundary alongside the value
    so the parent can feed the ``perf.sweep.cell_seconds`` histogram
    and compute worker utilization without touching the result.
    """
    fn, kwargs = payload
    os.environ[WORKER_ENV] = "1"
    started = time.perf_counter()
    value = fn(**kwargs)
    return time.perf_counter() - started, value


class SweepRunner:
    """Maps a cell function over parameter cells, possibly in parallel.

    Parameters
    ----------
    workers:
        Process count (see :func:`resolve_workers`).  Serial execution
        runs the cells in-process in order; parallel execution
        preserves result order regardless of completion order.
    cache:
        Optional :class:`ResultCache`.  Each cell is keyed by the cell
        function's qualified name plus its kwargs; hits skip execution
        entirely and only the missing cells are dispatched.
    experiment_id:
        Cache namespace (required when ``cache`` is given).
    """

    def __init__(self, workers: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 experiment_id: Optional[str] = None):
        if cache is not None and not experiment_id:
            raise ValueError(
                "experiment_id is required when a cache is attached")
        self.workers = resolve_workers(workers)
        self.cache = cache
        self.experiment_id = experiment_id

    # -- cache plumbing ----------------------------------------------------

    def _cell_params(self, fn: Callable[..., Any],
                     cell: Dict[str, Any]) -> Dict[str, Any]:
        return {"fn": fn, "cell": cell}

    # -- execution ---------------------------------------------------------

    def map(self, fn: Callable[..., Any],
            cells: Sequence[Dict[str, Any]]) -> List[Any]:
        """Evaluate ``fn(**cell)`` for every cell, in input order."""
        cells = list(cells)
        label = self.experiment_id or getattr(fn, "__name__", "sweep")
        with _spans.span(f"sweep:{label}"):
            results: List[Any] = [None] * len(cells)
            pending: List[int] = []
            if self.cache is not None:
                for index, cell in enumerate(cells):
                    hit, value = self.cache.get(
                        self.experiment_id,
                        self._cell_params(fn, cell))
                    if hit:
                        results[index] = value
                    else:
                        pending.append(index)
            else:
                pending = list(range(len(cells)))

            registry = _metrics.get_registry()
            registry.counter("perf.sweep.cells_total").inc(len(cells))
            registry.counter("perf.sweep.cached_cells_total").inc(
                len(cells) - len(pending))
            if pending:
                computed = self._execute(fn,
                                         [cells[i] for i in pending])
                for index, value in zip(pending, computed):
                    results[index] = value
                    if self.cache is not None:
                        self.cache.put(
                            self.experiment_id,
                            self._cell_params(fn, cells[index]),
                            value)
            return results

    def _execute(self, fn: Callable[..., Any],
                 cells: List[Dict[str, Any]]) -> List[Any]:
        if self.workers <= 1 or len(cells) <= 1:
            return self._execute_serial(fn, cells)
        payloads = [(fn, cell) for cell in cells]
        pool_workers = min(self.workers, len(cells))
        try:
            wall_start = time.perf_counter()
            with ProcessPoolExecutor(max_workers=pool_workers) as pool:
                timed = list(pool.map(_run_cell_timed, payloads))
            wall = time.perf_counter() - wall_start
        except (OSError, PermissionError) as error:
            warnings.warn(
                f"process pool unavailable ({error}); sweep falling "
                f"back to serial execution", RuntimeWarning,
                stacklevel=2)
            return self._execute_serial(fn, cells)
        registry = _metrics.get_registry()
        histogram = registry.histogram("perf.sweep.cell_seconds")
        busy = 0.0
        for elapsed, _ in timed:
            histogram.observe(elapsed)
            busy += elapsed
        registry.gauge("perf.sweep.workers").set(pool_workers)
        if wall > 0:
            # Fraction of the pool's wall-clock capacity spent inside
            # cell functions; the rest is pickle + dispatch + idle
            # tail (stragglers holding the pool open).
            registry.gauge("perf.sweep.worker_utilization").set(
                busy / (wall * pool_workers))
        return [value for _, value in timed]

    def _execute_serial(self, fn: Callable[..., Any],
                        cells: List[Dict[str, Any]]) -> List[Any]:
        registry = _metrics.get_registry()
        histogram = registry.histogram("perf.sweep.cell_seconds")
        results = []
        for index, cell in enumerate(cells):
            with _spans.span(f"cell[{index}]"):
                started = time.perf_counter()
                results.append(fn(**cell))
                histogram.observe(time.perf_counter() - started)
        return results
