"""Parallel sweep execution over independent experiment cells.

Every sweep in this package -- phase-margin grids, FCT-vs-load curves,
fault scenarios -- evaluates one *cell function* over a list of
keyword-argument cells with no shared state between cells.  That makes
them embarrassingly parallel: :class:`SweepRunner` fans the cells out
over a :class:`concurrent.futures.ProcessPoolExecutor`, preserves the
input order of results, and optionally memoizes each cell through a
:class:`~repro.perf.cache.ResultCache`.

Dispatch is probe-based: the first cell always runs in-process and is
timed.  Grids too small to repay the pool's spawn cost
(:data:`POOL_SPAWN_COST_S` per worker) finish serially -- identical
results, no pool tax; cheap-but-numerous cells are submitted in
chunks of several cells per future to amortize pickle and dispatch
overhead (:func:`_run_chunk`).

Determinism rules:

* Cell functions must be module-level (picklable) and must derive all
  randomness from their own arguments -- never from global state -- so
  a cell computes the same value no matter which process runs it, and
  ``workers=4`` is bit-identical to ``workers=1``.
* Cells that need per-cell seeds should derive them with
  :func:`derive_seed`, which follows numpy's ``spawn_key`` scheme: the
  derived stream depends only on ``(base_seed, *key)``, not on how
  many cells exist or the order they run in.

Failure handling (see :mod:`repro.perf.resilience`):

* Pool supervision is always on: a worker that dies (OOM kill,
  SIGKILL, hard crash) breaks the executor; the runner respawns it,
  re-dispatches the cells that were in flight, and -- after repeated
  breakage -- degrades the worker count down to serial execution
  instead of aborting the sweep.
* Ctrl-C cancels queued cells (``cancel_futures``), terminates the
  worker processes, flushes the journal, and re-raises -- no orphaned
  workers, and the journal holds every cell that finished.
* Attaching a :class:`~repro.perf.resilience.ResiliencePolicy` adds
  per-cell wall-clock timeouts, bounded retries with exponential
  backoff, quarantine (a terminally failing cell yields a
  :class:`~repro.perf.resilience.CellFailure` placeholder plus a
  crash capsule instead of killing the sweep), and the crash-surviving
  completed-cell journal behind ``repro run --resume``.

Worker processes set :data:`WORKER_ENV` so nested sweeps inside a
worker degrade to serial execution instead of oversubscribing the
machine.  If the platform cannot spawn a pool at all (restricted
sandboxes), the runner falls back to serial execution with a warning
-- results are identical either way, only the wall clock differs.
"""

from __future__ import annotations

import os
import time
import traceback as _traceback
import warnings
from concurrent.futures import (FIRST_COMPLETED, BrokenExecutor,
                                ProcessPoolExecutor, wait as
                                _futures_wait)
from typing import (Any, Callable, Dict, List, Optional, Sequence,
                    Tuple)

import numpy as np

from repro.obs import metrics as _metrics
from repro.obs import spans as _spans
from repro.perf.cache import ResultCache, params_key
from repro.perf.resilience import (CellFailure, CrashCapsule,
                                   ResiliencePolicy, SweepJournal,
                                   capsule_path_for, journal_for)

#: Set in sweep worker processes; nested SweepRunners see it and run
#: serially rather than forking pools of pools.
WORKER_ENV = "REPRO_SWEEP_WORKER"

#: Pool breakages tolerated per worker-count step when no policy is
#: attached (supervision is on even for plain runners).
DEFAULT_POOL_RESPAWNS = 3

#: Estimated cost to spawn and warm one pool worker process, seconds
#: (fork/spawn + interpreter + ``import repro``).  The probe-based
#: dispatcher compares the measured per-cell cost against this to
#: decide whether a pool can possibly pay for itself: BENCH_PR6
#: recorded ``parallel_speedup: 0.76`` on the default
#: ``ext_stability_map`` grid (11 cells x ~28 ms on an
#: affinity-limited single CPU) precisely because the old runner
#: spawned four workers it could never amortize.
POOL_SPAWN_COST_S = 0.35

#: Probe time below which cells count as "cheap" and parallel
#: dispatch switches to chunked submission (several cells per pickle)
#: to amortize the per-future IPC overhead.
CHEAP_CELL_S = 0.05

#: Upper bound on cells per chunk, keeping re-dispatch units small
#: enough that a lost worker doesn't strike dozens of cells at once.
MAX_CHUNK = 64

#: Poll period bounds for the supervision loop, seconds.  The loop
#: sleeps inside ``concurrent.futures.wait`` between these bounds so
#: deadlines and backoff expiries are noticed promptly without
#: spinning.
_MIN_POLL_S = 0.02
_MAX_POLL_S = 0.25


def derive_seed(base_seed: int, *key: int) -> int:
    """Derive an independent per-cell seed from a base seed and a key.

    Uses ``numpy.random.SeedSequence(base_seed, spawn_key=key)`` -- the
    same construction ``Generator.spawn`` uses -- so distinct keys give
    statistically independent streams and the mapping depends only on
    the values, never on evaluation order.
    """
    sequence = np.random.SeedSequence(
        int(base_seed), spawn_key=tuple(int(part) for part in key))
    return int(sequence.generate_state(1, dtype=np.uint64)[0])


def effective_cpu_count() -> int:
    """CPUs actually available to this process, not the machine total.

    ``os.cpu_count()`` reports every core in the box, which oversells
    a cgroup-limited CI runner or a taskset-pinned job (BENCH_PR5
    recorded ``cpu_count: 1`` for exactly this reason).  Prefer
    ``os.process_cpu_count()`` (3.13+), then the scheduler affinity
    mask, then fall back to the raw count.
    """
    counter = getattr(os, "process_cpu_count", None)
    if counter is not None:
        count = counter()
        if count:
            return count
    if hasattr(os, "sched_getaffinity"):
        try:
            affinity = os.sched_getaffinity(0)
        except OSError:  # pragma: no cover - platform quirk
            affinity = None
        if affinity:
            return len(affinity)
    return os.cpu_count() or 1


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a ``workers`` argument to an effective process count.

    ``None``, 0 and 1 mean serial; negative values mean "one per
    *available* CPU" (see :func:`effective_cpu_count`).  Inside a
    sweep worker process the answer is always 1.
    """
    if os.environ.get(WORKER_ENV):
        return 1
    if workers is None or workers == 0:
        return 1
    if workers < 0:
        return effective_cpu_count()
    return int(workers)


def _run_cell(payload: "Tuple[Callable[..., Any], Dict[str, Any]]"
              ) -> Any:
    """Top-level trampoline so (fn, kwargs) pairs cross the pickle."""
    fn, kwargs = payload
    os.environ[WORKER_ENV] = "1"
    return fn(**kwargs)


def _run_cell_timed(payload: "Tuple[Callable[..., Any], Dict[str, Any]]"
                    ) -> "Tuple[float, Any]":
    """Like :func:`_run_cell`, returning ``(wall_seconds, value)``.

    The elapsed time crosses the pickle boundary alongside the value
    so the parent can feed the ``perf.sweep.cell_seconds`` histogram
    and compute worker utilization without touching the result.
    """
    fn, kwargs = payload
    os.environ[WORKER_ENV] = "1"
    started = time.perf_counter()
    value = fn(**kwargs)
    return time.perf_counter() - started, value


def _run_chunk(payload:
               "Tuple[Callable[..., Any], List[Dict[str, Any]]]"
               ) -> "List[Tuple[str, Any, Any]]":
    """Evaluate several cells in one worker round trip.

    Returns one outcome per cell, in order: ``("ok", wall_seconds,
    value)`` on success, ``("err", exception, traceback_text)`` on
    failure -- per-cell, so one bad cell in a chunk never taints its
    siblings.  Exceptions that refuse to pickle are replaced by a
    ``RuntimeError`` carrying their repr (the traceback text crosses
    regardless).
    """
    import pickle

    fn, cells = payload
    os.environ[WORKER_ENV] = "1"
    outcomes: "List[Tuple[str, Any, Any]]" = []
    for kwargs in cells:
        started = time.perf_counter()
        try:
            value = fn(**kwargs)
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as exc:
            text = _traceback.format_exc()
            try:
                pickle.dumps(exc)
            except Exception:
                exc = RuntimeError(f"{type(exc).__name__}: {exc}")
            outcomes.append(("err", exc, text))
        else:
            outcomes.append(
                ("ok", time.perf_counter() - started, value))
    return outcomes


def _sweep_event(event: str, **fields: Any) -> None:
    """Append a ``sweep`` event to the active run log, if any."""
    from repro.obs import telemetry as _telemetry
    bundle = _telemetry.current()
    if bundle is None:
        return
    try:
        bundle.run_log.sweep(event, **fields)
    except ValueError:
        pass  # run log already finished/closed


def _telemetry_tail(limit: int = 15) -> List[dict]:
    """Recent run-log events, for embedding into crash capsules."""
    from repro.obs import telemetry as _telemetry
    bundle = _telemetry.current()
    if bundle is None:
        return []
    try:
        from repro.obs.runlog import read_events
        return read_events(bundle.runlog_path)[-limit:]
    except Exception:
        return []


class _Pending:
    """Book-keeping for one not-yet-finished cell."""

    __slots__ = ("index", "cell", "key", "failures", "lost",
                 "not_before", "last_error", "last_traceback",
                 "last_kind")

    def __init__(self, index: int, cell: Dict[str, Any],
                 key: Optional[str]):
        self.index = index
        self.cell = cell
        self.key = key
        #: Exception/timeout failures (count against max_retries).
        self.failures = 0
        #: Worker-lost failures (separate, more forgiving budget --
        #: a pool breakage kills innocent bystander cells too).
        self.lost = 0
        self.not_before = 0.0  # monotonic time gate for backoff
        self.last_error: Optional[BaseException] = None
        self.last_traceback = ""
        self.last_kind = "exception"


class SweepRunner:
    """Maps a cell function over parameter cells, possibly in parallel.

    Parameters
    ----------
    workers:
        Process count (see :func:`resolve_workers`).  Serial execution
        runs the cells in-process in order; parallel execution
        preserves result order regardless of completion order.
    cache:
        Optional :class:`ResultCache`.  Each cell is keyed by the cell
        function's qualified name plus its kwargs; hits skip execution
        entirely and only the missing cells are dispatched.
    experiment_id:
        Cache/journal namespace (required when ``cache`` is given or
        the policy enables journaling).
    resilience:
        Optional :class:`~repro.perf.resilience.ResiliencePolicy`.
        When attached, failing cells are retried with backoff and
        quarantined as :class:`~repro.perf.resilience.CellFailure`
        placeholders instead of aborting the sweep, hung cells are
        timed out, and completed cells are journaled for
        crash-surviving resume.
    backend:
        Optional :class:`~repro.perf.backend.SweepBackend` overriding
        how pending cells execute (in-process, supervised pool, or
        the distributed queue).  ``None`` consults the ambient
        default set by :func:`~repro.perf.backend.use_backend`; when
        that is also unset, the runner keeps its historical
        serial-or-pool choice based on ``workers``.
    """

    def __init__(self, workers: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 experiment_id: Optional[str] = None,
                 resilience: Optional[ResiliencePolicy] = None,
                 backend: Optional["Any"] = None):
        if cache is not None and not experiment_id:
            raise ValueError(
                "experiment_id is required when a cache is attached")
        if resilience is not None \
                and resilience.journal_dir is not None \
                and not experiment_id:
            raise ValueError("experiment_id is required when the "
                             "resilience policy journals completed "
                             "cells")
        self.workers = resolve_workers(workers)
        self.cache = cache
        self.experiment_id = experiment_id
        self.resilience = resilience
        self.backend = backend
        self._journal: Optional[SweepJournal] = None

    def _effective_backend(self) -> Optional["Any"]:
        """Explicit backend, else the ambient default (may be None)."""
        if self.backend is not None:
            return self.backend
        from repro.perf import backend as _backend
        return _backend.default_backend()

    # -- cache / journal plumbing ------------------------------------------

    def _cell_params(self, fn: Callable[..., Any],
                     cell: Dict[str, Any]) -> Dict[str, Any]:
        return {"fn": fn, "cell": cell}

    @property
    def journal(self) -> Optional[SweepJournal]:
        """The completed-cell journal, opened lazily from the policy.

        Appends go to this process's private shard (reads merge all
        shards), so concurrent journal writers -- two resuming runs,
        distributed queue workers sharing a cache dir -- can never
        interleave torn records in one file.
        """
        if self._journal is None and self.resilience is not None \
                and self.resilience.journal_dir is not None:
            from repro.perf.resilience import process_shard
            fingerprint = self.cache.fingerprint \
                if self.cache is not None else None
            self._journal = journal_for(self.experiment_id,
                                        self.resilience.journal_dir,
                                        fingerprint=fingerprint,
                                        shard=process_shard())
        return self._journal

    def _cell_key(self, fn: Callable[..., Any],
                  cell: Dict[str, Any]) -> str:
        """One content hash shared by the cache, journal and capsules."""
        namespace = self.experiment_id or getattr(fn, "__name__",
                                                  "sweep")
        return params_key(namespace, self._cell_params(fn, cell))

    # -- execution ---------------------------------------------------------

    def map(self, fn: Callable[..., Any],
            cells: Sequence[Dict[str, Any]]) -> List[Any]:
        """Evaluate ``fn(**cell)`` for every cell, in input order.

        With a resilience policy attached, slots whose cell failed all
        retries hold :class:`~repro.perf.resilience.CellFailure`
        placeholders; filter with
        :func:`repro.perf.resilience.is_failure` when a sweep is
        allowed to be partial.
        """
        cells = list(cells)
        label = self.experiment_id or getattr(fn, "__name__", "sweep")
        journal = self.journal
        registry = _metrics.get_registry()
        backend = self._effective_backend()
        sweep_started = time.perf_counter()
        with _spans.span(f"sweep:{label}"):
            results: List[Any] = [None] * len(cells)
            need_keys = self.cache is not None or journal is not None \
                or self.resilience is not None \
                or bool(getattr(backend, "requires_keys", False))
            pending: List[_Pending] = []
            cached = resumed = 0
            for index, cell in enumerate(cells):
                key = self._cell_key(fn, cell) if need_keys else None
                if self.cache is not None:
                    hit, value = self.cache.get(
                        self.experiment_id,
                        self._cell_params(fn, cell))
                    if hit:
                        results[index] = value
                        cached += 1
                        continue
                if journal is not None:
                    hit, value = journal.lookup(key)
                    if hit:
                        results[index] = value
                        resumed += 1
                        # Promote journaled results into the cache so
                        # both stores converge.
                        if self.cache is not None:
                            self.cache.put(
                                self.experiment_id,
                                self._cell_params(fn, cell), value)
                        continue
                pending.append(_Pending(index, cell, key))

            registry.counter("perf.sweep.cells_total").inc(len(cells))
            registry.counter("perf.sweep.cached_cells_total").inc(
                cached)
            if resumed:
                registry.counter(
                    "perf.sweep.resumed_cells_total").inc(resumed)
                _sweep_event("resume", experiment=label,
                             resumed_cells=resumed,
                             pending_cells=len(pending))

            if pending:
                def finish(entry: _Pending, value: Any,
                           attempts: int, elapsed: float,
                           failure: Optional[CellFailure] = None
                           ) -> None:
                    results[entry.index] = value if failure is None \
                        else failure
                    if failure is not None:
                        if journal is not None:
                            journal.record_failure(failure, entry.key)
                        return
                    if journal is not None:
                        journal.record_cell(label, entry.key, value,
                                            attempts, elapsed)
                    if self.cache is not None:
                        self.cache.put(
                            self.experiment_id,
                            self._cell_params(fn, entry.cell), value)

                try:
                    if backend is not None:
                        backend.execute(self, fn, pending, finish)
                    else:
                        self._execute(fn, pending, finish)
                except KeyboardInterrupt:
                    registry.counter(
                        "perf.sweep.interrupts_total").inc()
                    _sweep_event("interrupted", experiment=label,
                                 completed_cells=sum(
                                     1 for r in results
                                     if r is not None))
                    if journal is not None:
                        journal.flush()
                    raise
            if journal is not None:
                # Successful completion: fold per-process shards
                # back into the base journal so long-lived
                # experiments don't accumulate one file per run.
                try:
                    journal.compact()
                except Exception:
                    journal.flush()  # unreadable sibling shard etc.
            # End-of-sweep aggregation point: the live throughput
            # gauge ``repro serve`` merges into the fleet /metrics.
            sweep_wall = time.perf_counter() - sweep_started
            if sweep_wall > 0:
                registry.gauge("perf.sweep.cells_per_sec").set(
                    len(cells) / sweep_wall)
            return results

    # -- shared failure handling -------------------------------------------

    def _quarantine(self, fn: Callable[..., Any], entry: _Pending,
                    finish: Callable[..., None]) -> None:
        """Turn a terminally failed cell into its placeholder slot."""
        from repro.perf.cache import canonicalize, code_fingerprint

        policy = self.resilience
        label = self.experiment_id or getattr(fn, "__name__", "sweep")
        if policy is None:
            # No policy, no quarantine: a plain runner keeps its
            # raise-on-failure contract.  Exceptions re-raise at the
            # call site; the only way here is a repeatedly lost
            # worker, which has no original exception to surface.
            raise RuntimeError(
                f"sweep cell {label}[{entry.index}] lost its worker "
                f"process {entry.lost} time(s) (OOM kill? hard "
                f"crash?); attach a ResiliencePolicy to quarantine "
                f"poison cells instead of aborting")
        error = entry.last_error
        failure = CellFailure(
            experiment_id=label,
            index=entry.index,
            params=canonicalize(entry.cell),
            kind=entry.last_kind,
            error_type=type(error).__name__ if error is not None
            else "WorkerLost",
            error_message=str(error) if error is not None
            else "worker process died",
            attempts=entry.failures + entry.lost,
            traceback=entry.last_traceback)
        capsule_path = None
        if policy is not None and policy.write_capsules:
            fingerprint = self.cache.fingerprint if self.cache \
                else code_fingerprint()
            capsule = CrashCapsule.from_failure(
                fn, entry.cell, failure, entry.key or "",
                fingerprint, telemetry_tail=_telemetry_tail())
            target = capsule_path_for(policy.resolved_capsule_dir(),
                                      label, entry.key or "nokey")
            try:
                capsule_path = str(capsule.write(target))
            except OSError as exc:  # unwritable capsule dir: degrade
                warnings.warn(f"could not write crash capsule to "
                              f"{target} ({exc})", RuntimeWarning,
                              stacklevel=2)
        if capsule_path is not None:
            import dataclasses
            failure = dataclasses.replace(failure,
                                          capsule_path=capsule_path)
        registry = _metrics.get_registry()
        registry.counter("perf.sweep.quarantined_total").inc()
        _sweep_event("cell_quarantined", experiment=label,
                     index=entry.index, kind=failure.kind,
                     error_type=failure.error_type,
                     error_message=failure.error_message,
                     attempts=failure.attempts,
                     capsule=capsule_path)
        finish(entry, None, failure.attempts, 0.0, failure=failure)

    def _record_failure(self, entry: _Pending, exc: BaseException,
                        kind: str, traceback_text: str = "") -> None:
        entry.failures += 1
        entry.last_error = exc
        entry.last_kind = kind
        entry.last_traceback = traceback_text or "".join(
            _traceback.format_exception_only(type(exc), exc))

    def _exhausted(self, entry: _Pending) -> bool:
        policy = self.resilience
        max_retries = policy.max_retries if policy is not None else 0
        respawns = policy.max_pool_respawns if policy is not None \
            else DEFAULT_POOL_RESPAWNS
        return entry.failures > max_retries \
            or entry.lost > respawns + max_retries

    # -- serial execution --------------------------------------------------

    def _execute(self, fn: Callable[..., Any],
                 pending: List[_Pending],
                 finish: Callable[..., None]) -> None:
        """Probe-based dispatch: serial, pool, or chunked pool.

        The first cell always runs in-process and is timed.  If the
        measured cost projected over the remaining cells cannot repay
        spawning the pool (:data:`POOL_SPAWN_COST_S` per worker), the
        sweep stays serial -- small grids on small machines no longer
        pay a 0.76x "speedup" for four workers they cannot feed.
        Cheap-but-numerous cells (< :data:`CHEAP_CELL_S`) go to the
        pool in chunks so the per-future pickle/dispatch overhead is
        amortized across several cells.
        """
        if self.workers <= 1 or len(pending) <= 1:
            self._execute_serial(fn, pending, finish)
            return
        policy = self.resilience
        if policy is not None and policy.cell_timeout is not None:
            # Wall-clock timeouts can only be enforced by killing a
            # worker process; hang protection outranks spawn cost.
            self._execute_pool(fn, pending, finish)
            return
        probe_started = time.perf_counter()
        self._execute_serial(fn, pending[:1], finish)
        probe_s = time.perf_counter() - probe_started
        remaining = pending[1:]
        width = min(self.workers, len(remaining))
        if probe_s * len(remaining) < POOL_SPAWN_COST_S * width:
            registry = _metrics.get_registry()
            registry.counter(
                "perf.sweep.serial_fallbacks_total").inc()
            _sweep_event(
                "serial_fallback",
                experiment=self.experiment_id
                or getattr(fn, "__name__", "sweep"),
                probe_s=probe_s, cells=len(remaining),
                workers=self.workers)
            self._execute_serial(fn, remaining, finish)
            return
        chunk = 1
        if probe_s < CHEAP_CELL_S:
            # Target ~4 chunks per worker so stragglers still balance.
            chunk = min(-(-len(remaining) // (width * 4)), MAX_CHUNK)
        self._execute_pool(fn, remaining, finish, chunk=chunk)

    def _execute_serial(self, fn: Callable[..., Any],
                        pending: List[_Pending],
                        finish: Callable[..., None]) -> None:
        """In-process execution, with retries when a policy allows.

        A running cell cannot be preempted from within its own
        process, so ``cell_timeout`` is not enforced here -- serial
        mode trades hang protection for zero dispatch overhead.
        """
        policy = self.resilience
        label = self.experiment_id or getattr(fn, "__name__", "sweep")
        registry = _metrics.get_registry()
        histogram = registry.histogram("perf.sweep.cell_seconds")
        for entry in pending:
            with _spans.span(f"cell[{entry.index}]"):
                while True:
                    started = time.perf_counter()
                    try:
                        value = fn(**entry.cell)
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    except BaseException as exc:
                        if policy is None:
                            raise
                        self._record_failure(
                            entry, exc, "exception",
                            _traceback.format_exc())
                        if self._exhausted(entry):
                            self._quarantine(fn, entry, finish)
                            break
                        registry.counter(
                            "perf.sweep.retries_total").inc()
                        _sweep_event("cell_retry", experiment=label,
                                     index=entry.index,
                                     attempt=entry.failures,
                                     error_type=type(exc).__name__)
                        policy.sleep(policy.backoff(entry.failures))
                    else:
                        elapsed = time.perf_counter() - started
                        histogram.observe(elapsed)
                        finish(entry, value,
                               entry.failures + entry.lost + 1,
                               elapsed)
                        break

    # -- supervised pool execution -----------------------------------------

    @staticmethod
    def _kill_executor(executor: ProcessPoolExecutor) -> None:
        """Tear a pool down *now*: cancel queued work, kill workers.

        Used on timeout, breakage and Ctrl-C; hung or dead workers
        never outlive the sweep.  The executor object is abandoned
        afterwards.
        """
        processes = list(getattr(executor, "_processes", {}).values())
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        for process in processes:
            try:
                if process.is_alive():
                    process.terminate()
            except Exception:
                pass
        for process in processes:
            try:
                process.join(timeout=2.0)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=1.0)
            except Exception:
                pass

    def _execute_pool(self, fn: Callable[..., Any],
                      pending: List[_Pending],
                      finish: Callable[..., None],
                      chunk: int = 1) -> None:
        """Supervised fan-out: timeouts, retries, respawn, degrade.

        ``chunk`` groups that many cells into one worker round trip
        (outcomes stay per-cell; see :func:`_run_chunk`).  Per-cell
        wall-clock timeouts need the future to *be* one cell, so an
        armed ``cell_timeout`` forces ``chunk = 1``.
        """
        policy = self.resilience
        label = self.experiment_id or getattr(fn, "__name__", "sweep")
        registry = _metrics.get_registry()
        histogram = registry.histogram("perf.sweep.cell_seconds")
        timeout = policy.cell_timeout if policy is not None else None
        max_respawns = policy.max_pool_respawns if policy is not None \
            else DEFAULT_POOL_RESPAWNS
        if timeout is not None:
            chunk = 1
        chunk = max(int(chunk), 1)

        waiting: List[_Pending] = list(pending)
        inflight: Dict[Any, List[_Pending]] = {}
        submitted_at: Dict[Any, float] = {}
        width = min(self.workers, len(pending))
        breakages = 0  # at the current worker width
        executor: Optional[ProcessPoolExecutor] = None
        wall_start = time.perf_counter()
        busy = 0.0
        clean_exit = False
        registry.gauge("perf.sweep.workers").set(width)

        def requeue(entry: _Pending, delay: float = 0.0) -> None:
            entry.not_before = time.monotonic() + delay
            waiting.append(entry)

        def lose_inflight(kind: str) -> None:
            """The pool died under its in-flight cells; re-dispatch.

            ``kind`` is "worker-lost" for breakage (any in-flight cell
            may be the killer, so each gets a lost-strike) or
            "collateral" for a deliberate timeout kill (the timed-out
            cell already took its strike; bystanders re-dispatch
            free).
            """
            for future, group in list(inflight.items()):
                for entry in group:
                    if kind == "worker-lost":
                        entry.lost += 1
                        entry.last_kind = "worker-lost"
                        entry.last_error = None
                        entry.last_traceback = ""
                        registry.counter(
                            "perf.sweep.worker_lost_total").inc()
                        if self._exhausted(entry):
                            self._quarantine(fn, entry, finish)
                            continue
                    requeue(entry)
            inflight.clear()
            submitted_at.clear()

        try:
            while waiting or inflight:
                if width <= 1:
                    # Degraded all the way down: drain what's left
                    # serially (retry/quarantine still apply).
                    if executor is not None:
                        self._kill_executor(executor)
                        executor = None
                    remaining = sorted(
                        waiting + [entry for group in inflight.values()
                                   for entry in group],
                        key=lambda entry: entry.index)
                    waiting, inflight = [], {}
                    self._execute_serial(fn, remaining, finish)
                    clean_exit = True
                    return
                if executor is None:
                    try:
                        executor = ProcessPoolExecutor(
                            max_workers=width)
                    except (OSError, PermissionError) as error:
                        warnings.warn(
                            f"process pool unavailable ({error}); "
                            f"sweep falling back to serial execution",
                            RuntimeWarning, stacklevel=2)
                        width = 1
                        continue

                now = time.monotonic()
                # Submit ready cells up to pool capacity, ``chunk``
                # cells per future.
                broken = False
                while len(inflight) < width:
                    group: List[_Pending] = []
                    index = 0
                    while index < len(waiting) and len(group) < chunk:
                        if waiting[index].not_before > now:
                            index += 1
                            continue
                        group.append(waiting.pop(index))
                    if not group:
                        break
                    try:
                        future = executor.submit(
                            _run_chunk,
                            (fn, [entry.cell for entry in group]))
                    except (BrokenExecutor, RuntimeError):
                        # RuntimeError: shutdown race, treat as
                        # breakage like a broken pool.
                        waiting.extend(group)
                        broken = True
                        break
                    inflight[future] = group
                    submitted_at[future] = time.monotonic()

                if not broken and not inflight:
                    # Everyone is backing off; sleep until the first
                    # becomes ready.
                    gate = min(entry.not_before for entry in waiting)
                    delay = max(gate - time.monotonic(), 0.0)
                    if policy is not None:
                        policy.sleep(delay)
                    else:  # pragma: no cover - backoff implies policy
                        time.sleep(delay)
                    continue

                if not broken:
                    # How long may wait() block without missing a
                    # deadline or a backoff expiry?
                    poll = _MAX_POLL_S
                    now = time.monotonic()
                    if timeout is not None:
                        for future in inflight:
                            deadline = submitted_at[future] + timeout
                            poll = min(poll, deadline - now)
                    for entry in waiting:
                        if entry.not_before > now:
                            poll = min(poll, entry.not_before - now)
                    done, _ = _futures_wait(
                        list(inflight), timeout=max(poll, _MIN_POLL_S),
                        return_when=FIRST_COMPLETED)

                    def fail(entry: _Pending, exc: BaseException,
                             text: str = "") -> None:
                        self._record_failure(entry, exc, "exception",
                                             text)
                        if self._exhausted(entry):
                            self._quarantine(fn, entry, finish)
                        else:
                            registry.counter(
                                "perf.sweep.retries_total").inc()
                            _sweep_event(
                                "cell_retry", experiment=label,
                                index=entry.index,
                                attempt=entry.failures,
                                error_type=type(exc).__name__)
                            requeue(entry,
                                    policy.backoff(entry.failures))

                    for future in done:
                        group = inflight.pop(future)
                        submitted_at.pop(future, None)
                        try:
                            outcomes = future.result()
                        except (KeyboardInterrupt, SystemExit):
                            raise
                        except BrokenExecutor:
                            # Put the cells back with the others; the
                            # breakage path below strikes every
                            # in-flight cell uniformly.
                            inflight[future] = group
                            broken = True
                            break
                        except BaseException as exc:
                            # Transport failure (e.g. unpicklable
                            # return value): every cell in the chunk
                            # shares the exception.
                            if policy is None:
                                raise
                            for entry in group:
                                fail(entry, exc)
                            continue
                        for entry, outcome in zip(group, outcomes):
                            if outcome[0] == "ok":
                                _, elapsed, value = outcome
                                busy += elapsed
                                histogram.observe(elapsed)
                                finish(entry, value,
                                       entry.failures + entry.lost + 1,
                                       elapsed)
                            else:
                                _, exc, text = outcome
                                if policy is None:
                                    raise exc
                                fail(entry, exc, text)

                if broken:
                    breakages += 1
                    registry.counter(
                        "perf.sweep.pool_respawns_total").inc()
                    self._kill_executor(executor)
                    executor = None
                    lose_inflight("worker-lost")
                    if breakages > max_respawns:
                        width = max(1, width // 2)
                        breakages = 0
                        registry.gauge(
                            "perf.sweep.degraded_workers").set(width)
                        _sweep_event("pool_degraded",
                                     experiment=label, workers=width)
                    _sweep_event("pool_respawn", experiment=label,
                                 workers=width, breakages=breakages)
                    continue

                # Per-cell wall-clock timeouts: a hung worker cannot
                # be interrupted, so the whole pool is killed and the
                # innocent in-flight cells are re-dispatched free.
                if timeout is not None and inflight:
                    now = time.monotonic()
                    expired = [
                        (future, group)
                        for future, group in inflight.items()
                        if now - submitted_at[future] > timeout
                        and not future.done()]
                    if expired:
                        for future, group in expired:
                            inflight.pop(future)
                            submitted_at.pop(future, None)
                            for entry in group:
                                exc = TimeoutError(
                                    f"cell exceeded {timeout:g}s "
                                    f"wall-clock budget")
                                self._record_failure(entry, exc,
                                                     "timeout")
                                registry.counter(
                                    "perf.sweep.timeouts_total").inc()
                                _sweep_event(
                                    "cell_timeout", experiment=label,
                                    index=entry.index,
                                    attempt=entry.failures,
                                    timeout_s=timeout)
                                if self._exhausted(entry):
                                    self._quarantine(fn, entry,
                                                     finish)
                                else:
                                    requeue(entry)
                        registry.counter(
                            "perf.sweep.pool_respawns_total").inc()
                        self._kill_executor(executor)
                        executor = None
                        lose_inflight("collateral")
            clean_exit = True
        finally:
            if executor is not None:
                if clean_exit:
                    executor.shutdown(wait=True)
                else:
                    self._kill_executor(executor)

        wall = time.perf_counter() - wall_start
        registry.gauge("perf.sweep.workers").set(width)
        if wall > 0:
            # Fraction of the pool's wall-clock capacity spent inside
            # cell functions; the rest is pickle + dispatch + idle
            # tail (stragglers holding the pool open).
            registry.gauge("perf.sweep.worker_utilization").set(
                busy / (wall * width))
