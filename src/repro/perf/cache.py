"""Content-addressed on-disk cache for experiment results.

Every headline artefact of the paper is a sweep over a parameter grid,
and every cell of every sweep is a pure function of its parameters --
so once computed, a cell's result dataclasses can be stored and reused
across processes and sessions.  The cache keys each entry by

* the experiment id (namespacing),
* a canonicalized hash of the cell parameters (dataclasses, tuples,
  numpy scalars and arrays all normalize to one JSON form), and
* a *code fingerprint* -- a digest of the ``repro`` package sources --
  stored in the entry so that editing any module invalidates every
  result computed by the old code.

Entries live under ``$REPRO_CACHE_DIR`` (default ``~/.cache/repro``)
as pickle files named by the parameter hash.  A cached parallel sweep
and a cold serial sweep return bit-identical values because the cache
stores the exact result objects the cell functions produced.

Failure handling is deliberately forgiving: a corrupt entry (truncated
write, version skew) is deleted and recomputed, never raised, and
every outcome is counted in :class:`CacheStats` so tests and the CLI
can report hit rates.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional, Tuple

from repro.obs import metrics as _metrics

#: Environment variable overriding the cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable overriding the computed code fingerprint
#: (used by tests to simulate code changes without editing files).
FINGERPRINT_ENV = "REPRO_CODE_FINGERPRINT"

#: Bump to orphan every pre-existing entry on disk when the storage
#: format itself changes (orphaned files are simply never read).
FORMAT_VERSION = 1

_fingerprint_memo: Optional[str] = None


def default_cache_dir() -> Path:
    """Resolve the cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro"


def canonicalize(obj: Any) -> Any:
    """Reduce ``obj`` to a deterministic JSON-serializable form.

    Dataclasses become ``{"__dataclass__": name, **fields}``, tuples
    and sets become sorted-where-unordered lists, numpy scalars become
    Python numbers, arrays become nested lists, and callables reduce to
    their qualified name (cells are keyed partly by *which* function
    computes them).  Unknown objects fall back to ``repr`` -- stable
    for the frozen parameter dataclasses this package uses.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr round-trips doubles exactly and canonically.
        return float(obj)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out = {"__dataclass__": type(obj).__name__}
        for f in dataclasses.fields(obj):
            out[f.name] = canonicalize(getattr(obj, f.name))
        return out
    if isinstance(obj, dict):
        return {str(key): canonicalize(value)
                for key, value in sorted(obj.items(), key=lambda kv:
                                         str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(canonicalize(item) for item in obj)
    if hasattr(obj, "tolist"):  # numpy scalars and arrays
        return canonicalize(obj.tolist())
    if hasattr(obj, "item") and callable(getattr(obj, "item")):
        return canonicalize(obj.item())
    if callable(obj):
        return f"{getattr(obj, '__module__', '?')}." \
               f"{getattr(obj, '__qualname__', repr(obj))}"
    return repr(obj)


def params_key(experiment_id: str, params: Any) -> str:
    """Content hash of (experiment id, canonicalized parameters)."""
    payload = json.dumps({"experiment": experiment_id,
                          "params": canonicalize(params)},
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def code_fingerprint() -> str:
    """Digest of every ``.py`` source file in the ``repro`` package.

    Computed once per process (the source tree does not change under
    a running experiment); override with ``$REPRO_CODE_FINGERPRINT``
    to pin or perturb it in tests.
    """
    global _fingerprint_memo
    override = os.environ.get(FINGERPRINT_ENV)
    if override:
        return override
    if _fingerprint_memo is not None:
        return _fingerprint_memo
    import repro
    root = Path(repro.__file__).parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(path.read_bytes())
    _fingerprint_memo = digest.hexdigest()
    return _fingerprint_memo


@dataclass
class CacheStats:
    """Counters describing how a :class:`ResultCache` has been used."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    #: Entries discarded because their code fingerprint was stale.
    invalidations: int = 0
    #: Entries discarded because they failed to load (corruption).
    corrupt_entries: int = 0
    #: Orphaned ``*.tmp`` files reaped (a writer killed mid-``put``).
    stale_tmp_reaped: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 when unused)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "puts": self.puts, "invalidations": self.invalidations,
                "corrupt_entries": self.corrupt_entries,
                "stale_tmp_reaped": self.stale_tmp_reaped,
                "hit_rate": self.hit_rate}


@dataclass
class ResultCache:
    """Pickle-backed store mapping (experiment, params) to results.

    Parameters
    ----------
    root:
        Cache directory (created lazily).  Defaults to
        :func:`default_cache_dir`.
    fingerprint:
        Code fingerprint stamped into new entries and demanded of old
        ones.  Defaults to :func:`code_fingerprint`.
    """

    root: Path = field(default_factory=default_cache_dir)
    fingerprint: str = field(default_factory=code_fingerprint)
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    def entry_path(self, experiment_id: str, params: Any) -> Path:
        """Where the entry for (experiment, params) lives on disk."""
        key = params_key(experiment_id, params)
        return self.root / experiment_id / f"{key}.pkl"

    def get(self, experiment_id: str,
            params: Any) -> Tuple[bool, Any]:
        """Look up one entry; returns ``(hit, value)``.

        A stale-fingerprint or unreadable entry is deleted (counted in
        :attr:`stats`) and reported as a miss.
        """
        # Registry counters mirror ``stats`` so cache behaviour shows
        # up in run logs; lookups are disk-bound, so the (no-op by
        # default) registry calls are noise here.
        registry = _metrics.get_registry()
        path = self.entry_path(experiment_id, params)
        if not path.exists():
            self.stats.misses += 1
            registry.counter("perf.cache.misses_total").inc()
            return False, None
        try:
            with open(path, "rb") as handle:
                entry = pickle.load(handle)
            fingerprint = entry["fingerprint"]
            version = entry["version"]
            value = entry["value"]
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception:
            self.stats.corrupt_entries += 1
            self.stats.misses += 1
            registry.counter("perf.cache.corrupt_entries_total").inc()
            registry.counter("perf.cache.misses_total").inc()
            self._discard(path)
            return False, None
        if version != FORMAT_VERSION or fingerprint != self.fingerprint:
            self.stats.invalidations += 1
            self.stats.misses += 1
            registry.counter("perf.cache.invalidations_total").inc()
            registry.counter("perf.cache.misses_total").inc()
            self._discard(path)
            return False, None
        self.stats.hits += 1
        registry.counter("perf.cache.hits_total").inc()
        return True, value

    def put(self, experiment_id: str, params: Any, value: Any) -> Path:
        """Store one entry atomically (write-to-temp, rename)."""
        path = self.entry_path(experiment_id, params)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"version": FORMAT_VERSION,
                 "fingerprint": self.fingerprint,
                 "experiment": experiment_id,
                 "params": canonicalize(params),
                 "value": value}
        handle, temp_name = tempfile.mkstemp(dir=str(path.parent),
                                             suffix=".tmp")
        try:
            with os.fdopen(handle, "wb") as stream:
                pickle.dump(entry, stream,
                            protocol=pickle.HIGHEST_PROTOCOL)
                # Force the bytes to the device *before* the rename
                # becomes visible: without this, a machine crash can
                # publish a name pointing at unwritten data -- the one
                # torn-entry case tmp+replace alone does not cover.
                stream.flush()
                os.fsync(stream.fileno())
            os.replace(temp_name, path)
        except BaseException:
            self._discard(Path(temp_name))
            raise
        self.stats.puts += 1
        _metrics.get_registry().counter(
            "perf.cache.puts_total").inc()
        return path

    def get_or_run(self, experiment_id: str, params: Any,
                   fn: Callable[[], Any]) -> Any:
        """Return the cached value, or compute via ``fn`` and store it."""
        hit, value = self.get(experiment_id, params)
        if hit:
            return value
        value = fn()
        self.put(experiment_id, params, value)
        return value

    def reap_stale_tmp(self, max_age_s: float = 3600.0) -> int:
        """Delete orphaned ``*.tmp`` files left by killed writers.

        A worker SIGKILLed mid-:meth:`put` can never tear a published
        entry (the rename is atomic), but it does leak its temp file.
        Only files older than ``max_age_s`` are touched so a
        concurrent, still-writing process is never raced; the count
        lands in :attr:`stats` and the registry.
        """
        if not self.root.exists():
            return 0
        now = time.time()
        reaped = 0
        for path in self.root.rglob("*.tmp"):
            try:
                if now - path.stat().st_mtime < max_age_s:
                    continue
                path.unlink()
                reaped += 1
            except OSError:
                continue  # vanished or unreadable: someone else's
        if reaped:
            self.stats.stale_tmp_reaped += reaped
            _metrics.get_registry().counter(
                "perf.cache.stale_tmp_reaped_total").inc(reaped)
        return reaped

    def clear(self, experiment_id: Optional[str] = None) -> int:
        """Delete entries (all, or one experiment's); returns the count."""
        base = self.root if experiment_id is None \
            else self.root / experiment_id
        if not base.exists():
            return 0
        removed = 0
        for path in base.rglob("*.pkl"):
            self._discard(path)
            removed += 1
        return removed

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
