"""The long-running sweep worker behind ``python -m repro worker``.

A :class:`QueueWorker` points at the same queue directory a
:class:`~repro.perf.backend.QueueBackend` coordinator dispatches
into, and loops: claim a cell (atomic rename out of ``tasks/``),
execute it, park the result in ``results/``, release the lease.
Any number of workers -- across processes and hosts sharing the
directory -- drain the same queue.

Robustness contract:

* A **heartbeat thread** renews the worker's registration and its
  active lease every ``lease_ttl / 4`` seconds (atomic rewrite +
  fsync, so the file's mtime -- the liveness signal -- only advances
  when the bytes are durable).  A SIGKILLed worker stops renewing;
  its lease expires and a peer (or the coordinator) steals the cell.
* **SIGTERM is clean**: the in-flight cell's lease is released back
  to ``tasks/`` un-penalized, the registration is removed, and the
  process exits 0 -- drain a host with plain ``kill``.
* A cell that **raises** is re-queued with its ``attempts`` count
  incremented until the budget the coordinator stamped into the task
  is exhausted, then terminally failed into ``results/`` with the
  pickled exception for the coordinator to re-raise or quarantine.
* A task carrying a **foreign code fingerprint** is left alone
  (executing it would break bit-identity).  The registration
  advertises this worker's own fingerprint, so a coordinator on a
  different checkout does not count it as live-for-its-purposes and
  its grace fallback recomputes such cells locally instead of
  waiting on a fleet that will never touch them.
* When ``tasks/`` is empty the worker scavenges ``claims/`` for
  expired leases (dead peers) before going back to sleep.

The worker sets :data:`~repro.perf.sweep.WORKER_ENV` so nested
sweeps inside a cell run serially instead of forking pools of pools.
"""

from __future__ import annotations

import os
import signal
import socket
import sys
import threading
import time
import traceback as _traceback
from pathlib import Path
from typing import Any, Optional, Union

from repro.obs import metrics as _metrics
from repro.perf.backend import (DEFAULT_LEASE_TTL, QueueLayout,
                                _atomic_write_json, _read_json,
                                _worker_event, make_failure_result,
                                make_result, steal_expired_leases)
from repro.perf.cache import code_fingerprint
from repro.perf.resilience import (_resolve_callable, decode_value)
from repro.perf.sweep import WORKER_ENV


class GracefulExit(Exception):
    """Raised in the worker main thread by the SIGTERM handler."""


def default_worker_id() -> str:
    """``<host>-<pid>`` -- unique per live process, human-readable."""
    from repro.obs.metrics import sanitize
    return f"{sanitize(socket.gethostname())}-{os.getpid()}"


class QueueWorker:
    """One claim-execute-release loop over a shared queue directory.

    Parameters
    ----------
    queue_dir:
        The directory a :class:`~repro.perf.backend.QueueBackend`
        coordinator dispatches into.
    worker_id:
        Registration name; defaults to ``<host>-<pid>``.
    lease_ttl:
        Must match (or exceed) the coordinator's: leases older than
        this are considered abandoned by everyone.
    heartbeat_interval:
        Lease/registration renewal period; defaults to
        ``lease_ttl / 4`` so a healthy worker never looks dead.
    poll_interval:
        Sleep between empty scans of ``tasks/``.
    """

    def __init__(self, queue_dir: Union[str, Path],
                 worker_id: Optional[str] = None,
                 lease_ttl: float = DEFAULT_LEASE_TTL,
                 heartbeat_interval: Optional[float] = None,
                 poll_interval: float = 0.2):
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be positive, "
                             f"got {lease_ttl}")
        self.layout = QueueLayout(queue_dir)
        self.worker_id = worker_id or default_worker_id()
        #: The code this worker would execute cells under; claims
        #: are restricted to tasks stamped with the same fingerprint
        #: and the registration advertises it (coordinators only
        #: count fingerprint-compatible workers as live).
        self.fingerprint = code_fingerprint()
        self.lease_ttl = float(lease_ttl)
        self.heartbeat_interval = (heartbeat_interval
                                   if heartbeat_interval is not None
                                   else self.lease_ttl / 4.0)
        self.poll_interval = float(poll_interval)
        self.completed = 0
        self.failed = 0
        self.stolen = 0
        self._beats = 0
        self._stop = threading.Event()
        self._lock = threading.Lock()
        #: (claim path, task dict) of the in-flight cell, heartbeat
        #: -renewed while set.  Guarded by ``_lock`` so completion
        #: and renewal can never resurrect a released lease.
        self._active: Optional[tuple] = None
        self._heartbeat_thread: Optional[threading.Thread] = None
        #: Keys skipped for foreign fingerprints (warn once each).
        self._skipped_fingerprints: set = set()

    # -- registration and heartbeats --------------------------------------

    def _metrics_snapshot(self) -> dict:
        """This worker's registry snapshot plus synthesized progress
        counters, piggybacked onto every heartbeat registration so
        the observability plane (:mod:`repro.obs.serve`) can merge
        fleet-wide metrics without any extra write traffic.  The
        progress counters are synthesized from plain attributes so
        the fleet ``/metrics`` endpoint works even when the worker
        runs without ``--telemetry`` (null registry)."""
        try:
            snapshot = dict(_metrics.get_registry().snapshot())
        except Exception:  # pragma: no cover - racing registration
            snapshot = {}
        snapshot["perf.worker.cells_completed"] = {
            "type": "counter", "value": self.completed}
        snapshot["perf.worker.cells_failed"] = {
            "type": "counter", "value": self.failed}
        snapshot["perf.worker.leases_stolen"] = {
            "type": "counter", "value": self.stolen}
        snapshot["perf.worker.heartbeats_total"] = {
            "type": "counter", "value": self._beats}
        return snapshot

    def _registration(self) -> dict:
        return {"worker": self.worker_id, "pid": os.getpid(),
                "host": socket.gethostname(),
                "python": sys.version.split()[0],
                "fingerprint": self.fingerprint,
                "beats": self._beats, "ts": time.time(),
                "metrics": self._metrics_snapshot()}

    def register(self) -> None:
        self.layout.ensure()
        _atomic_write_json(
            self.layout.worker_path(self.worker_id),
            self._registration())

    def deregister(self) -> None:
        try:
            os.unlink(self.layout.worker_path(self.worker_id))
        except OSError:
            pass

    def heartbeat(self) -> None:
        """Renew the registration and the active lease (one beat)."""
        self._beats += 1
        _atomic_write_json(
            self.layout.worker_path(self.worker_id),
            self._registration())
        with self._lock:
            if self._active is not None:
                claim_path, task = self._active
                leased = dict(task)
                leased["worker"] = self.worker_id
                leased["beats"] = self._beats
                _atomic_write_json(claim_path, leased)

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            try:
                self.heartbeat()
            except OSError:  # pragma: no cover - transient shared-FS
                pass

    def _start_heartbeats(self) -> None:
        if self._heartbeat_thread is None:
            self._heartbeat_thread = threading.Thread(
                target=self._heartbeat_loop,
                name=f"repro-heartbeat-{self.worker_id}",
                daemon=True)
            self._heartbeat_thread.start()

    # -- claim / execute / release ----------------------------------------

    def _claim(self) -> Optional[tuple]:
        """Atomically claim one ready task; None if none claimable."""
        for key in self.layout.task_keys():
            task_path = self.layout.task_path(key)
            task = _read_json(task_path)
            if task is None:
                continue  # claimed/withdrawn between scan and read
            if task.get("fingerprint") != self.fingerprint:
                if key not in self._skipped_fingerprints:
                    self._skipped_fingerprints.add(key)
                    _metrics.get_registry().counter(
                        "perf.worker.fingerprint_skips_total").inc()
                continue
            claim_path = self.layout.claim_path(key)
            try:
                # rename preserves the source mtime, and lease age
                # *is* mtime age -- a task that sat queued longer
                # than lease_ttl would be born expired and instantly
                # stolen out from under us.  Freshen it first.
                os.utime(task_path)
                os.rename(task_path, claim_path)
            except OSError:
                continue  # another worker won the race
            leased = dict(task)
            leased["worker"] = self.worker_id
            leased["claimed_ts"] = time.time()
            _atomic_write_json(claim_path, leased)
            return claim_path, task
        return None

    def _requeue(self, claim_path: Path, task: dict) -> bool:
        """Move a held lease back to ``tasks/`` -- atomically, and
        only if the claim still exists.

        A vanished claim means the cell was withdrawn by its
        coordinator (Ctrl-C) or stolen by a peer after our lease
        expired; re-queueing our stale copy would resurrect an
        orphan task no coordinator is waiting on, or overwrite the
        stolen task's incremented ``steals`` bookkeeping.  In either
        case the right move is to drop it.
        """
        try:
            os.rename(claim_path, self.layout.task_path(task["key"]))
        except OSError:
            return False
        return True

    def _release(self, claim_path: Path, task: dict) -> None:
        """Put a claimed-but-unfinished cell back, un-penalized."""
        with self._lock:
            self._active = None
        if self._requeue(claim_path, task):
            _worker_event("cell_released", key=task["key"],
                          worker=self.worker_id)

    def _finish(self, claim_path: Path, result: dict) -> None:
        """Park a result and drop the lease (in that order: a crash
        between the two leaves a result *and* a stale lease, which a
        stealer turns into a duplicate recompute at worst)."""
        with self._lock:
            self._active = None
        _atomic_write_json(
            self.layout.result_path(result["key"],
                                    result["fingerprint"]), result)
        try:
            os.unlink(claim_path)
        except OSError:
            pass

    def _trace_record(self, task: dict, ts: float, wall_s: float,
                      cpu_s: float, status: str) -> None:
        """Append this cell's span to the worker's fleet-trace shard
        (see :mod:`repro.obs.spans`) when the coordinator stamped a
        ``trace_id`` into the task.  A stolen cell keeps its original
        trace id, so the stitched tree shows the recompute under the
        surviving worker."""
        trace_id = task.get("trace_id")
        if not trace_id:
            return
        from repro.obs import spans as _spans
        root = task.get("trace_root") or "coordinator"
        name = f"cell[{task.get('index')}]"
        record = {"trace_id": trace_id, "name": name,
                  "path": f"{root}/worker:{self.worker_id}/{name}",
                  "ts": ts, "wall_s": wall_s, "cpu_s": cpu_s,
                  "worker": self.worker_id, "key": task.get("key"),
                  "steals": task.get("steals", 0),
                  "attempts": task.get("attempts", 0),
                  "status": status}
        try:
            _spans.append_trace_record(
                _spans.trace_shard_path(self.layout.root,
                                        self.worker_id), record)
        except OSError:  # pragma: no cover - transient shared-FS
            pass

    def step(self) -> bool:
        """Claim and run one cell; False when nothing was claimable."""
        claimed = self._claim()
        if claimed is None:
            return False
        claim_path, task = claimed
        with self._lock:
            self._active = (claim_path, task)
        registry = _metrics.get_registry()
        _worker_event("cell_claimed", key=task["key"],
                      index=task.get("index"), worker=self.worker_id,
                      experiment=task.get("experiment"))
        started_ts = time.time()
        started = time.perf_counter()
        cpu_started = time.process_time()
        try:
            fn = _resolve_callable(task["fn"])
            kwargs = decode_value(task["kwargs"])
            value = fn(**kwargs)
        except (GracefulExit, KeyboardInterrupt, SystemExit):
            self._release(claim_path, task)
            raise
        except BaseException as exc:
            elapsed = time.perf_counter() - started
            self._trace_record(task, started_ts, elapsed,
                               time.process_time() - cpu_started,
                               status="error")
            self._handle_cell_error(claim_path, task, exc, elapsed)
            return True
        elapsed = time.perf_counter() - started
        self._trace_record(task, started_ts, elapsed,
                           time.process_time() - cpu_started,
                           status="ok")
        self._finish(claim_path,
                     make_result(task, value, elapsed,
                                 self.worker_id))
        self.completed += 1
        registry.counter("perf.worker.cells_total").inc()
        registry.histogram("perf.worker.cell_seconds").observe(
            elapsed)
        _worker_event("cell_completed", key=task["key"],
                      index=task.get("index"), worker=self.worker_id,
                      elapsed_s=elapsed)
        return True

    def _handle_cell_error(self, claim_path: Path, task: dict,
                           exc: BaseException,
                           elapsed: float) -> None:
        registry = _metrics.get_registry()
        registry.counter("perf.worker.cell_failures_total").inc()
        task = dict(task)
        task["attempts"] = int(task.get("attempts", 0)) + 1
        terminal = task["attempts"] >= int(task.get("max_attempts",
                                                    1))
        if terminal:
            failure = make_failure_result(
                task, kind="exception",
                error_type=type(exc).__name__,
                error_message=str(exc),
                traceback_text=_traceback.format_exc(),
                worker_id=self.worker_id, error=exc)
            self._finish(claim_path, failure)
            self.failed += 1
            _worker_event("cell_failed", key=task["key"],
                          index=task.get("index"),
                          worker=self.worker_id, terminal=True,
                          attempts=task["attempts"],
                          error_type=type(exc).__name__,
                          elapsed_s=elapsed)
        else:
            # Re-queue for any worker (including this one) to retry.
            with self._lock:
                self._active = None
            if not self._requeue(claim_path, task):
                return  # withdrawn or stolen: not ours to retry
            # The rename carried the stale lease payload; stamp the
            # incremented attempt count over it.  A peer claiming in
            # this window at worst duplicates one idempotent attempt.
            _atomic_write_json(self.layout.task_path(task["key"]),
                               task)
            registry.counter("perf.worker.cell_retries_total").inc()
            _worker_event("cell_requeued", key=task["key"],
                          index=task.get("index"),
                          worker=self.worker_id,
                          attempts=task["attempts"],
                          error_type=type(exc).__name__)

    # -- the service loop --------------------------------------------------

    def _install_sigterm(self) -> Optional[Any]:
        def handler(signum, frame):
            raise GracefulExit()
        try:
            return signal.signal(signal.SIGTERM, handler)
        except ValueError:  # not the main thread (tests)
            return None

    def run(self, max_cells: Optional[int] = None,
            max_idle: Optional[float] = None) -> int:
        """Serve until SIGTERM, ``max_cells`` done, or idle too long.

        Returns the number of cells completed (successes).  ``None``
        bounds mean "forever" -- the production posture; tests and
        drain scripts pass ``max_idle``/``max_cells``.
        """
        os.environ[WORKER_ENV] = "1"
        self.register()
        self._start_heartbeats()
        _worker_event("worker_started", worker=self.worker_id,
                      queue_dir=str(self.layout.root))
        previous_handler = self._install_sigterm()
        idle_since = time.monotonic()
        try:
            while True:
                if max_cells is not None and \
                        self.completed + self.failed >= max_cells:
                    break
                try:
                    busy = self.step()
                except GracefulExit:
                    break
                if busy:
                    idle_since = time.monotonic()
                    continue
                stolen, _ = steal_expired_leases(
                    self.layout, self.lease_ttl,
                    stealer=self.worker_id)
                self.stolen += stolen
                if stolen:
                    idle_since = time.monotonic()
                    continue
                if max_idle is not None and \
                        time.monotonic() - idle_since > max_idle:
                    break
                if self._stop.wait(self.poll_interval):
                    break
        except GracefulExit:
            pass
        finally:
            self._stop.set()
            if previous_handler is not None:
                try:
                    signal.signal(signal.SIGTERM, previous_handler)
                except ValueError:
                    pass
            if self._heartbeat_thread is not None:
                self._heartbeat_thread.join(timeout=2.0)
                self._heartbeat_thread = None
            # A lease still held here (GracefulExit mid-bookkeeping)
            # goes back to the queue un-penalized -- unless the
            # claim is already gone (withdrawn/stolen), in which
            # case re-creating it would orphan a task.
            with self._lock:
                active, self._active = self._active, None
            if active is not None:
                claim_path, task = active
                self._requeue(claim_path, task)
            self.deregister()
            _worker_event("worker_stopped", worker=self.worker_id,
                          completed=self.completed,
                          failed=self.failed, stolen=self.stolen)
        return self.completed


def spawn_worker(queue_dir: Union[str, Path],
                 lease_ttl: float = DEFAULT_LEASE_TTL,
                 max_idle: Optional[float] = None,
                 worker_id: Optional[str] = None,
                 extra_args: Optional[list] = None):
    """Start ``python -m repro worker`` as a subprocess (bench/tests).

    Ensures the child can import :mod:`repro` even when the parent
    runs from a source checkout (prepends the package root to
    ``PYTHONPATH``).  Returns the :class:`subprocess.Popen`.
    """
    import subprocess

    import repro
    src_root = str(Path(repro.__file__).parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_root if not existing \
        else os.pathsep.join([src_root, existing])
    argv = [sys.executable, "-m", "repro", "worker", str(queue_dir),
            "--lease-ttl", str(lease_ttl)]
    if max_idle is not None:
        argv += ["--max-idle", str(max_idle)]
    if worker_id is not None:
        argv += ["--worker-id", worker_id]
    argv += list(extra_args or [])
    return subprocess.Popen(argv, env=env,
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
