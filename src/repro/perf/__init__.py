"""Performance layer: parallel sweeps, result caching, benchmarks.

The paper's artefacts are dense parameter grids; this package makes
them fast three ways:

* :class:`~repro.perf.sweep.SweepRunner` fans independent grid cells
  out over a process pool (``workers=``), with deterministic per-cell
  seeding via :func:`~repro.perf.sweep.derive_seed`;
* :class:`~repro.perf.cache.ResultCache` memoizes cell results on disk,
  keyed by experiment id, canonical parameters, and a fingerprint of
  the package sources;
* :mod:`repro.perf.bench` measures the hot loops (event engine, port
  serialization, DDE stepping, margin sweeps) and emits the JSON
  consumed by the perf-trajectory tooling;
* :mod:`repro.perf.resilience` makes long sweeps survivable:
  :class:`~repro.perf.resilience.ResiliencePolicy` adds per-cell
  timeouts, bounded retries with backoff and poison-cell quarantine
  (:class:`~repro.perf.resilience.CellFailure`), the
  :class:`~repro.perf.resilience.SweepJournal` gives crash-surviving
  ``--resume``, and :class:`~repro.perf.resilience.CrashCapsule` +
  ``repro replay`` reproduce terminal cell failures deterministically;
* :mod:`repro.perf.backend` abstracts *where* sweep cells execute --
  in-process, the supervised local pool, or a lease-based shared-
  filesystem job queue drained by ``python -m repro worker``
  processes on any number of hosts (:mod:`repro.perf.worker`), with
  graceful degradation back to local execution when no worker is
  alive.
"""

from repro.perf.backend import (BACKEND_CHOICES, InProcessBackend,
                                PoolBackend, QueueBackend,
                                SweepBackend, default_backend,
                                resolve_backend, set_default_backend,
                                use_backend)
from repro.perf.cache import (CacheStats, ResultCache, canonicalize,
                              code_fingerprint, default_cache_dir,
                              params_key)
from repro.perf.resilience import (CellFailure, CrashCapsule,
                                   ReplayResult, ResiliencePolicy,
                                   SweepJournal, collect_failures,
                                   default_capsule_dir,
                                   default_journal_dir, is_failure,
                                   journal_for, process_shard,
                                   replay_capsule)
from repro.perf.sweep import (SweepRunner, derive_seed,
                              effective_cpu_count, resolve_workers)
from repro.perf.worker import QueueWorker, spawn_worker

__all__ = [
    "BACKEND_CHOICES",
    "CacheStats",
    "CellFailure",
    "CrashCapsule",
    "InProcessBackend",
    "PoolBackend",
    "QueueBackend",
    "QueueWorker",
    "ReplayResult",
    "ResiliencePolicy",
    "ResultCache",
    "SweepBackend",
    "SweepJournal",
    "SweepRunner",
    "canonicalize",
    "code_fingerprint",
    "collect_failures",
    "default_backend",
    "default_cache_dir",
    "default_capsule_dir",
    "default_journal_dir",
    "derive_seed",
    "effective_cpu_count",
    "is_failure",
    "journal_for",
    "params_key",
    "process_shard",
    "replay_capsule",
    "resolve_backend",
    "resolve_workers",
    "set_default_backend",
    "spawn_worker",
    "use_backend",
]
