"""Performance layer: parallel sweeps, result caching, benchmarks.

The paper's artefacts are dense parameter grids; this package makes
them fast three ways:

* :class:`~repro.perf.sweep.SweepRunner` fans independent grid cells
  out over a process pool (``workers=``), with deterministic per-cell
  seeding via :func:`~repro.perf.sweep.derive_seed`;
* :class:`~repro.perf.cache.ResultCache` memoizes cell results on disk,
  keyed by experiment id, canonical parameters, and a fingerprint of
  the package sources;
* :mod:`repro.perf.bench` measures the hot loops (event engine, port
  serialization, DDE stepping, margin sweeps) and emits the JSON
  consumed by the perf-trajectory tooling.
"""

from repro.perf.cache import (CacheStats, ResultCache, canonicalize,
                              code_fingerprint, default_cache_dir,
                              params_key)
from repro.perf.sweep import SweepRunner, derive_seed, resolve_workers

__all__ = [
    "CacheStats",
    "ResultCache",
    "SweepRunner",
    "canonicalize",
    "code_fingerprint",
    "default_cache_dir",
    "derive_seed",
    "params_key",
    "resolve_workers",
]
