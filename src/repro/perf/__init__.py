"""Performance layer: parallel sweeps, result caching, benchmarks.

The paper's artefacts are dense parameter grids; this package makes
them fast three ways:

* :class:`~repro.perf.sweep.SweepRunner` fans independent grid cells
  out over a process pool (``workers=``), with deterministic per-cell
  seeding via :func:`~repro.perf.sweep.derive_seed`;
* :class:`~repro.perf.cache.ResultCache` memoizes cell results on disk,
  keyed by experiment id, canonical parameters, and a fingerprint of
  the package sources;
* :mod:`repro.perf.bench` measures the hot loops (event engine, port
  serialization, DDE stepping, margin sweeps) and emits the JSON
  consumed by the perf-trajectory tooling;
* :mod:`repro.perf.resilience` makes long sweeps survivable:
  :class:`~repro.perf.resilience.ResiliencePolicy` adds per-cell
  timeouts, bounded retries with backoff and poison-cell quarantine
  (:class:`~repro.perf.resilience.CellFailure`), the
  :class:`~repro.perf.resilience.SweepJournal` gives crash-surviving
  ``--resume``, and :class:`~repro.perf.resilience.CrashCapsule` +
  ``repro replay`` reproduce terminal cell failures deterministically.
"""

from repro.perf.cache import (CacheStats, ResultCache, canonicalize,
                              code_fingerprint, default_cache_dir,
                              params_key)
from repro.perf.resilience import (CellFailure, CrashCapsule,
                                   ReplayResult, ResiliencePolicy,
                                   SweepJournal, collect_failures,
                                   default_capsule_dir,
                                   default_journal_dir, is_failure,
                                   journal_for, replay_capsule)
from repro.perf.sweep import SweepRunner, derive_seed, resolve_workers

__all__ = [
    "CacheStats",
    "CellFailure",
    "CrashCapsule",
    "ReplayResult",
    "ResiliencePolicy",
    "ResultCache",
    "SweepJournal",
    "SweepRunner",
    "canonicalize",
    "code_fingerprint",
    "collect_failures",
    "default_cache_dir",
    "default_capsule_dir",
    "default_journal_dir",
    "derive_seed",
    "is_failure",
    "journal_for",
    "params_key",
    "replay_capsule",
    "resolve_workers",
]
