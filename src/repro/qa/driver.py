"""The ``repro fuzz`` session: generate, differentiate, shrink, persist.

One :func:`run_fuzz` call is a complete chaos-conformance campaign:

1. :class:`~repro.qa.fuzzer.ScenarioFuzzer` streams deterministic
   scenarios (``--budget N`` of them, or as many as fit in
   ``--seconds S``);
2. each runs through the
   :class:`~repro.qa.differential.DifferentialRunner` matrix and the
   :class:`~repro.qa.oracles.OracleSuite`;
3. violating scenarios are (optionally) delta-debugged by the
   :class:`~repro.qa.shrink.Shrinker` and written as replayable
   crash capsules (``repro replay <capsule>``).

Observability rides the standard stack: ``qa.*`` metrics in the
active registry and ``fuzz`` events in the run log when a telemetry
bundle is active.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional

from repro.obs import telemetry as _telemetry
from repro.obs.metrics import get_registry
from repro.qa.capsule import capsule_for_verdict, write_capsule
from repro.qa.differential import DifferentialRunner
from repro.qa.fuzzer import ScenarioFuzzer
from repro.qa.oracles import OracleSuite
from repro.qa.shrink import Shrinker


@dataclass
class FuzzFinding:
    """One violating scenario, possibly shrunk, possibly persisted."""

    index: int
    spec_key: str
    oracles: List[str]
    messages: List[str]
    shrunk_key: Optional[str] = None
    shrink_accepted: int = 0
    capsule_path: Optional[str] = None


@dataclass
class FuzzReport:
    """What a fuzz campaign did, for the CLI and for tests."""

    seed: int
    scenarios_run: int = 0
    violations: int = 0
    skipped_pairs: int = 0
    elapsed_s: float = 0.0
    findings: List[FuzzFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.violations == 0


def _emit_fuzz_event(event: str, **fields) -> None:
    active = _telemetry.current()
    if active is None:
        return
    try:
        active.run_log.fuzz(event=event, **fields)
    except ValueError:
        pass  # run log already finished


def run_fuzz(budget: Optional[int] = None,
             seconds: Optional[float] = None,
             seed: int = 0,
             matrix: Optional[List[str]] = None,
             skip_oracles: Optional[List[str]] = None,
             shrink: bool = False,
             capsule_dir: Optional[str] = None,
             start_index: int = 0,
             log: Optional[Callable[[str], None]] = None
             ) -> FuzzReport:
    """Run a fuzz campaign; see the module docstring.

    Exactly one of ``budget`` (scenario count) or ``seconds``
    (wall-clock cap; at least one scenario always runs) bounds the
    campaign -- ``budget`` wins when both are given.
    """
    if budget is None and seconds is None:
        raise ValueError("need a budget or a seconds cap")
    if budget is not None and budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    say = log if log is not None else (lambda message: None)
    registry = get_registry()
    fuzzer = ScenarioFuzzer(seed)
    runner = DifferentialRunner(
        classes=matrix, oracles=OracleSuite(skip=skip_oracles))
    shrinker = Shrinker(runner)
    report = FuzzReport(seed=seed)
    started = time.monotonic()
    _emit_fuzz_event("summary_start", seed=seed, budget=budget,
                     seconds=seconds, matrix=runner.classes)

    index = start_index
    while True:
        if budget is not None and \
                report.scenarios_run >= budget:
            break
        if budget is None and report.scenarios_run > 0 and \
                time.monotonic() - started >= seconds:
            break
        spec = fuzzer.generate(index)
        _emit_fuzz_event("scenario_start", index=index,
                         spec_key=spec.key(),
                         topology=spec.topology,
                         flows=len(spec.flows),
                         faults=len(spec.faults))
        verdict = runner.run(spec)
        report.scenarios_run += 1
        report.skipped_pairs += len(verdict.skipped)
        registry.counter("qa.fuzz.scenarios_total").inc()
        if verdict.ok:
            _emit_fuzz_event("scenario_ok", index=index,
                             spec_key=spec.key())
        else:
            report.violations += 1
            registry.counter("qa.fuzz.violations_total").inc()
            finding = FuzzFinding(
                index=index, spec_key=spec.key(),
                oracles=verdict.oracles_failed(),
                messages=[str(v) for v in verdict.violations])
            say(f"scenario {index} ({spec.key()}): VIOLATION "
                f"{', '.join(finding.oracles)}")
            for message in finding.messages[:4]:
                say(f"  {message}")
            _emit_fuzz_event("violation", index=index,
                             spec_key=spec.key(),
                             oracles=finding.oracles,
                             messages=finding.messages[:8])
            if shrink:
                result = shrinker.shrink(spec, finding.oracles[0],
                                         log=say)
                verdict = result.verdict
                finding.shrunk_key = result.spec.key()
                finding.shrink_accepted = result.candidates_accepted
                say(f"  shrunk to {result.spec.key()} after "
                    f"{result.candidates_tried} candidates")
                _emit_fuzz_event(
                    "shrunk", index=index,
                    spec_key=spec.key(),
                    shrunk_key=result.spec.key(),
                    candidates_tried=result.candidates_tried,
                    candidates_accepted=result.candidates_accepted)
            if capsule_dir is not None:
                capsule = capsule_for_verdict(
                    verdict, fuzz_seed=seed, index=index,
                    matrix=matrix, skip=skip_oracles)
                path = write_capsule(capsule, capsule_dir)
                finding.capsule_path = str(path)
                say(f"  capsule: {path}")
            report.findings.append(finding)
        index += 1

    report.elapsed_s = time.monotonic() - started
    registry.gauge("qa.fuzz.last_run_scenarios").set(
        report.scenarios_run)
    registry.gauge("qa.fuzz.last_run_violations").set(
        report.violations)
    _emit_fuzz_event("summary", seed=seed,
                     scenarios=report.scenarios_run,
                     violations=report.violations,
                     elapsed_s=round(report.elapsed_s, 3))
    return report


def format_report(report: FuzzReport) -> str:
    """Human-readable campaign summary for the CLI."""
    lines = [
        f"fuzz seed={report.seed}: {report.scenarios_run} scenarios "
        f"in {report.elapsed_s:.1f}s, "
        f"{report.violations} violation(s)"]
    for finding in report.findings:
        lines.append(
            f"  scenario {finding.index} [{finding.spec_key}] "
            f"tripped {', '.join(finding.oracles)}")
        if finding.shrunk_key and \
                finding.shrunk_key != finding.spec_key:
            lines.append(
                f"    shrunk -> {finding.shrunk_key} "
                f"({finding.shrink_accepted} reductions)")
        if finding.capsule_path:
            lines.append(f"    capsule -> {finding.capsule_path}")
    if report.ok:
        lines.append("  all oracles clean")
    return "\n".join(lines)


def default_capsule_dir(base: Optional[str] = None) -> Path:
    """Where ``repro fuzz`` drops capsules unless told otherwise."""
    root = Path(base) if base is not None else Path("runs")
    return root / "fuzz-capsules"
