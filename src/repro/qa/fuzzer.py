"""Seeded generation of randomized-but-valid conformance scenarios.

The fuzzer's contract is *determinism*: scenario ``i`` of seed ``s``
is the same spec on every machine and every run
(``np.random.default_rng((s, i))`` keys a fresh generator per index,
so scenarios can also be regenerated individually).  Every generated
spec satisfies :meth:`ScenarioSpec.validate` -- the fuzzer draws from
the documented envelopes, never outside them.

Sizing discipline
-----------------
Two soft constraints shape the draws, both in service of the oracles:

* **duration slack** -- the run horizon is sized to the traffic
  (last start time + several times the serial transfer time + a
  settle margin) so benign scenarios go quiescent before the cutoff;
  the liveness and pool-conservation oracles rely on that.
* **fault confinement** -- fault windows close by mid-run, leaving
  the second half for re-injected (delayed) packets to settle and
  for stranded backlogs to drain into stable counters.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.qa.scenario import ScenarioSpec, FlowSpec, FaultSpec, host_names, port_names

#: Weights for how many of the four topologies come up; the
#: single-switch star is the paper's workhorse and the only shape
#: every matrix class (incl. hybrid) applies to, so it dominates.
_TOPOLOGY_WEIGHTS = (("single_switch", 0.4), ("dumbbell", 0.25),
                     ("parking_lot", 0.15), ("leaf_spine", 0.2))

_PROTOCOL_WEIGHTS = (("dcqcn", 0.45), ("timely", 0.25),
                     ("patched_timely", 0.15), ("dctcp", 0.15))

#: Fraction of scenarios that carry a fault plan.
_FAULT_PROBABILITY = 0.35

#: Fraction of single-switch scenarios that run the finite-buffer /
#: PFC star instead of the infinite-buffer validation topology.
_STAR_BUFFER_PROBABILITY = 0.2
_STAR_PFC_PROBABILITY = 0.15

#: Fraction of eligible scenarios turned into long-lived
#: (hybrid-comparable) load instead of finite transfers.
_LONG_LIVED_PROBABILITY = 0.15


class ScenarioFuzzer:
    """Deterministic scenario generator.

    ``ScenarioFuzzer(seed).generate(i)`` is a pure function of
    ``(seed, i)``.  Iterate with :meth:`scenarios`.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)

    def scenarios(self, budget: int,
                  start: int = 0) -> Iterator[ScenarioSpec]:
        for index in range(start, start + budget):
            yield self.generate(index)

    def generate(self, index: int) -> ScenarioSpec:
        rng = np.random.default_rng((self.seed, index))
        topology = _weighted(rng, _TOPOLOGY_WEIGHTS)
        topology_args = self._draw_topology_args(rng, topology)
        link_gbps = float(rng.choice([1.0, 10.0, 25.0, 40.0]))
        link_delay_us = float(rng.uniform(1.0, 8.0))

        buffer_kb: Optional[float] = None
        pfc = False
        if topology == "single_switch":
            if rng.random() < _STAR_BUFFER_PROBABILITY:
                buffer_kb = float(rng.uniform(40.0, 400.0))
            if rng.random() < _STAR_PFC_PROBABILITY:
                pfc = True

        aqm = _weighted(rng, (("red", 0.6), ("pi", 0.25),
                              ("none", 0.15)))
        aqm_args = self._draw_aqm_args(rng, aqm)
        if pfc:
            # The PFC star pauses before the buffer fills; pair it
            # with marking so senders still get congestion signal.
            aqm = "red"
            aqm_args = self._draw_aqm_args(rng, "red")

        long_lived = (topology == "single_switch"
                      and buffer_kb is None and not pfc
                      and rng.random() < _LONG_LIVED_PROBABILITY)
        if long_lived:
            # Long-lived load exists to exercise the hybrid class,
            # which is only validated at the paper RED operating
            # point on fast links (see ScenarioSpec.hybrid_eligible).
            aqm = "red"
            aqm_args = {}
            if link_gbps < 10.0:
                link_gbps = float(rng.choice([10.0, 25.0, 40.0]))
        spec = ScenarioSpec(
            topology=topology, topology_args=topology_args,
            link_gbps=link_gbps, link_delay_us=link_delay_us,
            aqm=aqm, aqm_args=aqm_args, flows=(), duration=1.0,
            seed=int(rng.integers(0, 2**31 - 1)),
            buffer_kb=buffer_kb, pfc=pfc)

        flows, duration = self._draw_traffic(rng, spec, long_lived)
        spec = spec.replace(flows=tuple(flows), duration=duration)

        if not long_lived and rng.random() < _FAULT_PROBABILITY:
            spec = spec.replace(
                faults=tuple(self._draw_faults(rng, spec)))

        spec = spec.replace(
            param_overrides=self._draw_overrides(rng, spec))
        spec.validate()
        return spec

    # -- draws -----------------------------------------------------------

    def _draw_topology_args(self, rng, topology: str) -> dict:
        if topology == "single_switch":
            return {"n_senders": int(rng.integers(1, 9))}
        if topology == "dumbbell":
            return {"n_pairs": int(rng.integers(1, 7))}
        if topology == "parking_lot":
            return {"n_segments": int(rng.integers(1, 5))}
        return {"n_leaves": int(rng.integers(2, 5)),
                "n_spines": int(rng.integers(1, 3)),
                "hosts_per_leaf": int(rng.integers(1, 5))}

    def _draw_aqm_args(self, rng, aqm: str) -> dict:
        if aqm == "red":
            kmin = float(rng.uniform(5.0, 60.0))
            return {"kmin_kb": kmin,
                    "kmax_kb": kmin + float(rng.uniform(40.0, 400.0)),
                    "pmax": float(rng.uniform(0.005, 0.2))}
        if aqm == "pi":
            return {"q_ref_kb": float(rng.uniform(10.0, 120.0))}
        return {}

    def _flow_endpoints(self, rng, spec: ScenarioSpec
                        ) -> List[Tuple[str, str]]:
        """Sender/receiver pairings native to the topology."""
        args = spec.topology_args
        if spec.topology == "single_switch":
            n = args["n_senders"]
            return [(f"s{i}", "recv") for i in range(n)]
        if spec.topology == "dumbbell":
            n = args["n_pairs"]
            return [(f"s{i}", f"r{i}") for i in range(n)]
        if spec.topology == "parking_lot":
            n = args["n_segments"]
            pairs = [("sx", "rx")]
            pairs += [(f"s{i}", f"r{i}") for i in range(n)]
            return pairs
        hosts = host_names(spec)
        rng.shuffle(hosts)
        half = max(1, len(hosts) // 2)
        return list(zip(hosts[:half], hosts[half:half * 2]))

    def _draw_traffic(self, rng, spec: ScenarioSpec,
                      long_lived: bool
                      ) -> Tuple[List[FlowSpec], float]:
        endpoints = self._flow_endpoints(rng, spec)
        if long_lived:
            # Hybrid-comparable load: every sender runs a full-span
            # DCQCN elephant; fixed horizon, no completion to wait on.
            flows = [FlowSpec("dcqcn", src, dst, None, 0.0)
                     for src, dst in endpoints]
            return flows, float(rng.uniform(0.01, 0.03))

        n_flows = int(rng.integers(1, min(len(endpoints), 8) + 1))
        chosen = [endpoints[i] for i in
                  rng.choice(len(endpoints), size=n_flows,
                             replace=False)]
        incast = (spec.topology == "single_switch"
                  and n_flows >= 3 and rng.random() < 0.4)
        max_start = 0.0
        total_bytes = 0
        flows: List[FlowSpec] = []
        for src, dst in chosen:
            protocol = _weighted(rng, _PROTOCOL_WEIGHTS)
            size = int(rng.integers(4, 1025)) * 1024
            start = 0.0 if incast \
                else float(rng.uniform(0.0, 0.002))
            flows.append(FlowSpec(protocol, src, dst, size, start))
            max_start = max(max_start, start)
            total_bytes += size
        # Horizon: startup jitter + 8x the serial transfer time at
        # the link rate + a settle margin.  Generous on purpose: the
        # liveness oracle treats a benign non-completion as a bug.
        serial = total_bytes / (spec.link_gbps * 1e9 / 8.0)
        duration = max_start + 8.0 * serial + 0.004
        return flows, float(min(duration, 0.25))

    def _draw_faults(self, rng, spec: ScenarioSpec
                     ) -> List[FaultSpec]:
        ports = port_names(spec)
        n_faults = int(rng.integers(1, 4))
        half = 0.5 * spec.duration
        faults: List[FaultSpec] = []
        for name in rng.choice(ports, size=min(n_faults, len(ports)),
                               replace=False):
            kind = _weighted(rng, (("loss", 0.35), ("corrupt", 0.2),
                                   ("delay", 0.3), ("flap", 0.15)))
            start = float(rng.uniform(0.0, 0.25 * spec.duration))
            stop = float(rng.uniform(start + 1e-4, half))
            if kind in ("loss", "corrupt"):
                faults.append(FaultSpec(
                    kind, str(name),
                    rate=float(rng.uniform(0.005, 0.08)),
                    start=start, stop=stop))
            elif kind == "delay":
                faults.append(FaultSpec(
                    kind, str(name),
                    extra=float(rng.uniform(5e-6, 1e-4)),
                    jitter=float(rng.uniform(0.0, 2e-5)),
                    start=start, stop=stop))
            else:
                faults.append(FaultSpec(
                    kind, str(name), start=start,
                    duration=float(rng.uniform(1e-4,
                                               half - start))))
        return faults

    def _draw_overrides(self, rng, spec: ScenarioSpec) -> dict:
        """Mild parameter perturbations around the paper defaults."""
        overrides: dict = {}
        protocols = {f.protocol for f in spec.flows}
        if "dcqcn" in protocols and rng.random() < 0.4:
            overrides["dcqcn"] = {
                # EWMA gain and R_AI (packets/s; paper default is
                # 40 Mbps ~= 4.9e3 pps at the 1 KB sim MTU).
                "g": float(rng.choice([1 / 32, 1 / 16, 1 / 8])),
                "rate_ai": float(rng.uniform(2e3, 1e4)),
            }
        if "timely" in protocols and rng.random() < 0.4:
            overrides["timely"] = {
                "beta": float(rng.uniform(0.5, 1.0)),
                "delta": float(rng.uniform(6e2, 2.5e3)),
            }
        if "dctcp" in protocols and rng.random() < 0.4:
            overrides["dctcp"] = {
                "g": float(rng.choice([1 / 32, 1 / 16, 1 / 8])),
            }
        return overrides


def _weighted(rng, table) -> str:
    names = [name for name, _ in table]
    weights = np.array([w for _, w in table], dtype=float)
    return str(rng.choice(names, p=weights / weights.sum()))
