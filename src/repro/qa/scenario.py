"""Scenario specs and the engine-matrix scenario executor.

A :class:`ScenarioSpec` is a *declarative, JSON-serializable* recipe
for one randomized conformance scenario: topology shape, traffic,
protocol parameter overrides, AQM profile and an optional fault plan.
Everything the run needs is derived deterministically from the spec
(markers and fault injectors are seeded from ``spec.seed``), so the
same spec replayed under the same engine variant produces the same
trace bit-for-bit -- which is exactly what lets
:mod:`repro.qa.differential` compare variants and
:mod:`repro.qa.shrink` binary-search a failure down to a minimal
reproducer that a :class:`~repro.perf.resilience.CrashCapsule` can
carry.

Validity envelopes
------------------
The fuzzer (and :meth:`ScenarioSpec.validate`) keep scenarios inside
the ranges the simulator's components are specified for:

* topology: ``single_switch`` (1-16 senders), ``dumbbell`` (1-8
  pairs), ``parking_lot`` (1-4 segments), ``leaf_spine`` (2-4 leaves,
  1-2 spines, 1-4 hosts/leaf);
* links: 1-100 Gbps, 1-20 us delay;
* traffic: 1-16 finite flows of 4 KB - 1 MB with start jitter inside
  ``[0, duration/4)``, or (hybrid-eligible specs only) long-lived
  flows;
* AQM: RED with ``0 < kmin < kmax`` and ``0 < pmax <= 1``, or PI with
  a positive reference queue, both expressed in KB of queue;
* parameter overrides: any values the frozen dataclasses in
  :mod:`repro.core.params` accept (their ``__post_init__`` validation
  is the envelope);
* faults: loss/corruption rates in (0, 1], feedback delays up to
  100 us, flaps (drop mode) confined to the first half of the run so
  every transient settles before the end-of-run oracles fire.

The executor (:func:`run_scenario`) runs one spec under one
:class:`Variant` of the engine matrix and returns a structured
:class:`ScenarioOutcome`; :func:`outcome_digest` reduces the
behaviour-defining parts (trace stream, flow completions, port
counters) to a hash that bit-identical variants must agree on.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro import units
from repro.core.params import (
    DCQCNParams,
    DCTCPParams,
    PatchedTimelyParams,
    PIParams,
    REDParams,
    TimelyParams,
)
from repro.obs.forensics import FlowLedger, attach_flow_forensics, use_ledger
from repro.sim.engine import SimulationAborted, Simulator
from repro.sim.faults import (
    FaultPlan,
    FeedbackDelay,
    LinkFlap,
    PacketLoss,
    collect_ports,
    install,
)
from repro.sim.flows import FlowRegistry
from repro.sim.invariants import InvariantMonitor
from repro.sim.leaf_spine import leaf_spine
from repro.sim.node import Host
from repro.sim.packet import PACKET_POOL
from repro.sim.parking_lot import parking_lot
from repro.sim.pfc import PFCController
from repro.sim.piaqm import PIMarker
from repro.sim.red import REDMarker
from repro.sim.switch import Switch, connect
from repro.sim.topology import Network, dumbbell, install_flow, single_switch
from repro.sim.tracing import PacketTracer

#: Topologies the harness can build.
TOPOLOGIES = ("single_switch", "dumbbell", "parking_lot", "leaf_spine")

#: AQM profiles (``"none"`` leaves every queue unmarked).
AQMS = ("none", "red", "pi")

#: Protocols a flow may use.
FLOW_PROTOCOLS = ("dcqcn", "timely", "patched_timely", "dctcp")

#: Fault kinds a :class:`FaultSpec` may carry.
FAULT_KINDS = ("loss", "corrupt", "delay", "flap")

#: Hard event budget per scenario run -- a watchdog, not a tuning
#: knob; a healthy fuzz scenario is orders of magnitude below it.
MAX_EVENTS = 3_000_000

#: Wall-clock watchdog per scenario run, seconds.
MAX_WALL_SECONDS = 120.0

#: Paper-default RED operating point (Section 3 convention); the
#: packet<->hybrid statistical contract is validated here.
PAPER_RED = {"kmin_kb": 5.0, "kmax_kb": 200.0, "pmax": 0.01}


@dataclass(frozen=True)
class FlowSpec:
    """One flow of a scenario (src/dst are topology host names)."""

    protocol: str
    src: str
    dst: str
    size_bytes: Optional[int]     #: None = long-lived (hybrid specs)
    start_time: float = 0.0

    def to_dict(self) -> dict:
        return {"protocol": self.protocol, "src": self.src,
                "dst": self.dst, "size_bytes": self.size_bytes,
                "start_time": self.start_time}

    @classmethod
    def from_dict(cls, data: dict) -> "FlowSpec":
        return cls(protocol=data["protocol"], src=data["src"],
                   dst=data["dst"], size_bytes=data["size_bytes"],
                   start_time=float(data["start_time"]))


@dataclass(frozen=True)
class FaultSpec:
    """One fault of a scenario, mapped onto :mod:`repro.sim.faults`.

    ``kind``: ``"loss"`` (black-hole Bernoulli loss), ``"corrupt"``
    (delivered-but-CRC-failed), ``"delay"`` (extra feedback latency)
    or ``"flap"`` (drop-mode link down).  Hold-mode flaps are
    deliberately excluded: the leak oracle accounts packets by their
    terminal sink, and held packets are neither delivered nor dropped
    until the flap ends.
    """

    kind: str
    port: str
    rate: float = 0.0           #: loss/corrupt probability
    extra: float = 0.0          #: delay: deterministic extra seconds
    jitter: float = 0.0         #: delay: uniform extra in [0, jitter)
    start: float = 0.0
    stop: Optional[float] = None
    duration: float = 0.0       #: flap: down time, seconds

    def to_dict(self) -> dict:
        return {"kind": self.kind, "port": self.port, "rate": self.rate,
                "extra": self.extra, "jitter": self.jitter,
                "start": self.start, "stop": self.stop,
                "duration": self.duration}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        return cls(kind=data["kind"], port=data["port"],
                   rate=float(data.get("rate", 0.0)),
                   extra=float(data.get("extra", 0.0)),
                   jitter=float(data.get("jitter", 0.0)),
                   start=float(data.get("start", 0.0)),
                   stop=data.get("stop"),
                   duration=float(data.get("duration", 0.0)))

    def to_fault(self) -> object:
        """Materialize the :mod:`repro.sim.faults` object."""
        if self.kind == "loss":
            return PacketLoss(port=self.port, rate=self.rate,
                              start=self.start, stop=self.stop)
        if self.kind == "corrupt":
            return PacketLoss(port=self.port, rate=self.rate,
                              start=self.start, stop=self.stop,
                              corrupt=True)
        if self.kind == "delay":
            return FeedbackDelay(port=self.port, extra=self.extra,
                                 jitter=self.jitter, start=self.start,
                                 stop=self.stop)
        if self.kind == "flap":
            return LinkFlap(port=self.port, start=self.start,
                            duration=self.duration, mode="drop")
        raise ValueError(f"unknown fault kind {self.kind!r}")


@dataclass(frozen=True)
class Variant:
    """One point of the engine matrix a scenario runs under."""

    name: str = "baseline"
    scheduler: str = "heap"         #: heap | calendar
    window: Optional[int] = None    #: batch_window on every port
    forensics: bool = False         #: attach a FlowLedger
    hybrid: bool = False            #: fluid elephants (statistical)

    def label(self) -> str:
        parts = [self.scheduler]
        if self.window:
            parts.append(f"window{self.window}")
        if self.forensics:
            parts.append("forensics")
        if self.hybrid:
            parts.append("hybrid")
        return "+".join(parts)


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative description of one conformance scenario."""

    topology: str
    topology_args: Dict[str, int] = field(default_factory=dict)
    link_gbps: float = 10.0
    link_delay_us: float = 2.0
    aqm: str = "none"
    aqm_args: Dict[str, float] = field(default_factory=dict)
    flows: Tuple[FlowSpec, ...] = ()
    param_overrides: Dict[str, Dict[str, float]] = \
        field(default_factory=dict)
    faults: Tuple[FaultSpec, ...] = ()
    duration: float = 0.01
    seed: int = 0
    buffer_kb: Optional[float] = None   #: finite bottleneck buffer
    pfc: bool = False                   #: single_switch star only

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "topology": self.topology,
            "topology_args": dict(self.topology_args),
            "link_gbps": self.link_gbps,
            "link_delay_us": self.link_delay_us,
            "aqm": self.aqm,
            "aqm_args": dict(self.aqm_args),
            "flows": [f.to_dict() for f in self.flows],
            "param_overrides": {proto: dict(vals) for proto, vals
                                in self.param_overrides.items()},
            "faults": [f.to_dict() for f in self.faults],
            "duration": self.duration,
            "seed": self.seed,
            "buffer_kb": self.buffer_kb,
            "pfc": self.pfc,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        return cls(
            topology=data["topology"],
            topology_args={k: int(v) for k, v
                           in data.get("topology_args", {}).items()},
            link_gbps=float(data.get("link_gbps", 10.0)),
            link_delay_us=float(data.get("link_delay_us", 2.0)),
            aqm=data.get("aqm", "none"),
            aqm_args={k: float(v) for k, v
                      in data.get("aqm_args", {}).items()},
            flows=tuple(FlowSpec.from_dict(f)
                        for f in data.get("flows", [])),
            param_overrides={proto: dict(vals) for proto, vals
                             in data.get("param_overrides",
                                         {}).items()},
            faults=tuple(FaultSpec.from_dict(f)
                         for f in data.get("faults", [])),
            duration=float(data.get("duration", 0.01)),
            seed=int(data.get("seed", 0)),
            buffer_kb=data.get("buffer_kb"),
            pfc=bool(data.get("pfc", False)),
        )

    def replace(self, **changes) -> "ScenarioSpec":
        import dataclasses
        return dataclasses.replace(self, **changes)

    def key(self) -> str:
        """Short content hash identifying this scenario."""
        canon = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canon.encode()).hexdigest()[:12]

    # -- semantics -------------------------------------------------------

    @property
    def long_lived(self) -> bool:
        """True when any flow has no size (runs for the whole span)."""
        return any(f.size_bytes is None for f in self.flows)

    @property
    def window_exact(self) -> bool:
        """Whether the scalar<->window bit-identical class applies.

        Rate-paced senders (DCQCN, TIMELY, patched TIMELY) emit one
        packet per pacing tick, so their NIC FIFOs never hold a
        multi-packet backlog and transmit windows only form at switch
        egresses -- where they drain in FIFO order and stay
        bit-identical to the scalar path.  DCTCP is *window*-paced:
        its cwnd bursts queue at the NIC, drain as vectorized windows
        and arrive at the next switch atomically, which legitimately
        reorders the downstream multiplex relative to per-packet
        interleaving.  Scenarios with any DCTCP flow are therefore
        compared without the window variant.

        The second exclusion is NICs that multiplex more than one
        stream: a host sourcing two flows (their data interleaves in
        one FIFO, and drain windows are per-flow runs delivered
        atomically) or a host that both sends one flow's data and
        terminates another (the reverse-path ACKs land mid-window and
        get served one serialization slot later than in the scalar
        interleave).  Shared *destinations* are fine -- a pure
        receiver's NIC carries only control traffic, which never
        forms transmit windows.

        PFC is excluded for the same mid-window reason: a PAUSE
        cannot interrupt a window whose serialization is already
        committed, while the scalar path stops after the in-flight
        packet.  Finite buffers *without* PFC stay exact -- tail
        drops happen at enqueue time, not service time.

        Finally, multi-flow scenarios need an AQM: a marker keeps the
        contended switch egress on the scalar path (ports with a
        marker are not window-capable), while an unmarked converging
        egress batches the multiplex -- and a flow whose completing
        packet lands mid-window gets its completion stamped at the
        window boundary, one serialization slot late.  A single flow
        never backlogs an unmarked egress (one input, one output,
        equal rates), so ``aqm == "none"`` stays exact there.
        """
        srcs = [f.src for f in self.flows]
        dsts = {f.dst for f in self.flows}
        return (all(f.protocol != "dctcp" for f in self.flows)
                and len(set(srcs)) == len(srcs)
                and not (set(srcs) & dsts)
                and not self.pfc
                and (self.aqm != "none" or len(self.flows) <= 1))

    @property
    def hybrid_eligible(self) -> bool:
        """Whether the packet<->hybrid statistical class applies.

        Structurally, the hybrid coupler models long-lived DCQCN
        elephants against a single RED-marked bottleneck and rejects
        PFC, so only that shape can be cross-checked against the
        fluid view.  On top of that the class only claims its +/-50%
        tail-mean tolerance inside the *validated operating
        envelope*: paper-default RED thresholds and >= 10 Gbps links
        (measured relative error <= 0.30 there; at 1 Gbps or exotic
        RED settings the fluid approximation legitimately departs
        from packet truth by more than the contract).
        """
        red_ok = all(self.aqm_args.get(key, val) == val
                     for key, val in PAPER_RED.items())
        return (self.topology == "single_switch"
                and self.aqm == "red"
                and red_ok
                and self.link_gbps >= 10.0
                and not self.pfc
                and self.buffer_kb is None
                and not self.faults
                and len(self.flows) > 0
                and all(f.protocol == "dcqcn"
                        and f.size_bytes is None
                        and f.start_time == 0.0
                        for f in self.flows))

    def validate(self) -> None:
        """Raise ``ValueError`` when outside the documented envelope."""
        if self.topology not in TOPOLOGIES:
            raise ValueError(f"unknown topology {self.topology!r}")
        if self.aqm not in AQMS:
            raise ValueError(f"unknown aqm {self.aqm!r}")
        if not 0.5 <= self.link_gbps <= 100.0:
            raise ValueError(f"link_gbps {self.link_gbps} outside "
                             "[0.5, 100]")
        if not 0.5 <= self.link_delay_us <= 20.0:
            raise ValueError(f"link_delay_us {self.link_delay_us} "
                             "outside [0.5, 20]")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if not self.flows:
            raise ValueError("a scenario needs at least one flow")
        hosts = set(host_names(self))
        for flow in self.flows:
            if flow.protocol not in FLOW_PROTOCOLS:
                raise ValueError(
                    f"unknown protocol {flow.protocol!r}")
            if flow.src not in hosts or flow.dst not in hosts:
                raise ValueError(
                    f"flow {flow.src}->{flow.dst} references hosts "
                    f"outside the {self.topology} topology")
            if flow.size_bytes is not None and flow.size_bytes < 1024:
                raise ValueError("finite flows must carry >= 1 KB")
            if not 0.0 <= flow.start_time < self.duration:
                raise ValueError("flow start must fall in the run")
        ports = set(port_names(self))
        for fault in self.faults:
            if fault.kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {fault.kind!r}")
            if fault.port not in ports:
                raise ValueError(
                    f"fault references unknown port {fault.port!r}")
        if self.pfc and self.topology != "single_switch":
            raise ValueError("pfc is only modelled on single_switch")
        if self.buffer_kb is not None \
                and self.topology != "single_switch":
            raise ValueError(
                "finite buffers are only modelled on single_switch")
        # Materializing the derived objects runs the dataclasses' own
        # __post_init__ validation -- the authoritative envelope.
        for proto in {f.protocol for f in self.flows}:
            resolve_params(self, proto)
        _make_marker(self, 0)
        for fault in self.faults:
            fault.to_fault()


# -- topology knowledge --------------------------------------------------


def host_names(spec: ScenarioSpec) -> List[str]:
    """Host names the spec's topology will create (deterministic)."""
    args = spec.topology_args
    if spec.topology == "single_switch":
        n = args.get("n_senders", 2)
        return [f"s{i}" for i in range(n)] + ["recv"]
    if spec.topology == "dumbbell":
        n = args.get("n_pairs", 2)
        return [f"s{i}" for i in range(n)] + \
               [f"r{i}" for i in range(n)]
    if spec.topology == "parking_lot":
        n = args.get("n_segments", 2)
        names = ["sx", "rx"]
        for i in range(n):
            names += [f"s{i}", f"r{i}"]
        return names
    if spec.topology == "leaf_spine":
        leaves = args.get("n_leaves", 2)
        per = args.get("hosts_per_leaf", 2)
        return [f"h{leaf}_{i}" for leaf in range(leaves)
                for i in range(per)]
    raise ValueError(f"unknown topology {spec.topology!r}")


def port_names(spec: ScenarioSpec) -> List[str]:
    """Port names the spec's topology will create.

    Mirrors the builders' ``connect`` calls (ports are named
    ``"<src>-><dst>"``); property-tested against
    :func:`repro.sim.faults.collect_ports` on the built network.
    """
    args = spec.topology_args
    names: List[str] = []
    if spec.topology == "single_switch":
        n = args.get("n_senders", 2)
        names.append("sw->recv")
        for i in range(n):
            names += [f"s{i}->sw", f"sw->s{i}"]
        names.append("recv->sw")
    elif spec.topology == "dumbbell":
        n = args.get("n_pairs", 2)
        names += ["sw1->sw2", "sw2->sw1"]
        for i in range(n):
            names += [f"s{i}->sw1", f"sw1->s{i}",
                      f"r{i}->sw2", f"sw2->r{i}"]
    elif spec.topology == "parking_lot":
        n = args.get("n_segments", 2)
        for i in range(n):
            names += [f"sw{i}->sw{i + 1}", f"sw{i + 1}->sw{i}"]
        names += ["sx->sw0", "sw0->sx", f"rx->sw{n}", f"sw{n}->rx"]
        for i in range(n):
            names += [f"s{i}->sw{i}", f"sw{i}->s{i}",
                      f"r{i}->sw{i + 1}", f"sw{i + 1}->r{i}"]
    elif spec.topology == "leaf_spine":
        leaves = args.get("n_leaves", 2)
        spines = args.get("n_spines", 1)
        per = args.get("hosts_per_leaf", 2)
        for leaf in range(leaves):
            for spine in range(spines):
                names += [f"leaf{leaf}->spine{spine}",
                          f"spine{spine}->leaf{leaf}"]
        for leaf in range(leaves):
            for i in range(per):
                host = f"h{leaf}_{i}"
                names += [f"{host}->leaf{leaf}",
                          f"leaf{leaf}->{host}"]
    else:
        raise ValueError(f"unknown topology {spec.topology!r}")
    return names


# -- derived objects -----------------------------------------------------


def resolve_params(spec: ScenarioSpec, protocol: str) -> object:
    """The parameter object a protocol's flows run with.

    Paper defaults for the spec's link speed and per-protocol flow
    count, with the spec's ``param_overrides`` applied on top via the
    frozen dataclasses' ``replace`` (so every override re-runs the
    dataclass validation -- the envelope).
    """
    n = max(1, sum(1 for f in spec.flows if f.protocol == protocol))
    overrides = dict(spec.param_overrides.get(protocol, {}))
    if protocol == "dcqcn":
        params: Any = DCQCNParams.paper_default(
            capacity_gbps=spec.link_gbps, num_flows=n)
        return params.replace(**overrides) if overrides else params
    if protocol == "timely":
        params = TimelyParams.paper_default(
            capacity_gbps=spec.link_gbps, num_flows=n,
            prop_delay_us=spec.link_delay_us)
        return params.replace(**overrides) if overrides else params
    if protocol == "patched_timely":
        params = PatchedTimelyParams.paper_default(
            capacity_gbps=spec.link_gbps, num_flows=n,
            prop_delay_us=spec.link_delay_us)
        return params.replace_base(**overrides) if overrides \
            else params
    if protocol == "dctcp":
        base = DCTCPParams()
        if overrides:
            import dataclasses
            return dataclasses.replace(base, **overrides)
        return base
    raise ValueError(f"unknown protocol {protocol!r}")


def _make_marker(spec: ScenarioSpec, index: int) -> Optional[object]:
    """A fresh AQM marker for bottleneck ``index`` (seeded)."""
    mtu = units.DEFAULT_MTU_BYTES
    seed = spec.seed * 1009 + index
    if spec.aqm == "none":
        return None
    if spec.aqm == "red":
        red = REDParams(
            kmin=units.kb_to_packets(
                spec.aqm_args.get("kmin_kb", 5.0), mtu),
            kmax=units.kb_to_packets(
                spec.aqm_args.get("kmax_kb", 200.0), mtu),
            pmax=spec.aqm_args.get("pmax", 0.01))
        return REDMarker(red, mtu, seed=seed)
    if spec.aqm == "pi":
        pi = PIParams.for_dcqcn(
            q_ref_kb=spec.aqm_args.get("q_ref_kb", 50.0))
        return PIMarker(pi, mtu, seed=seed)
    raise ValueError(f"unknown aqm {spec.aqm!r}")


def _build_star_pfc(spec: ScenarioSpec, engine: str) -> Network:
    """single_switch star with a finite buffer and/or PFC.

    The stock builder models infinite buffers; finite-buffer and PFC
    scenarios get the incast-experiment star (one switch, finite
    bottleneck egress, PAUSE callbacks onto the sender NICs) so the
    PFC-pairing oracle has something to bite on.
    """
    from repro.sim.topology import _make_simulator
    sim = _make_simulator(engine)
    rate = spec.link_gbps * 1e9 / units.BITS_PER_BYTE
    delay = units.us(spec.link_delay_us)
    n = spec.topology_args.get("n_senders", 2)
    pfc = None
    if spec.pfc:
        pause_kb = spec.aqm_args.get("pause_kb", 20.0)
        pfc = PFCController(
            sim,
            pause_threshold_bytes=int(pause_kb * 1024),
            resume_threshold_bytes=int(pause_kb * 512))
    switch = Switch(sim, "sw", pfc=pfc)
    receiver = Host(sim, "recv")
    hosts = {"recv": receiver}
    capacity = None if spec.buffer_kb is None \
        else int(spec.buffer_kb * 1024)
    bottleneck = connect(sim, switch, receiver, rate, delay,
                         marker=_make_marker(spec, 0),
                         capacity_bytes=capacity)
    switch.add_route("recv", "recv")
    connect(sim, receiver, switch, rate, delay)
    for i in range(n):
        sender = Host(sim, f"s{i}")
        hosts[sender.name] = sender
        nic = connect(sim, sender, switch, rate, delay)
        connect(sim, switch, sender, rate, delay)
        switch.add_route(sender.name, sender.name)
        if pfc is not None:
            pfc.register_upstream(
                sender.name,
                lambda pause, port=nic: port.pause() if pause
                else port.resume(),
                reverse_delay=delay)
    return Network(sim=sim, hosts=hosts, switches={"sw": switch},
                   registry=FlowRegistry(), bottleneck_port=bottleneck,
                   mtu_bytes=units.DEFAULT_MTU_BYTES,
                   link_rate_bytes=rate, engine=engine)


def build_network(spec: ScenarioSpec, engine: str = "heap") -> Network:
    """Build the spec's topology under the given scheduler backend."""
    delay = units.us(spec.link_delay_us)
    args = spec.topology_args
    if spec.topology == "single_switch":
        if spec.pfc or spec.buffer_kb is not None:
            return _build_star_pfc(spec, engine)
        return single_switch(args.get("n_senders", 2),
                             link_gbps=spec.link_gbps,
                             link_delay=delay,
                             marker=_make_marker(spec, 0),
                             engine=engine)
    if spec.topology == "dumbbell":
        return dumbbell(args.get("n_pairs", 2),
                        link_gbps=spec.link_gbps,
                        link_delay=delay,
                        marker=_make_marker(spec, 0),
                        engine=engine)
    if spec.topology == "parking_lot":
        return parking_lot(args.get("n_segments", 2),
                           link_gbps=spec.link_gbps,
                           link_delay=delay,
                           marker_factory=lambda i:
                               _make_marker(spec, i),
                           engine=engine)
    if spec.topology == "leaf_spine":
        counter = iter(range(1, 1_000_000))
        return leaf_spine(n_leaves=args.get("n_leaves", 2),
                          n_spines=args.get("n_spines", 1),
                          hosts_per_leaf=args.get("hosts_per_leaf", 2),
                          host_gbps=spec.link_gbps,
                          spine_gbps=spec.link_gbps,
                          link_delay=delay,
                          marker_factory=(
                              (lambda: _make_marker(spec,
                                                    next(counter)))
                              if spec.aqm != "none" else None),
                          engine=engine)
    raise ValueError(f"unknown topology {spec.topology!r}")


# -- execution -----------------------------------------------------------


@dataclass
class ScenarioOutcome:
    """Everything the oracles and the differential compare look at."""

    spec_key: str
    variant: Variant
    flows: List[dict]
    trace: List[tuple]
    ports: Dict[str, dict]
    invariant_violations: List[str]
    pool: dict
    fault_stats: dict
    queue_samples: List[Tuple[float, int]]
    events_processed: int
    sim_time: float
    aborted: Optional[str] = None
    forensics: Optional[List[dict]] = None
    trace_truncated: bool = False


def run_scenario(spec: ScenarioSpec,
                 variant: Variant = Variant()) -> ScenarioOutcome:
    """Execute one spec under one engine-matrix variant."""
    if variant.hybrid and not spec.hybrid_eligible:
        raise ValueError(
            "hybrid variant requested for a non-hybrid-eligible spec")
    ledger = FlowLedger() if variant.forensics else None
    with use_ledger(ledger):
        return _run_scenario_inner(spec, variant, ledger)


def _run_scenario_inner(spec: ScenarioSpec, variant: Variant,
                        ledger: Optional[FlowLedger]
                        ) -> ScenarioOutcome:
    engine = "hybrid" if variant.hybrid else variant.scheduler
    net = build_network(spec, engine=engine)
    attach_flow_forensics(net, context=f"qa-{spec.key()}")
    ports = collect_ports(net)

    if variant.window is not None:
        for port in ports.values():
            # Plain attribute on an already-validated port;
            # structural eligibility still self-gates per packet.
            port.batch_window = max(2, int(variant.window))

    tracer = PacketTracer(net.sim, max_events=400_000)
    for name in sorted(ports):
        tracer.attach(ports[name])

    injector = None
    if spec.faults:
        plan = FaultPlan([f.to_fault() for f in spec.faults])
        injector = install(net, plan, seed=spec.seed)

    aborted = None
    with PACKET_POOL.debug_session() as pool:
        coupler = None
        if variant.hybrid:
            from repro.sim.hybrid import attach_hybrid
            params = resolve_params(spec, "dcqcn")
            coupler = attach_hybrid(net, params)
        else:
            for fs in spec.flows:
                install_flow(net, fs.protocol, fs.src, fs.dst,
                             fs.size_bytes, fs.start_time,
                             resolve_params(spec, fs.protocol))

        samples: List[Tuple[float, int]] = []
        if coupler is not None:
            # The elephants' backlog lives in the fluid state; the
            # statistical oracle compares total queue to the packet
            # engine's FIFO occupancy.
            queue_bytes = lambda: coupler.total_queue_bytes  # noqa: E731
        else:
            queue_bytes = lambda: \
                net.bottleneck_port.queue.size_bytes  # noqa: E731
        net.sim.sample_every(
            max(spec.duration / 256.0, 1e-6),
            lambda now: samples.append((now, queue_bytes())))
        # After install: the monitor snapshots net.senders.
        monitor = InvariantMonitor.for_network(
            net, interval=max(spec.duration / 64.0, 1e-6))
        try:
            net.sim.run(until=spec.duration,
                        max_events=MAX_EVENTS,
                        max_wall_seconds=MAX_WALL_SECONDS)
        except SimulationAborted as abort:
            aborted = abort.reason
        outstanding = pool.outstanding
        double_releases = pool.double_releases
        leaked = pool.outstanding_packets()

    flows = _collect_flows(net)

    port_stats = {}
    for name, port in sorted(ports.items()):
        port_stats[name] = {
            "bytes_transmitted": port.bytes_transmitted,
            "packets_transmitted": port.packets_transmitted,
            "ecn_marks": port.ecn_marks,
            "queue_dropped_packets": port.queue.dropped_packets,
            "queue_dropped_bytes": port.queue.dropped_bytes,
            "control_dropped_packets": (
                port.control_queue.dropped_packets
                if port.control_queue is not None else 0),
            "queued_at_end": len(port.queue) + (
                len(port.control_queue)
                if port.control_queue is not None else 0),
        }

    fault_stats = {}
    if injector is not None:
        stats = injector.stats
        fault_stats = {
            "lost_packets": stats.lost_packets,
            "corrupted_packets": stats.corrupted_packets,
            "delayed_packets": stats.delayed_packets,
            "flap_drops": stats.flap_drops,
            "held_packets": stats.held_packets,
        }

    forensic_events = None
    if ledger is not None:
        ledger.finalize()
        forensic_events = ledger.flow_events()

    trace = [(e.time, e.port_name, e.kind, e.flow_id, e.seq,
              e.size_bytes, e.ecn_marked, e.dropped)
             for e in tracer.events]

    return ScenarioOutcome(
        spec_key=spec.key(),
        variant=variant,
        flows=flows,
        trace=trace,
        ports=port_stats,
        invariant_violations=[str(v) for v in monitor.violations],
        pool={"outstanding": outstanding,
              "double_releases": double_releases,
              "leaked_examples": leaked},
        fault_stats=fault_stats,
        queue_samples=samples,
        events_processed=net.sim.events_processed,
        sim_time=net.sim.now,
        aborted=aborted,
        forensics=forensic_events,
        trace_truncated=tracer.dropped_events > 0,
    )


def _collect_flows(net: Network) -> List[dict]:
    """Per-flow accounting rows from the registry."""
    rows = []
    for flow in net.registry.flows.values():
        rows.append({
            "flow_id": flow.flow_id,
            "src": flow.src,
            "dst": flow.dst,
            "size_bytes": flow.size_bytes,
            "start_time": flow.start_time,
            "bytes_sent": flow.bytes_sent,
            "bytes_delivered": flow.bytes_delivered,
            "completed": flow.completed,
            "fct": flow.fct if flow.completed else None,
        })
    return rows


def outcome_digest(outcome: ScenarioOutcome) -> str:
    """Hash of the behaviour-defining parts of an outcome.

    Bit-identical variants (scheduler backends, scalar vs window
    transmit, forensics on/off) must agree on this digest: the full
    per-packet trace stream (exact float stamps), every flow's byte
    totals and completion time, and the per-port counters.  Pool and
    forensic bookkeeping are deliberately excluded -- they vary with
    the observation machinery, not with simulated behaviour.
    """
    hasher = hashlib.sha256()
    for event in outcome.trace:
        hasher.update(repr(event).encode())
    for flow in outcome.flows:
        hasher.update(repr((flow["flow_id"], flow["bytes_sent"],
                            flow["bytes_delivered"], flow["completed"],
                            flow["fct"])).encode())
    for name, stats in sorted(outcome.ports.items()):
        hasher.update(repr((name, sorted(stats.items()))).encode())
    return hasher.hexdigest()
