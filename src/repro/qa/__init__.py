"""repro.qa -- differential chaos-conformance harness.

A seeded :class:`~repro.qa.fuzzer.ScenarioFuzzer` generates
randomized-but-valid scenarios; the
:class:`~repro.qa.differential.DifferentialRunner` executes each one
across the engine matrix's equivalence classes (bit-identical:
heap/calendar scheduler, scalar/window transmit, forensics on/off;
statistical: packet/hybrid) under an
:class:`~repro.qa.oracles.OracleSuite` of scenario-independent
invariants; violations are delta-debugged to minimal reproducers by
the :class:`~repro.qa.shrink.Shrinker` and persisted as
``repro replay``-compatible crash capsules.  ``repro fuzz`` is the
CLI; :func:`~repro.qa.driver.run_fuzz` the API.
"""

from repro.qa.capsule import (
    OracleViolation,
    check_scenario,
    corpus_capsules,
    replay_corpus,
)
from repro.qa.differential import DifferentialRunner, MATRIX, Verdict
from repro.qa.driver import FuzzReport, format_report, run_fuzz
from repro.qa.fuzzer import ScenarioFuzzer
from repro.qa.oracles import OracleSuite, Violation
from repro.qa.scenario import (
    FaultSpec,
    FlowSpec,
    ScenarioOutcome,
    ScenarioSpec,
    Variant,
    outcome_digest,
    run_scenario,
)
from repro.qa.shrink import Shrinker, ShrinkResult

__all__ = [
    "DifferentialRunner",
    "FaultSpec",
    "FlowSpec",
    "FuzzReport",
    "MATRIX",
    "OracleSuite",
    "OracleViolation",
    "ScenarioFuzzer",
    "ScenarioOutcome",
    "ScenarioSpec",
    "ShrinkResult",
    "Shrinker",
    "Variant",
    "Verdict",
    "Violation",
    "check_scenario",
    "corpus_capsules",
    "format_report",
    "outcome_digest",
    "replay_corpus",
    "run_fuzz",
    "run_scenario",
]
