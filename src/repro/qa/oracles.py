"""Scenario-independent invariants the fuzzer checks every run against.

Two kinds of oracle:

* **per-run** -- properties any single :class:`ScenarioOutcome` must
  satisfy regardless of what the fuzzer rolled: byte/packet
  conservation, no watchdog aborts, monotone time stamps, a clean
  :class:`~repro.sim.invariants.InvariantMonitor`, exact packet-pool
  accounting (every loaned packet is either delivered-and-released or
  sitting in a drop counter), PFC pause/resume pairing (via the
  monitor), causal FCT attribution coverage when forensics ran, and
  -- on benign scenarios -- liveness (every finite flow completes).

* **pair** -- cross-variant contracts of the engine matrix: the
  bit-identical classes (heap vs calendar scheduler, scalar vs window
  transmit, forensics on vs off) must agree on
  :func:`~repro.qa.scenario.outcome_digest` exactly; the packet vs
  hybrid class is statistical (tail-mean bottleneck queue within the
  PR-7 tolerance of +/-50%).

Every failed check is a :class:`Violation` naming the oracle, which
the shrinker uses as its acceptance criterion (a candidate scenario
still "fails" only if it trips the *same* oracle).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.qa.scenario import ScenarioOutcome, ScenarioSpec, outcome_digest

#: Minimum causal-attribution coverage for completed flows under
#: forensics (the flow-forensics layer's own acceptance bar).
MIN_ATTRIBUTED_SHARE = 0.95

#: Statistical tolerance of the packet<->hybrid class: tail-mean
#: bottleneck queue must agree within this relative error.
HYBRID_QUEUE_RTOL = 0.5

#: Tail window (fraction of the run) the hybrid comparison averages
#: over, skipping the transient.
HYBRID_TAIL_FRACTION = 0.5

#: Absolute slack (bytes) on the hybrid comparison: near-empty
#: queues sit where packet granularity (1 KB MTU) and discrete RED
#: marking dominate, so relative error is meaningless below a few
#: packets' worth of depth.  numpy-style combined tolerance:
#: ``abs(got - ref) <= max(rtol * ref, atol)``.
HYBRID_QUEUE_ATOL_BYTES = 16 * 1024.0


@dataclass(frozen=True)
class Violation:
    """One failed oracle check."""

    oracle: str                     #: stable oracle name
    message: str
    variant: str = ""               #: variant label(s) involved
    details: Dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        where = f" [{self.variant}]" if self.variant else ""
        return f"{self.oracle}{where}: {self.message}"


class OracleSuite:
    """The oracle catalog; see the module docstring.

    ``skip`` names oracles to disable (useful when triaging a known
    violation without drowning in secondary noise).
    """

    PER_RUN = ("no_abort", "invariants_clean", "conservation",
               "monotone_time", "pool_leak", "pool_double_release",
               "liveness", "fct_attribution")
    PAIR = ("bit_identical", "hybrid_statistical")

    def __init__(self, skip: Optional[List[str]] = None):
        self.skip = frozenset(skip or ())

    # -- per-run ---------------------------------------------------------

    def check_run(self, spec: ScenarioSpec,
                  outcome: ScenarioOutcome) -> List[Violation]:
        violations: List[Violation] = []
        label = outcome.variant.label()

        def fail(oracle: str, message: str, **details) -> None:
            if oracle not in self.skip:
                violations.append(Violation(
                    oracle=oracle, message=message, variant=label,
                    details=details))

        if outcome.aborted is not None:
            fail("no_abort",
                 f"engine watchdog fired ({outcome.aborted}) after "
                 f"{outcome.events_processed} events",
                 reason=outcome.aborted)

        for text in outcome.invariant_violations:
            fail("invariants_clean", text)

        self._check_conservation(spec, outcome, fail)
        self._check_monotone_time(outcome, fail)
        self._check_pool(spec, outcome, fail)
        self._check_liveness(spec, outcome, fail)
        self._check_attribution(outcome, fail)
        return violations

    def _check_conservation(self, spec, outcome, fail) -> None:
        for flow in outcome.flows:
            if flow["bytes_delivered"] > flow["bytes_sent"]:
                fail("conservation",
                     f"flow {flow['flow_id']} delivered "
                     f"{flow['bytes_delivered']}B > sent "
                     f"{flow['bytes_sent']}B", flow_id=flow["flow_id"])
            if flow["completed"] and flow["size_bytes"] is not None \
                    and flow["bytes_delivered"] < flow["size_bytes"]:
                fail("conservation",
                     f"flow {flow['flow_id']} completed with "
                     f"{flow['bytes_delivered']}B < "
                     f"{flow['size_bytes']}B", flow_id=flow["flow_id"])
            if flow["completed"] and flow["fct"] is not None \
                    and flow["fct"] <= 0:
                fail("conservation",
                     f"flow {flow['flow_id']} has non-positive FCT "
                     f"{flow['fct']}", flow_id=flow["flow_id"])

    def _check_monotone_time(self, outcome, fail) -> None:
        if outcome.sim_time < 0:
            fail("monotone_time",
                 f"final sim time {outcome.sim_time} is negative")
        last_per_port: Dict[str, float] = {}
        for event in outcome.trace:
            time, port = event[0], event[1]
            if time < last_per_port.get(port, 0.0):
                fail("monotone_time",
                     f"trace time went backwards on {port}: "
                     f"{time} after {last_per_port[port]}", port=port)
                break
            last_per_port[port] = time
        times = [t for t, _ in outcome.queue_samples]
        if any(b < a for a, b in zip(times, times[1:])):
            fail("monotone_time", "queue samples out of order")

    def _check_pool(self, spec, outcome, fail) -> None:
        if outcome.pool["double_releases"]:
            fail("pool_double_release",
                 f"{outcome.pool['double_releases']} double release(s)"
                 " detected by the pool guard",
                 count=outcome.pool["double_releases"])
        # Exact loan accounting: a packet not returned to the pool
        # must sit in exactly one drop counter (FIFO tail drop, fault
        # black-hole, or flap drop).  Corrupted and delayed packets
        # are delivered and released, so they do not appear.  The
        # equation only holds at a *quiescent* cutoff -- long-lived
        # flows keep packets legitimately in flight (FIFOs, wires,
        # serializers) at the horizon, so those specs are exempt.
        if spec.long_lived:
            return
        expected = sum(s["queue_dropped_packets"]
                       + s["control_dropped_packets"]
                       for s in outcome.ports.values())
        expected += outcome.fault_stats.get("lost_packets", 0)
        expected += outcome.fault_stats.get("flap_drops", 0)
        # A FIFO backlog surviving to the cutoff (stranded flow after
        # an un-retransmitted drop) is a loan, not a leak.
        expected += sum(s["queued_at_end"]
                        for s in outcome.ports.values())
        if outcome.pool["outstanding"] != expected:
            fail("pool_leak",
                 f"{outcome.pool['outstanding']} packets outstanding, "
                 f"drop+backlog counters account for {expected}",
                 outstanding=outcome.pool["outstanding"],
                 expected=expected,
                 examples=outcome.pool["leaked_examples"])

    def _check_liveness(self, spec, outcome, fail) -> None:
        # Only benign scenarios guarantee completion: RoCE senders do
        # not retransmit, so any drop (faults, finite buffers) may
        # legitimately strand a flow; aborted runs prove nothing.
        if spec.faults or spec.buffer_kb is not None \
                or outcome.aborted is not None:
            return
        for flow in outcome.flows:
            if flow["size_bytes"] is None:
                continue
            if not flow["completed"]:
                fail("liveness",
                     f"flow {flow['flow_id']} "
                     f"({flow['src']}->{flow['dst']}, "
                     f"{flow['size_bytes']}B) never completed in a "
                     "lossless scenario", flow_id=flow["flow_id"],
                     delivered=flow["bytes_delivered"])

    def _check_attribution(self, outcome, fail) -> None:
        if outcome.forensics is None:
            return
        for event in outcome.forensics:
            share = event.get("attributed_share")
            if share is not None and share < MIN_ATTRIBUTED_SHARE:
                fail("fct_attribution",
                     f"flow {event['flow_id']} causal attribution "
                     f"covers {share:.3f} < {MIN_ATTRIBUTED_SHARE} "
                     "of its FCT", flow_id=event["flow_id"],
                     attributed_share=share)

    # -- pair ------------------------------------------------------------

    def check_pair(self, spec: ScenarioSpec, base: ScenarioOutcome,
                   other: ScenarioOutcome) -> List[Violation]:
        """Cross-variant contract between a baseline run and a peer."""
        if other.variant.hybrid:
            return self._check_hybrid(spec, base, other)
        return self._check_identical(spec, base, other)

    def _check_identical(self, spec, base, other) -> List[Violation]:
        if "bit_identical" in self.skip:
            return []
        if base.trace_truncated or other.trace_truncated:
            # A truncated trace window makes digests incomparable;
            # the fuzzer sizes scenarios to stay below the cap, so
            # flag it loudly rather than silently passing.
            return [Violation(
                oracle="bit_identical",
                message="trace buffer overflowed; scenario too large "
                        "for exact comparison",
                variant=f"{base.variant.label()} vs "
                        f"{other.variant.label()}")]
        da, db = outcome_digest(base), outcome_digest(other)
        if da == db:
            return []
        detail = _first_divergence(base, other)
        return [Violation(
            oracle="bit_identical",
            message=f"digest mismatch ({da[:12]} != {db[:12]}): "
                    f"{detail}",
            variant=f"{base.variant.label()} vs "
                    f"{other.variant.label()}",
            details={"base_digest": da, "other_digest": db})]

    def _check_hybrid(self, spec, base, other) -> List[Violation]:
        if "hybrid_statistical" in self.skip:
            return []
        cut = HYBRID_TAIL_FRACTION * spec.duration
        ref = _tail_mean(base.queue_samples, cut)
        got = _tail_mean(other.queue_samples, cut)
        err = abs(got - ref)
        if err <= max(HYBRID_QUEUE_RTOL * ref,
                      HYBRID_QUEUE_ATOL_BYTES):
            return []
        return [Violation(
            oracle="hybrid_statistical",
            message=f"tail-mean queue diverged: packet {ref:.0f}B vs "
                    f"hybrid {got:.0f}B (abs err {err:.0f}B > "
                    f"max({HYBRID_QUEUE_RTOL} * ref, "
                    f"{HYBRID_QUEUE_ATOL_BYTES:.0f}B))",
            variant=f"{base.variant.label()} vs "
                    f"{other.variant.label()}",
            details={"packet_tail_mean": ref, "hybrid_tail_mean": got,
                     "absolute_error": err})]


def _tail_mean(samples, cut: float) -> float:
    tail = np.array([q for t, q in samples if t >= cut], dtype=float)
    return float(tail.mean()) if tail.size else 0.0


def _first_divergence(base: ScenarioOutcome,
                      other: ScenarioOutcome) -> str:
    """Human-readable pointer at where two outcomes part ways."""
    for i, (a, b) in enumerate(zip(base.trace, other.trace)):
        if a != b:
            return (f"trace event {i}: {a} vs {b}")
    if len(base.trace) != len(other.trace):
        return (f"trace lengths differ: {len(base.trace)} vs "
                f"{len(other.trace)}")
    for fa, fb in zip(base.flows, other.flows):
        if fa != fb:
            return f"flow {fa['flow_id']}: {fa} vs {fb}"
    for name in base.ports:
        if base.ports[name] != other.ports.get(name):
            return (f"port {name}: {base.ports[name]} vs "
                    f"{other.ports.get(name)}")
    return "identical streams but digests differ (hash bug?)"
