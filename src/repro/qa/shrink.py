"""Delta-debugging reduction of a violating scenario.

Given a spec that trips an oracle, the shrinker searches for a
*smaller* spec that trips the **same oracle** (same name -- matching
messages would over-fit to incidental detail).  Reduction moves along
structured axes rather than raw bytes, so every candidate is a valid
scenario by construction:

1. drop flows (greedy, one at a time, then halves);
2. drop faults, then whole fault kinds;
3. drop parameter overrides;
4. shrink the topology (fewer senders/pairs/segments/leaves);
5. round parameters to defaults (AQM args, link speed/delay);
6. halve flow sizes and the duration.

The loop runs each axis to fixpoint and repeats until a full pass
makes no progress.  Each candidate re-executes the differential
matrix, so shrinking a scenario costs (candidates x matrix width)
simulation runs; the fuzzer's scenarios are small enough that a
shrink typically finishes in seconds.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, List, Optional, Tuple

from repro.qa.differential import DifferentialRunner, Verdict
from repro.qa.scenario import ScenarioSpec, host_names

#: Safety valve: maximum candidate evaluations per shrink.
MAX_CANDIDATES = 400


@dataclasses.dataclass
class ShrinkResult:
    """The reduced scenario plus the search's bookkeeping."""

    spec: ScenarioSpec            #: minimal reproducer found
    verdict: Verdict              #: its (still-violating) verdict
    oracle: str                   #: the oracle that anchors the search
    candidates_tried: int = 0
    candidates_accepted: int = 0

    @property
    def reduced(self) -> bool:
        return self.candidates_accepted > 0


class Shrinker:
    """Reduce a violating spec while preserving the failing oracle."""

    def __init__(self, runner: DifferentialRunner,
                 max_candidates: int = MAX_CANDIDATES):
        self.runner = runner
        self.max_candidates = max_candidates

    def shrink(self, spec: ScenarioSpec, oracle: str,
               log: Optional[Callable[[str], None]] = None
               ) -> ShrinkResult:
        """Reduce ``spec`` keeping oracle ``oracle`` firing."""
        verdict = self.runner.run(spec)
        if oracle not in verdict.oracles_failed():
            raise ValueError(
                f"spec does not trip oracle {oracle!r}; it trips "
                f"{verdict.oracles_failed() or 'nothing'}")
        result = ShrinkResult(spec=spec, verdict=verdict,
                              oracle=oracle)
        progress = True
        while progress and \
                result.candidates_tried < self.max_candidates:
            progress = False
            for axis in (self._drop_flows, self._drop_faults,
                         self._drop_overrides, self._shrink_topology,
                         self._round_parameters, self._halve_sizes):
                for candidate in axis(result.spec):
                    if result.candidates_tried >= self.max_candidates:
                        break
                    accepted = self._try(candidate, result)
                    if accepted and log is not None:
                        log(f"shrink: accepted {axis.__name__} -> "
                            f"{_shape(result.spec)}")
                    progress = progress or accepted
        return result

    def _try(self, candidate: ScenarioSpec,
             result: ShrinkResult) -> bool:
        try:
            candidate.validate()
        except ValueError:
            return False
        result.candidates_tried += 1
        verdict = self.runner.run(candidate)
        if result.oracle in verdict.oracles_failed():
            result.spec = candidate
            result.verdict = verdict
            result.candidates_accepted += 1
            return True
        return False

    # -- axes (generators of candidates based on the CURRENT spec) -------

    def _drop_flows(self, spec: ScenarioSpec
                    ) -> Iterable[ScenarioSpec]:
        flows = spec.flows
        if len(flows) <= 1:
            return
        half = len(flows) // 2
        yield spec.replace(flows=flows[:half])
        yield spec.replace(flows=flows[half:])
        for i in range(len(flows)):
            yield spec.replace(flows=flows[:i] + flows[i + 1:])

    def _drop_faults(self, spec: ScenarioSpec
                     ) -> Iterable[ScenarioSpec]:
        faults = spec.faults
        if not faults:
            return
        yield spec.replace(faults=())
        for i in range(len(faults)):
            yield spec.replace(faults=faults[:i] + faults[i + 1:])

    def _drop_overrides(self, spec: ScenarioSpec
                        ) -> Iterable[ScenarioSpec]:
        if spec.param_overrides:
            yield spec.replace(param_overrides={})
        for proto in spec.param_overrides:
            trimmed = {p: dict(v) for p, v
                       in spec.param_overrides.items() if p != proto}
            yield spec.replace(param_overrides=trimmed)
        if spec.pfc:
            yield spec.replace(pfc=False)
        if spec.buffer_kb is not None:
            yield spec.replace(buffer_kb=None)

    def _shrink_topology(self, spec: ScenarioSpec
                         ) -> Iterable[ScenarioSpec]:
        args = spec.topology_args
        for key in ("n_senders", "n_pairs", "n_segments", "n_leaves",
                    "n_spines", "hosts_per_leaf"):
            value = args.get(key)
            floor = 2 if key == "n_leaves" else 1
            if value is not None and value > floor:
                smaller = dict(args)
                smaller[key] = value - 1
                candidate = spec.replace(topology_args=smaller)
                if _flows_fit(candidate):
                    yield candidate
        # Collapse multi-switch shapes onto the star when the flows
        # allow it (same-name hosts exist there).
        if spec.topology != "single_switch":
            n = max(8, len(spec.flows))
            candidate = spec.replace(
                topology="single_switch",
                topology_args={"n_senders": n},
                pfc=False, buffer_kb=None)
            if _flows_fit(candidate):
                yield candidate

    def _round_parameters(self, spec: ScenarioSpec
                          ) -> Iterable[ScenarioSpec]:
        if spec.aqm_args:
            yield spec.replace(aqm_args={})
        if spec.aqm != "none" and not spec.long_lived:
            yield spec.replace(aqm="none", aqm_args={})
        if spec.link_gbps != 10.0:
            yield spec.replace(link_gbps=10.0)
        if spec.link_delay_us != 2.0:
            yield spec.replace(link_delay_us=2.0)
        if any(f.start_time for f in spec.flows):
            yield spec.replace(flows=tuple(
                dataclasses.replace(f, start_time=0.0)
                for f in spec.flows))

    def _halve_sizes(self, spec: ScenarioSpec
                     ) -> Iterable[ScenarioSpec]:
        sizes = [f.size_bytes for f in spec.flows]
        if any(s is not None and s > 8192 for s in sizes):
            yield spec.replace(flows=tuple(
                f if f.size_bytes is None or f.size_bytes <= 8192
                else dataclasses.replace(
                    f, size_bytes=max(8192, f.size_bytes // 2))
                for f in spec.flows))
        if spec.duration > 0.002:
            yield spec.replace(duration=spec.duration / 2.0)


def _flows_fit(spec: ScenarioSpec) -> bool:
    """Whether every flow endpoint still exists in the topology."""
    try:
        hosts = set(host_names(spec))
    except ValueError:
        return False
    return all(f.src in hosts and f.dst in hosts for f in spec.flows)


def _shape(spec: ScenarioSpec) -> str:
    return (f"{spec.topology}{spec.topology_args} "
            f"flows={len(spec.flows)} faults={len(spec.faults)} "
            f"dur={spec.duration:.4f}")
