"""Crash capsules for oracle violations, and the regression corpus.

A violating scenario is persisted as a standard
:class:`~repro.perf.resilience.CrashCapsule` whose cell function is
:func:`check_scenario` below -- so ``repro replay <capsule>`` works on
fuzz findings exactly as it does on sweep crashes: it re-executes the
scenario across the engine matrix and exits 1 when the oracles still
object, 0 once the bug is fixed.

The same mechanism gives CI a **regression corpus**: shrunk capsules
checked in under ``tests/corpus/`` are replayed by the test suite,
which asserts they do *not* reproduce on shipped code (each one is a
bug that was fixed, or a tolerance that was tuned; if one fires
again, the regression is back).
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.perf.cache import canonicalize
from repro.perf.resilience import (
    CrashCapsule,
    ReplayResult,
    capsule_path_for,
    encode_value,
    replay_capsule,
)
from repro.qa.differential import DifferentialRunner, Verdict
from repro.qa.oracles import OracleSuite
from repro.qa.scenario import ScenarioSpec


class OracleViolation(AssertionError):
    """A conformance scenario tripped one or more oracles."""

    def __init__(self, oracles: List[str], messages: List[str]):
        self.oracles = list(oracles)
        self.messages = list(messages)
        summary = "; ".join(messages[:4])
        if len(messages) > 4:
            summary += f"; ... ({len(messages) - 4} more)"
        super().__init__(
            f"oracle(s) {', '.join(oracles)} violated: {summary}")


def check_scenario(spec: Dict[str, Any],
                   matrix: Optional[List[str]] = None,
                   skip: Optional[List[str]] = None) -> Dict[str, Any]:
    """Replay target: run one scenario, raise if oracles object.

    ``spec`` is a :meth:`ScenarioSpec.to_dict` payload (plain JSON
    types, so capsules stay human-readable); ``matrix`` selects
    comparison classes and ``skip`` disables oracles, both matching
    the fuzz run that produced the capsule.  Raises
    :class:`OracleViolation` when any oracle fires -- which is what
    ``repro replay`` counts as "reproduced".
    """
    scenario = ScenarioSpec.from_dict(spec)
    scenario.validate()
    runner = DifferentialRunner(
        classes=matrix, oracles=OracleSuite(skip=skip))
    verdict = runner.run(scenario)
    if verdict.violations:
        raise OracleViolation(
            verdict.oracles_failed(),
            [str(v) for v in verdict.violations])
    return {
        "spec_key": scenario.key(),
        "variants_run": sorted(verdict.outcomes),
        "skipped_classes": verdict.skipped,
    }


def capsule_for_verdict(verdict: Verdict, fuzz_seed: int, index: int,
                        matrix: Optional[List[str]] = None,
                        skip: Optional[List[str]] = None
                        ) -> CrashCapsule:
    """Package a violating verdict as a replayable capsule."""
    spec = verdict.spec
    kwargs = {"spec": spec.to_dict()}
    if matrix is not None:
        kwargs["matrix"] = list(matrix)
    if skip is not None:
        kwargs["skip"] = list(skip)
    oracles = verdict.oracles_failed()
    messages = [str(v) for v in verdict.violations]
    return CrashCapsule(
        experiment_id=f"fuzz-seed{fuzz_seed}",
        cell_key=f"scenario{index}-{spec.key()}",
        fn="repro.qa.capsule:check_scenario",
        kwargs_pickle=encode_value(kwargs),
        params=canonicalize(kwargs),
        fingerprint=spec.key(),
        kind="oracle_violation",
        error_type="OracleViolation",
        error_message="; ".join(messages[:4]),
        traceback="",
        attempts=1,
        created_ts=time.time(),
        seed=spec.seed,
    )


def write_capsule(capsule: CrashCapsule,
                  capsule_dir: Union[str, Path]) -> Path:
    """Write under the standard sweep-capsule naming scheme."""
    path = capsule_path_for(capsule_dir, capsule.experiment_id,
                            capsule.cell_key)
    return capsule.write(path)


def corpus_capsules(corpus_dir: Union[str, Path]) -> List[Path]:
    """The checked-in regression corpus, sorted for determinism."""
    root = Path(corpus_dir)
    if not root.is_dir():
        return []
    return sorted(root.glob("*.capsule.json"))


def replay_corpus(corpus_dir: Union[str, Path]
                  ) -> Iterable[Tuple[Path, ReplayResult]]:
    """Replay every corpus capsule, yielding ``(path, result)``.

    A healthy tree yields ``reproduced=False`` for every entry.
    """
    for path in corpus_capsules(corpus_dir):
        yield path, replay_capsule(path)
