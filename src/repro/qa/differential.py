"""Differential execution of one scenario across the engine matrix.

The matrix has a baseline (heap scheduler, scalar transmit, no
forensics) and four comparison classes:

========== ============================== ======================
class      variant                        contract
========== ============================== ======================
scheduler  calendar-queue scheduler       bit-identical digest
window     vectorized transmit windows    bit-identical digest
forensics  FlowLedger attribution on      bit-identical digest
hybrid     fluid elephants + packet mice  statistical (PR 7)
========== ============================== ======================

Classes self-gate on the spec: ``window`` only runs when
:attr:`~repro.qa.scenario.ScenarioSpec.window_exact` holds (see its
docstring for the envelope) and ``hybrid`` only when
:attr:`~repro.qa.scenario.ScenarioSpec.hybrid_eligible`.  Per-run
oracles fire on every executed variant; pair oracles compare each
non-baseline variant against the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.qa.oracles import OracleSuite, Violation
from repro.qa.scenario import (
    ScenarioOutcome,
    ScenarioSpec,
    Variant,
    run_scenario,
)

#: The full engine matrix, baseline first.
MATRIX: Dict[str, Variant] = {
    "baseline": Variant("baseline"),
    "scheduler": Variant("scheduler", scheduler="calendar"),
    "window": Variant("window", window=8),
    "forensics": Variant("forensics", forensics=True),
    "hybrid": Variant("hybrid", hybrid=True),
}

#: Matrix selections the CLI accepts.
DEFAULT_CLASSES = ("scheduler", "window", "forensics", "hybrid")


@dataclass
class Verdict:
    """Everything one differential scenario execution produced."""

    spec: ScenarioSpec
    violations: List[Violation] = field(default_factory=list)
    outcomes: Dict[str, ScenarioOutcome] = field(default_factory=dict)
    skipped: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def oracles_failed(self) -> List[str]:
        """Stable, deduplicated oracle names that fired."""
        seen: List[str] = []
        for violation in self.violations:
            if violation.oracle not in seen:
                seen.append(violation.oracle)
        return seen


class DifferentialRunner:
    """Run specs across the matrix and collect oracle verdicts.

    Parameters
    ----------
    classes:
        Comparison classes to exercise (default: all four).  The
        baseline always runs -- it is the reference side of every
        pair and the per-run oracles' primary subject.
    oracles:
        The oracle suite; a custom one mostly makes sense for
        triage (skipping a known-failing oracle).
    """

    def __init__(self, classes: Optional[List[str]] = None,
                 oracles: Optional[OracleSuite] = None):
        names = list(classes) if classes is not None \
            else list(DEFAULT_CLASSES)
        unknown = [n for n in names if n not in MATRIX
                   or n == "baseline"]
        if unknown:
            raise ValueError(
                f"unknown matrix classes {unknown}; choose from "
                f"{sorted(set(MATRIX) - {'baseline'})}")
        self.classes = names
        self.oracles = oracles if oracles is not None else OracleSuite()

    def applicable_classes(self, spec: ScenarioSpec) -> List[str]:
        """The selected classes this spec's envelopes admit."""
        out = []
        for name in self.classes:
            if name == "window" and not spec.window_exact:
                continue
            if name == "hybrid" and not spec.hybrid_eligible:
                continue
            out.append(name)
        return out

    def run(self, spec: ScenarioSpec) -> Verdict:
        """Execute the spec across the matrix and check every oracle."""
        verdict = Verdict(spec=spec)
        base = run_scenario(spec, MATRIX["baseline"])
        verdict.outcomes["baseline"] = base
        verdict.violations.extend(self.oracles.check_run(spec, base))

        applicable = self.applicable_classes(spec)
        verdict.skipped = [n for n in self.classes
                           if n not in applicable]
        for name in applicable:
            outcome = run_scenario(spec, MATRIX[name])
            verdict.outcomes[name] = outcome
            verdict.violations.extend(
                self.oracles.check_run(spec, outcome))
            verdict.violations.extend(
                self.oracles.check_pair(spec, base, outcome))
        return verdict
