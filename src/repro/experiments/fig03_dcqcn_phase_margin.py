"""Figure 3: DCQCN phase margin sweeps.

Three panels:

(a) margin vs number of flows for several control-loop delays --
    exhibiting the paper's non-monotonic stability (a dip near N~10
    that crosses zero at 85-100 us delays, recovering for large N);
(b) the same at fixed 100 us delay for several ``R_AI`` values --
    smaller additive increase stabilizes;
(c) for several ``K_max`` values -- a shallower RED slope stabilizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro import units
from repro.analysis.reporting import format_table
from repro.core.params import DCQCNParams
from repro.core.stability.dcqcn_margin import margin_vs_flows
from repro.perf import ResiliencePolicy, ResultCache, SweepRunner

#: Default flow-count grid (log-ish spacing like the paper's x-axis).
DEFAULT_FLOWS = (1, 2, 4, 6, 8, 10, 14, 20, 30, 50, 80, 100)


@dataclass(frozen=True)
class MarginSweep:
    """One curve: phase margin (deg) against flow count."""

    label: str
    flow_counts: Sequence[int]
    margins_deg: List[float]

    def min_margin(self) -> float:
        return min(self.margins_deg)

    def unstable_counts(self) -> List[int]:
        """Flow counts whose margin is negative (Bode-unstable)."""
        return [n for n, m in zip(self.flow_counts, self.margins_deg)
                if m <= 0.0]


def compute_sweep(label: str, params: DCQCNParams,
                  flow_counts: Sequence[int]) -> MarginSweep:
    """One margin-vs-N curve; module-level so sweeps can fan out."""
    return MarginSweep(label=label, flow_counts=tuple(flow_counts),
                       margins_deg=margin_vs_flows(params, flow_counts))


def _run_sweeps(cells: "List[dict]", workers: Optional[int],
                cache: Optional[ResultCache],
                resilience: Optional[ResiliencePolicy] = None
                ) -> List[MarginSweep]:
    runner = SweepRunner(workers=workers, cache=cache,
                         experiment_id="fig03",
                         resilience=resilience)
    return runner.map(compute_sweep, cells)


def panel_a(delays_us: Sequence[float] = (4, 25, 55, 85, 100),
            flow_counts: Sequence[int] = DEFAULT_FLOWS,
            capacity_gbps: float = 40.0,
            workers: Optional[int] = None,
            cache: Optional[ResultCache] = None,
            resilience: Optional[ResiliencePolicy] = None
            ) -> List[MarginSweep]:
    """Margin vs N for several feedback delays (Fig. 3a)."""
    cells = []
    for delay in delays_us:
        params = DCQCNParams.paper_default(capacity_gbps=capacity_gbps,
                                           tau_star_us=delay)
        cells.append({"label": f"tau*={delay:g}us", "params": params,
                      "flow_counts": tuple(flow_counts)})
    return _run_sweeps(cells, workers, cache, resilience)


def panel_b(rate_ai_mbps: Sequence[float] = (10, 40, 150),
            flow_counts: Sequence[int] = DEFAULT_FLOWS,
            delay_us: float = 100.0,
            capacity_gbps: float = 40.0,
            workers: Optional[int] = None,
            cache: Optional[ResultCache] = None,
            resilience: Optional[ResiliencePolicy] = None
            ) -> List[MarginSweep]:
    """Margin vs N for several R_AI values at 100 us delay (Fig. 3b)."""
    cells = []
    for mbps in rate_ai_mbps:
        params = DCQCNParams.paper_default(
            capacity_gbps=capacity_gbps, tau_star_us=delay_us).replace(
                rate_ai=units.mbps_to_pps(mbps))
        cells.append({"label": f"R_AI={mbps:g}Mbps", "params": params,
                      "flow_counts": tuple(flow_counts)})
    return _run_sweeps(cells, workers, cache, resilience)


def panel_c(kmax_kb: Sequence[float] = (200, 400, 1000),
            flow_counts: Sequence[int] = DEFAULT_FLOWS,
            delay_us: float = 100.0,
            capacity_gbps: float = 40.0,
            workers: Optional[int] = None,
            cache: Optional[ResultCache] = None,
            resilience: Optional[ResiliencePolicy] = None
            ) -> List[MarginSweep]:
    """Margin vs N for several K_max values at 100 us delay (Fig. 3c)."""
    cells = []
    for kmax in kmax_kb:
        base = DCQCNParams.paper_default(capacity_gbps=capacity_gbps,
                                         tau_star_us=delay_us)
        red = type(base.red)(kmin=base.red.kmin,
                             kmax=units.kb_to_packets(kmax),
                             pmax=base.red.pmax)
        params = base.replace(red=red)
        cells.append({"label": f"K_max={kmax:g}KB", "params": params,
                      "flow_counts": tuple(flow_counts)})
    return _run_sweeps(cells, workers, cache, resilience)


def report(sweeps: List[MarginSweep], title: str) -> str:
    """Render a family of margin curves as one table."""
    if not sweeps:
        raise ValueError("no sweeps to report")
    flows = list(sweeps[0].flow_counts)
    headers = ["N"] + [s.label for s in sweeps]
    rows: List[List[object]] = []
    for i, n in enumerate(flows):
        rows.append([n] + [s.margins_deg[i] for s in sweeps])
    return format_table(headers, rows, title=title)
