"""Figure 18: DCQCN with a PI marking controller at the switch.

The PI marker (Eq. 32) replaces RED: integral action pins the queue to
the configured reference *regardless of the number of flows* (RED's
operating queue grows with N, Eq. 14/9), while the marking probability
converges to each N's Eq. 11 value and the flows stay fair -- ECN
achieves fairness and bounded delay simultaneously (Theorem 6's
positive side).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro import units
from repro.analysis.reporting import format_table
from repro.core.convergence.metrics import jain_fairness
from repro.core.fixedpoint.dcqcn import solve_fixed_point
from repro.core.fluid import dde
from repro.core.fluid.pi import DCQCNPIFluidModel
from repro.core.params import DCQCNParams, PIParams


@dataclass(frozen=True)
class DCQCNPIRow:
    """Outcome for one flow count."""

    num_flows: int
    queue_mean_kb: float
    queue_ref_kb: float
    queue_std_kb: float
    jain_index: float
    p_mark: float
    p_star_red: float   #: the Eq. 11 fixed point the controller found

    @property
    def pinned(self) -> bool:
        """Queue within 5% of the reference."""
        return abs(self.queue_mean_kb - self.queue_ref_kb) \
            <= 0.05 * self.queue_ref_kb


def run(flow_counts: Sequence[int] = (2, 10, 64),
        q_ref_kb: float = 100.0,
        capacity_gbps: float = 40.0,
        tau_star_us: float = 50.0,
        duration: float = 0.5,
        dt: float = 2e-6) -> List[DCQCNPIRow]:
    """Integrate DCQCN+PI for each flow count."""
    rows = []
    window = duration / 5.0
    pi = PIParams.for_dcqcn(q_ref_kb)
    for n in flow_counts:
        params = DCQCNParams.paper_default(capacity_gbps=capacity_gbps,
                                           num_flows=n,
                                           tau_star_us=tau_star_us)
        model = DCQCNPIFluidModel(params, pi)
        trace = dde.integrate(model, duration, dt=dt, record_stride=50)
        finals = [trace.tail_mean(f"rc[{i}]", window) for i in range(n)]
        fixed = solve_fixed_point(params, extend_red=True)
        rows.append(DCQCNPIRow(
            num_flows=n,
            queue_mean_kb=units.packets_to_kb(
                trace.tail_mean("q", window), params.mtu_bytes),
            queue_ref_kb=q_ref_kb,
            queue_std_kb=units.packets_to_kb(
                trace.tail_std("q", window), params.mtu_bytes),
            jain_index=jain_fairness(finals),
            p_mark=trace.tail_mean("p_mark", window),
            p_star_red=fixed.p))
    return rows


def report(rows: List[DCQCNPIRow]) -> str:
    """Render the queue-pinning/fairness table."""
    return format_table(
        ["N", "queue (KB)", "ref (KB)", "queue std", "Jain", "p (PI)",
         "p* (Eq.11)", "pinned"],
        [[r.num_flows, r.queue_mean_kb, r.queue_ref_kb, r.queue_std_kb,
          r.jain_index, r.p_mark, r.p_star_red, r.pinned]
         for r in rows],
        title="Fig. 18 -- DCQCN + PI: queue pinned to the reference "
              "for any N, rates fair")
