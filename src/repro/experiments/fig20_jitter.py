"""Figure 20: resilience to random feedback-delay jitter.

Uniform random jitter up to 100 us is injected into the feedback delay
of both fluid models -- ``tau*`` for DCQCN, ``tau'`` for (patched)
TIMELY.  For ECN the jitter merely postpones a still-correct mark; for
a delay-based protocol the jitter lands *inside* the measured signal.
The patched-TIMELY system that was rock stable in Fig. 12(a) starts
oscillating; DCQCN's tail statistics barely move.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro import units
from repro.analysis.reporting import format_table
from repro.core.fluid import dde
from repro.core.fluid.dcqcn import DCQCNFluidModel
from repro.core.fluid.jitter import JitterProcess, no_jitter
from repro.core.fluid.patched_timely import PatchedTimelyFluidModel
from repro.core.params import DCQCNParams, PatchedTimelyParams


@dataclass(frozen=True)
class JitterRow:
    """Tail queue variability with and without jitter."""

    protocol: str
    jitter_us: float
    queue_mean_kb: float
    queue_std_kb: float

    @property
    def coefficient_of_variation(self) -> float:
        if self.queue_mean_kb == 0:
            return float("inf")
        return self.queue_std_kb / self.queue_mean_kb


def run(jitter_us: float = 100.0,
        capacity_gbps_dcqcn: float = 40.0,
        capacity_gbps_timely: float = 10.0,
        num_flows: int = 2,
        duration: float = 0.08,
        dt: float = 1e-6,
        seed: int = 0) -> List[JitterRow]:
    """Four runs: {DCQCN, patched TIMELY} x {no jitter, jitter}."""
    rows = []
    window = duration / 4.0
    for amplitude_us in (0.0, jitter_us):
        if amplitude_us > 0:
            dcqcn_jitter = JitterProcess(units.us(amplitude_us),
                                         seed=seed)
            timely_jitter = JitterProcess(units.us(amplitude_us),
                                          seed=seed + 1)
        else:
            dcqcn_jitter = no_jitter
            timely_jitter = no_jitter

        dcqcn_params = DCQCNParams.paper_default(
            capacity_gbps=capacity_gbps_dcqcn, num_flows=num_flows,
            tau_star_us=4.0)
        dcqcn = dde.integrate(
            DCQCNFluidModel(dcqcn_params, feedback_jitter=dcqcn_jitter),
            duration, dt=dt, record_stride=10)
        rows.append(JitterRow(
            protocol="dcqcn",
            jitter_us=amplitude_us,
            queue_mean_kb=units.packets_to_kb(
                dcqcn.tail_mean("q", window), dcqcn_params.mtu_bytes),
            queue_std_kb=units.packets_to_kb(
                dcqcn.tail_std("q", window), dcqcn_params.mtu_bytes)))

        patched = PatchedTimelyParams.paper_default(
            capacity_gbps=capacity_gbps_timely, num_flows=num_flows)
        timely = dde.integrate(
            PatchedTimelyFluidModel(patched,
                                    feedback_jitter=timely_jitter),
            duration, dt=dt, record_stride=10)
        mtu = patched.base.mtu_bytes
        rows.append(JitterRow(
            protocol="patched_timely",
            jitter_us=amplitude_us,
            queue_mean_kb=units.packets_to_kb(
                timely.tail_mean("q", window), mtu),
            queue_std_kb=units.packets_to_kb(
                timely.tail_std("q", window), mtu)))
    return rows


def report(rows: List[JitterRow]) -> str:
    """Render the jitter-resilience comparison."""
    return format_table(
        ["protocol", "jitter (us)", "queue mean (KB)", "queue std (KB)",
         "CoV"],
        [[r.protocol, r.jitter_us, r.queue_mean_kb, r.queue_std_kb,
          r.coefficient_of_variation] for r in rows],
        title="Fig. 20 -- feedback jitter: DCQCN shrugs, delay-based "
              "control destabilizes")
