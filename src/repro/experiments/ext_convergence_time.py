"""Extension: how fast does each protocol re-converge after churn?

Theorem 2 (DCQCN) and Theorem 5 (patched TIMELY) both promise
*exponential* convergence; this experiment puts a clock on it.  A
late flow joins an established flow at the bottleneck, and we measure
how long the pair takes to settle within a tolerance band of the new
fair share -- fluid models, so the answer is noise-free.

DCQCN's newcomer arrives at line rate (the protocol's design) and the
incumbent is beaten down within a handful of AIMD cycles; patched
TIMELY's newcomer climbs from its starting rate under the
``(1-w) delta`` additive term, so its convergence time is dominated
by delta and is typically an order of magnitude slower at these
parameters -- the flip side of the gentleness that keeps its queue
smooth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.convergence.metrics import convergence_time
from repro.core.fluid import dde
from repro.core.fluid.dcqcn import DCQCNFluidModel
from repro.core.fluid.patched_timely import PatchedTimelyFluidModel
from repro.core.params import DCQCNParams, PatchedTimelyParams


@dataclass(frozen=True)
class ConvergenceRow:
    """Settling times after a flow joins at ``join_time``."""

    protocol: str
    join_time_ms: float
    newcomer_settle_ms: Optional[float]   #: None = never settled
    incumbent_settle_ms: Optional[float]


def _settle(times: np.ndarray, series: np.ndarray, join: float,
            target: float, tolerance: float) -> Optional[float]:
    """Post-join settling time (ms), None if never settled."""
    mask = times >= join
    settled = convergence_time(times[mask], series[mask], target,
                               tolerance)
    if settled is None:
        return None
    return (settled - join) * 1e3


def run(join_time: float = 0.02,
        duration: float = 0.25,
        tolerance_fraction: float = 0.1,
        capacity_gbps: float = 10.0,
        dt: float = 1e-6) -> List[ConvergenceRow]:
    """One incumbent, one joiner, for DCQCN and patched TIMELY."""
    rows = []

    # DCQCN: both flows modelled, second activates at join_time at
    # line rate (DCQCN's arrival behaviour).
    params = DCQCNParams.paper_default(capacity_gbps=capacity_gbps,
                                       num_flows=2, tau_star_us=4.0)
    fair = params.fair_share
    model = DCQCNFluidModel(params, start_times=[0.0, join_time])
    trace = dde.integrate(model, duration, dt=dt, record_stride=20)
    tolerance = tolerance_fraction * fair
    rows.append(ConvergenceRow(
        protocol="dcqcn",
        join_time_ms=join_time * 1e3,
        newcomer_settle_ms=_settle(trace.times, trace.column("rc[1]"),
                                   join_time, fair, tolerance),
        incumbent_settle_ms=_settle(trace.times, trace.column("rc[0]"),
                                    join_time, fair, tolerance)))

    # Patched TIMELY, twice: the newcomer entering at TIMELY's
    # C/(N+1) rule, and entering timidly at C/20 (as if the host
    # believed many flows were active) -- the climb is additive-only,
    # so the timid start exposes the delta-limited ramp.
    patched = PatchedTimelyParams.paper_default(
        capacity_gbps=capacity_gbps, num_flows=2)
    base = patched.base
    fair_t = base.fair_share
    tolerance_t = tolerance_fraction * fair_t
    for label, newcomer_rate in (
            ("patched_timely (C/2 start)", base.capacity / 2.0),
            ("patched_timely (C/20 start)", base.capacity / 20.0)):
        model_t = PatchedTimelyFluidModel(
            patched,
            initial_rates=[base.capacity, newcomer_rate],
            start_times=[0.0, join_time])
        trace_t = dde.integrate(model_t, duration, dt=dt,
                                record_stride=20)
        rows.append(ConvergenceRow(
            protocol=label,
            join_time_ms=join_time * 1e3,
            newcomer_settle_ms=_settle(trace_t.times,
                                       trace_t.column("r[1]"),
                                       join_time, fair_t, tolerance_t),
            incumbent_settle_ms=_settle(trace_t.times,
                                        trace_t.column("r[0]"),
                                        join_time, fair_t,
                                        tolerance_t)))
    return rows


def report(rows: List[ConvergenceRow]) -> str:
    """Render the settling-time comparison."""
    def fmt(value: Optional[float]) -> object:
        return "never" if value is None else value

    return format_table(
        ["protocol", "join at (ms)", "newcomer settles (ms)",
         "incumbent settles (ms)"],
        [[r.protocol, r.join_time_ms, fmt(r.newcomer_settle_ms),
          fmt(r.incumbent_settle_ms)] for r in rows],
        title="Extension -- re-convergence time after a flow joins "
              "(10% band around fair share)")
