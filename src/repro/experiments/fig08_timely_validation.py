"""Figure 8: TIMELY fluid model vs packet-level simulation.

N senders through one switch at 10 Gbps with the footnote-4 parameter
values, flows starting at ``C/N`` with per-packet pacing (the paper's
choice for this comparison).  Reports steady-window agreement between
the fluid integrator and the packet simulator.  TIMELY limit-cycles,
so the comparison is on tail *means* and oscillation amplitudes rather
than a settled value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro import units
from repro.analysis.reporting import format_table
from repro.core.fluid import dde
from repro.core.fluid.timely import TimelyFluidModel
from repro.core.params import TimelyParams
from repro.obs.scrape import scrape_network
from repro.sim.monitors import QueueMonitor, RateMonitor
from repro.sim.topology import install_flow, single_switch


@dataclass(frozen=True)
class TimelyValidationRow:
    """Fluid-vs-simulation tail statistics for one flow count."""

    num_flows: int
    fluid_rate_gbps: float
    sim_rate_gbps: float
    fluid_queue_kb: float
    sim_queue_kb: float
    fluid_queue_std_kb: float
    sim_queue_std_kb: float

    @property
    def rate_error(self) -> float:
        return abs(self.sim_rate_gbps - self.fluid_rate_gbps) \
            / self.fluid_rate_gbps


def run(flow_counts=(2, 10), capacity_gbps: float = 10.0,
        duration: float = 0.06, dt: float = 1e-6,
        engine: str = "heap") -> List[TimelyValidationRow]:
    """Run the fluid/simulation pair for each flow count.

    ``engine`` selects the packet-side event-queue backend
    (``"heap"`` / ``"calendar"``; bit-identical results).
    """
    rows = []
    window = duration / 3.0
    for n in flow_counts:
        params = TimelyParams.paper_default(capacity_gbps=capacity_gbps,
                                            num_flows=n)
        fair = params.capacity / n

        fluid = dde.integrate(
            TimelyFluidModel(params, initial_rates=[fair] * n),
            duration, dt=dt, record_stride=10)
        fluid_rate = np.mean([fluid.tail_mean(f"r[{i}]", window)
                              for i in range(n)])
        fluid_queue = fluid.tail_mean("q", window)
        fluid_queue_std = fluid.tail_std("q", window)

        net = single_switch(n, link_gbps=capacity_gbps, engine=engine)
        for i in range(n):
            install_flow(net, "timely", f"s{i}", "recv", None, 0.0,
                         params, pacing="packet",
                         initial_rate=net.link_rate_bytes / n)
        queue_mon = QueueMonitor(net.sim, net.bottleneck_port,
                                 interval=50e-6)
        rate_mon = RateMonitor(
            net.sim, {f"s{i}": net.senders[i] for i in range(n)},
            interval=100e-6)
        net.sim.run(until=duration)
        scrape_network(network=net)

        tail_rates = []
        for i in range(n):
            times, series = rate_mon.series(f"s{i}")
            mask = times >= times[-1] - window
            tail_rates.append(float(np.mean(series[mask])))

        rows.append(TimelyValidationRow(
            num_flows=n,
            fluid_rate_gbps=units.pps_to_gbps(fluid_rate,
                                              params.mtu_bytes),
            sim_rate_gbps=float(np.mean(tail_rates)) * 8 / 1e9,
            fluid_queue_kb=units.packets_to_kb(fluid_queue,
                                               params.mtu_bytes),
            sim_queue_kb=queue_mon.tail_mean_bytes(window) / 1024,
            fluid_queue_std_kb=units.packets_to_kb(fluid_queue_std,
                                                   params.mtu_bytes),
            sim_queue_std_kb=queue_mon.tail_std_bytes(window) / 1024))
    return rows


def report(rows: List[TimelyValidationRow]) -> str:
    """Render the Fig. 8 agreement table."""
    return format_table(
        ["N", "fluid rate (Gbps)", "sim rate (Gbps)", "fluid q (KB)",
         "sim q (KB)", "fluid q std", "sim q std", "rate err"],
        [[r.num_flows, r.fluid_rate_gbps, r.sim_rate_gbps,
          r.fluid_queue_kb, r.sim_queue_kb, r.fluid_queue_std_kb,
          r.sim_queue_std_kb, r.rate_error] for r in rows],
        title="Fig. 8 -- TIMELY fluid model vs packet simulation")
