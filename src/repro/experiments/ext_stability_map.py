"""Extension: the full DCQCN stability boundary over (N, delay).

Fig. 3 shows phase-margin *curves*; this experiment computes the whole
two-dimensional map -- margin for every (flow count, feedback delay)
cell, using the closed-form Appendix-A linearization for speed -- and
extracts the stability boundary: for each flow count, the largest
delay the loop tolerates.  The boundary makes the paper's
non-monotonicity vivid: the tolerable delay *dips* around N~10 and
then grows again, so a network that survives 10 incasting senders at
some RTT can be destabilized by removing flows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.reporting import format_table
from repro.core.params import DCQCNParams
from repro.core.stability.bode import phase_margin
from repro.core.stability.dcqcn_margin import DCQCNLoopGain
from repro.perf import ResiliencePolicy, ResultCache, SweepRunner

#: Default grid (log-ish in both axes).
DEFAULT_FLOWS = (1, 2, 4, 6, 8, 10, 14, 20, 30, 50, 80)
DEFAULT_DELAYS_US = (4, 10, 25, 40, 55, 70, 85, 100, 130, 170)


@dataclass(frozen=True)
class StabilityMapRow:
    """One flow count's margins across the delay axis."""

    num_flows: int
    delays_us: Sequence[float]
    margins_deg: List[float]

    @property
    def max_stable_delay_us(self) -> Optional[float]:
        """Largest swept delay with a positive margin (None if none)."""
        stable = [d for d, m in zip(self.delays_us, self.margins_deg)
                  if m > 0]
        return max(stable) if stable else None


def compute_row(num_flows: int, delays_us: Sequence[float],
                capacity_gbps: float) -> StabilityMapRow:
    """One flow count's margins across the delay axis.

    Module-level (picklable) so :class:`~repro.perf.SweepRunner` can
    fan rows out to worker processes; each cell is self-contained.
    """
    margins = []
    for delay in delays_us:
        params = DCQCNParams.paper_default(
            capacity_gbps=capacity_gbps, num_flows=int(num_flows),
            tau_star_us=float(delay))
        loop = DCQCNLoopGain(params, jacobian_mode="analytic")
        margins.append(phase_margin(loop).margin_deg)
    return StabilityMapRow(num_flows=int(num_flows),
                           delays_us=tuple(delays_us),
                           margins_deg=margins)


def run(flow_counts: Sequence[int] = DEFAULT_FLOWS,
        delays_us: Sequence[float] = DEFAULT_DELAYS_US,
        capacity_gbps: float = 40.0,
        workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        resilience: Optional[ResiliencePolicy] = None,
        backend=None) -> List[StabilityMapRow]:
    """Compute the margin grid with the analytic linearization.

    ``workers`` fans the per-flow-count rows over processes;
    ``cache`` memoizes each row on disk; ``resilience`` adds
    timeouts, retries, quarantine and crash-surviving resume;
    ``backend`` overrides where cells execute, e.g. a
    :class:`~repro.perf.QueueBackend` for multi-host runs (see
    :mod:`repro.perf`).  Results are identical to the serial,
    uncached, uninterrupted computation.
    """
    runner = SweepRunner(workers=workers, cache=cache,
                         experiment_id="ext_stability_map",
                         resilience=resilience, backend=backend)
    cells = [{"num_flows": int(n), "delays_us": tuple(delays_us),
              "capacity_gbps": capacity_gbps} for n in flow_counts]
    return runner.map(compute_row, cells)


def boundary(rows: List[StabilityMapRow]
             ) -> "List[tuple[int, Optional[float]]]":
    """(flow count, max stable delay) pairs -- the stability frontier."""
    return [(row.num_flows, row.max_stable_delay_us) for row in rows]


def report(rows: List[StabilityMapRow]) -> str:
    """Render the margin grid plus the extracted frontier."""
    if not rows:
        raise ValueError("no rows to report")
    delays = rows[0].delays_us
    headers = ["N \\ delay(us)"] + [f"{d:g}" for d in delays] \
        + ["max stable"]
    table_rows: List[List[object]] = []
    for row in rows:
        frontier = row.max_stable_delay_us
        table_rows.append(
            [row.num_flows]
            + [round(m, 1) for m in row.margins_deg]
            + ["none" if frontier is None else f"{frontier:g}us"])
    return format_table(
        headers, table_rows,
        title="Extension -- DCQCN phase-margin map over (N, feedback "
              "delay); positive = stable")
