"""Figure 2: DCQCN fluid model vs packet-level simulation.

N senders share one switch toward one receiver at 40 Gbps with the
default DCQCN parameters; flows start at line rate.  The paper shows
the fluid model and NS3 agree on per-flow rate and queue trajectories;
we reproduce the comparison between our fluid integrator and our
packet simulator, reporting steady-state agreement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro import units
from repro.core.fluid import dde
from repro.core.fluid.dcqcn import DCQCNFluidModel
from repro.core.fixedpoint.dcqcn import solve_fixed_point
from repro.core.params import DCQCNParams
from repro.analysis.reporting import format_table
from repro.obs.scrape import scrape_network
from repro.sim.monitors import QueueMonitor, RateMonitor
from repro.sim.red import REDMarker
from repro.sim.topology import install_flow, single_switch


@dataclass(frozen=True)
class ValidationRow:
    """Fluid-vs-simulation agreement for one flow count."""

    num_flows: int
    fluid_rate_gbps: float
    sim_rate_gbps: float
    fluid_queue_kb: float
    sim_queue_kb: float
    fixed_point_queue_kb: float

    @property
    def rate_error(self) -> float:
        """Relative steady-state rate disagreement."""
        return abs(self.sim_rate_gbps - self.fluid_rate_gbps) \
            / self.fluid_rate_gbps

    @property
    def queue_error(self) -> float:
        """Relative steady-state queue disagreement."""
        return abs(self.sim_queue_kb - self.fluid_queue_kb) \
            / max(self.fluid_queue_kb, 1e-9)


def run(flow_counts=(2, 10), capacity_gbps: float = 40.0,
        duration: float = 0.03, dt: float = 1e-6,
        seed: int = 1) -> List[ValidationRow]:
    """Run the fluid/simulation pair for each flow count."""
    rows = []
    for n in flow_counts:
        params = DCQCNParams.paper_default(capacity_gbps=capacity_gbps,
                                           num_flows=n, tau_star_us=4.0)
        window = duration / 3.0

        fluid = dde.integrate(DCQCNFluidModel(params), duration, dt=dt,
                              record_stride=10)
        fluid_rate = np.mean([fluid.tail_mean(f"rc[{i}]", window)
                              for i in range(n)])
        fluid_queue = fluid.tail_mean("q", window)

        marker = REDMarker(params.red, params.mtu_bytes, seed=seed)
        net = single_switch(n, link_gbps=capacity_gbps, marker=marker)
        for i in range(n):
            install_flow(net, "dcqcn", f"s{i}", "recv", None, 0.0, params)
        queue_mon = QueueMonitor(net.sim, net.bottleneck_port,
                                 interval=50e-6)
        rate_mon = RateMonitor(
            net.sim, {f"s{i}": net.senders[i] for i in range(n)},
            interval=100e-6)
        net.sim.run(until=duration)
        scrape_network(network=net)

        sim_rates = rate_mon.final_rates()
        sim_rate_bytes = np.mean([sim_rates[f"s{i}"] for i in range(n)])
        fixed = solve_fixed_point(params)
        rows.append(ValidationRow(
            num_flows=n,
            fluid_rate_gbps=units.pps_to_gbps(fluid_rate,
                                              params.mtu_bytes),
            sim_rate_gbps=sim_rate_bytes * 8 / 1e9,
            fluid_queue_kb=units.packets_to_kb(fluid_queue,
                                               params.mtu_bytes),
            sim_queue_kb=queue_mon.tail_mean_bytes(window) / 1024,
            fixed_point_queue_kb=units.packets_to_kb(fixed.queue,
                                                     params.mtu_bytes),
        ))
    return rows


def report(rows: List[ValidationRow]) -> str:
    """Render the Fig. 2 agreement table."""
    return format_table(
        ["N", "fluid rate (Gbps)", "sim rate (Gbps)", "fluid q (KB)",
         "sim q (KB)", "q* (KB)", "rate err", "queue err"],
        [[r.num_flows, r.fluid_rate_gbps, r.sim_rate_gbps,
          r.fluid_queue_kb, r.sim_queue_kb, r.fixed_point_queue_kb,
          r.rate_error, r.queue_error] for r in rows],
        title="Fig. 2 -- DCQCN fluid model vs packet simulation")
