"""Figure 9: TIMELY's operating point depends on initial conditions.

Two fluid flows under three starting conditions -- (a) both 5 Gbps at
t=0, (b) both 5 Gbps with the second starting 10 ms late, (c) 7 Gbps
vs 3 Gbps -- end up in completely different regimes, the signature of
Theorem 4's infinite fixed-point family.  The experiment reports final
rates and the Jain index for each scenario.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro import units
from repro.analysis.reporting import format_table
from repro.core.convergence.metrics import jain_fairness, max_min_ratio
from repro.core.fluid import dde
from repro.core.fluid.timely import TimelyFluidModel
from repro.core.params import TimelyParams
from repro.obs import health as _health


@dataclass(frozen=True)
class Scenario:
    """One Fig. 9 starting condition."""

    label: str
    initial_rates_gbps: Sequence[float]
    start_times: Optional[Sequence[float]] = None


#: The paper's three panels.
PAPER_SCENARIOS = (
    Scenario("(a) both 5Gbps at t=0", (5.0, 5.0)),
    Scenario("(b) both 5Gbps, one 10ms late", (5.0, 5.0), (0.0, 0.010)),
    Scenario("(c) 7Gbps vs 3Gbps", (7.0, 3.0)),
)


@dataclass(frozen=True)
class UnfairnessRow:
    """Outcome of one scenario."""

    label: str
    final_rates_gbps: List[float]
    jain_index: float
    max_min: float
    queue_tail_std_kb: float


def run(scenarios: Sequence[Scenario] = PAPER_SCENARIOS,
        capacity_gbps: float = 10.0,
        duration: float = 0.08,
        dt: float = 1e-6) -> List[UnfairnessRow]:
    """Integrate each scenario and collect final operating points."""
    rows = []
    window = duration / 4.0
    for scenario in scenarios:
        n = len(scenario.initial_rates_gbps)
        params = TimelyParams.paper_default(capacity_gbps=capacity_gbps,
                                            num_flows=n)
        rates = [units.gbps_to_pps(g, params.mtu_bytes)
                 for g in scenario.initial_rates_gbps]
        model = TimelyFluidModel(params, initial_rates=rates,
                                 start_times=scenario.start_times)
        observer = None
        monitor = None
        if _health.current_session() is not None:
            # Stream per-flow rates (state[1+n:], the TIMELY layout
            # [q, g[i], r[i]]) into the unfairness detector; inert
            # while telemetry is off.
            monitor = _health.HealthMonitor(
                [_health.UnfairnessDriftDetector(window=window)],
                context=scenario.label)
            observer = monitor.observe_state(
                rate_slice=slice(1 + n, 1 + 2 * n))
        trace = dde.integrate(model, duration, dt=dt,
                              record_stride=10, observer=observer)
        if monitor is not None:
            monitor.finalize()
        final = [trace.tail_mean(f"r[{i}]", window) for i in range(n)]
        rows.append(UnfairnessRow(
            label=scenario.label,
            final_rates_gbps=[units.pps_to_gbps(r, params.mtu_bytes)
                              for r in final],
            jain_index=jain_fairness(final),
            max_min=max_min_ratio(final),
            queue_tail_std_kb=units.packets_to_kb(
                trace.tail_std("q", window), params.mtu_bytes)))
    return rows


def report(rows: List[UnfairnessRow]) -> str:
    """Render the three-scenario outcome table."""
    return format_table(
        ["scenario", "final rates (Gbps)", "Jain", "max/min",
         "queue std (KB)"],
        [[r.label,
          "/".join(f"{g:.2f}" for g in r.final_rates_gbps),
          r.jain_index, r.max_min, r.queue_tail_std_kb] for r in rows],
        title="Fig. 9 -- TIMELY operating points vs starting conditions")
