"""Extension: DCQCN resilience to lossy feedback and link flaps.

Fig. 20 asked how the protocols weather feedback *jitter*; this
extension asks the harsher operational questions a datacenter actually
poses: what if CNPs are outright *lost* (a congested or misconfigured
reverse path), and what if the bottleneck link *flaps*?  The Fig. 2
validation setup (N DCQCN senders through one RED-marked switch port)
runs under a :class:`~repro.sim.faults.FaultPlan` sweeping CNP-loss
probability and flap frequency, with an
:class:`~repro.sim.invariants.InvariantMonitor` riding along to prove
the simulator's own physics survive every scenario.

The headline result mirrors the paper's thesis from a new angle:
DCQCN's control loop degrades gracefully under feedback loss -- lost
CNPs mean *less* braking, so senders keep their throughput (the queue
pays the price) -- while the rate-limiter timeout keeps flows from
idling when feedback dies entirely during flaps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.convergence.metrics import jain_fairness
from repro.core.params import DCQCNParams
from repro.perf import ResiliencePolicy, ResultCache, SweepRunner
from repro.obs.scrape import scrape_network
from repro.sim import faults
from repro.sim.invariants import InvariantMonitor
from repro.sim.monitors import QueueMonitor, RateMonitor
from repro.sim.red import REDMarker
from repro.sim.topology import install_flow, single_switch


@dataclass(frozen=True)
class ResilienceRow:
    """Outcome of one fault scenario."""

    cnp_loss: float
    flap_hz: float
    throughput_gbps: float
    fairness: float
    queue_mean_kb: float
    queue_std_kb: float
    min_rate_gbps: float
    cnps_lost: int
    flap_drops: int
    rate_limiter_timeouts: int
    invariant_violations: int


def _fault_plan(cnp_loss: float, flap_hz: float,
                duration: float) -> faults.FaultPlan:
    """CNP loss on the receiver's reverse NIC + bottleneck flaps."""
    plan = faults.FaultPlan()
    if cnp_loss > 0:
        # Every CNP funnels through the receiver's NIC toward the
        # switch; one rule covers all flows.
        plan.add(faults.PacketLoss("recv->sw", rate=cnp_loss,
                                   kinds=("cnp",)))
    if flap_hz > 0:
        period = 1.0 / flap_hz
        count = max(int(duration / period) - 1, 1)
        # Each flap darkens the bottleneck for a tenth of its period.
        plan.add(faults.LinkFlap("sw->recv", start=period,
                                 duration=0.1 * period, mode="drop",
                                 period=period, count=count))
    return plan


def compute_row(cnp_loss: float, flap_hz: float, capacity_gbps: float,
                num_flows: int, duration: float,
                cnp_timeout: Optional[float],
                seed: int) -> ResilienceRow:
    """Simulate one fault scenario; self-seeded, hence picklable and
    independent of every other grid cell."""
    window = duration / 4.0
    params = DCQCNParams.paper_default(capacity_gbps=capacity_gbps,
                                       num_flows=num_flows,
                                       tau_star_us=4.0)
    # One generator drives marking *and* fault randomness: the
    # whole faulty simulation replays from this single seed.
    rng = np.random.default_rng(seed)
    marker = REDMarker(params.red, params.mtu_bytes, rng=rng)
    net = single_switch(num_flows, link_gbps=capacity_gbps,
                        marker=marker)
    senders = []
    for i in range(num_flows):
        sender, _ = install_flow(net, "dcqcn", f"s{i}", "recv",
                                 None, 0.0, params,
                                 cnp_timeout=cnp_timeout)
        senders.append(sender)

    injector = faults.install(
        net, _fault_plan(cnp_loss, flap_hz, duration), rng=rng)
    monitor = InvariantMonitor.for_network(net,
                                           interval=duration / 40.0)
    queue_mon = QueueMonitor(net.sim, net.bottleneck_port,
                             interval=50e-6)
    rate_mon = RateMonitor(
        net.sim, {f"s{i}": senders[i] for i in range(num_flows)},
        interval=100e-6)
    net.sim.run(until=duration)
    scrape_network(network=net)

    final = rate_mon.final_rates()
    rates = np.array([final[f"s{i}"] for i in range(num_flows)])
    delivered = sum(flow.bytes_delivered
                    for flow in net.registry.flows.values())
    return ResilienceRow(
        cnp_loss=cnp_loss,
        flap_hz=flap_hz,
        throughput_gbps=delivered * 8 / duration / 1e9,
        fairness=float(jain_fairness(rates)),
        queue_mean_kb=queue_mon.tail_mean_bytes(window) / 1024,
        queue_std_kb=queue_mon.tail_std_bytes(window) / 1024,
        min_rate_gbps=float(rates.min()) * 8 / 1e9,
        cnps_lost=injector.stats.lost_by_kind.get("cnp", 0),
        flap_drops=injector.stats.flap_drops,
        rate_limiter_timeouts=sum(s.rate_limiter_timeouts
                                  for s in senders),
        invariant_violations=len(monitor.violations))


def run(cnp_loss_rates: Sequence[float] = (0.0, 0.2, 0.5),
        flap_frequencies_hz: Sequence[float] = (0.0, 200.0),
        capacity_gbps: float = 40.0,
        num_flows: int = 2,
        duration: float = 0.02,
        cnp_timeout: Optional[float] = 2e-3,
        seed: int = 3,
        workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        resilience: Optional[ResiliencePolicy] = None
        ) -> List[ResilienceRow]:
    """Sweep the fault grid: loss rates alone, plus flaps at zero loss
    and the worst loss rate (the full cross product adds little)."""
    grid: List[Tuple[float, float]] = [(loss, 0.0)
                                       for loss in cnp_loss_rates]
    worst = max(cnp_loss_rates)
    for flap_hz in flap_frequencies_hz:
        if flap_hz > 0:
            grid.append((0.0, flap_hz))
            if worst > 0:
                grid.append((worst, flap_hz))

    runner = SweepRunner(workers=workers, cache=cache,
                         experiment_id="ext_fault_resilience",
                         resilience=resilience)
    cells = [{"cnp_loss": cnp_loss, "flap_hz": flap_hz,
              "capacity_gbps": capacity_gbps, "num_flows": num_flows,
              "duration": duration, "cnp_timeout": cnp_timeout,
              "seed": seed} for cnp_loss, flap_hz in grid]
    return runner.map(compute_row, cells)


def report(rows: List[ResilienceRow]) -> str:
    """Render the fault-resilience sweep."""
    return format_table(
        ["CNP loss", "flap (Hz)", "tput (Gbps)", "Jain", "q mean (KB)",
         "q std (KB)", "min rate (Gbps)", "CNPs lost", "flap drops",
         "RL timeouts", "violations"],
        [[r.cnp_loss, r.flap_hz, r.throughput_gbps, r.fairness,
          r.queue_mean_kb, r.queue_std_kb, r.min_rate_gbps, r.cnps_lost,
          r.flap_drops, r.rate_limiter_timeouts,
          r.invariant_violations] for r in rows],
        title="ext -- DCQCN under CNP loss and bottleneck link flaps")
