"""Extension: prioritizing feedback packets (Section 5.2's mitigation).

The paper notes both protocols try to protect their feedback from
reverse-path congestion, "e.g., by prioritizing feedback packets".
This experiment creates that congestion deliberately -- a bulk DCQCN
flow from the receiver back toward a sender, so CNPs must cross queues
full of reverse data -- and compares FIFO ports against ports with a
strict high-priority control class:

* FIFO: CNPs wait behind up to a full reverse-direction queue, so the
  forward control loop inherits exactly the kind of feedback latency
  that destabilized Fig. 5;
* priority: CNP transit latency collapses back to near propagation,
  and the forward queue tightens accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro import units
from repro.analysis.reporting import format_table
from repro.core.params import DCQCNParams
from repro.obs.scrape import scrape_network
from repro.sim.monitors import QueueMonitor
from repro.sim.red import REDMarker
from repro.sim.topology import install_flow, single_switch


@dataclass(frozen=True)
class PriorityRow:
    """Feedback-latency and stability outcome for one queue discipline."""

    discipline: str
    cnp_delay_mean_us: float
    cnp_delay_max_us: float
    forward_queue_mean_kb: float
    forward_queue_std_kb: float


def run(capacity_gbps: float = 10.0,
        n_forward: int = 2,
        duration: float = 0.06,
        seed: int = 17) -> List[PriorityRow]:
    """Run the reverse-congestion scenario with and without priority."""
    rows = []
    for priority in (False, True):
        params = DCQCNParams.paper_default(capacity_gbps=capacity_gbps,
                                           num_flows=n_forward)
        marker = REDMarker(params.red, params.mtu_bytes, seed=seed)
        net = single_switch(n_forward, link_gbps=capacity_gbps,
                            marker=marker, priority_control=priority)
        forward_senders = []
        for i in range(n_forward):
            sender, _ = install_flow(net, "dcqcn", f"s{i}", "recv",
                                     None, 0.0, params)
            forward_senders.append(sender)
        # The reverse bulk flow: data recv -> s0, sharing the
        # receiver's NIC and the switch's s0-facing port with every
        # CNP heading back to the senders.
        install_flow(net, "dcqcn", "recv", "s0", None, 0.0, params)
        monitor = QueueMonitor(net.sim, net.bottleneck_port,
                               interval=50e-6)
        net.sim.run(until=duration)
        scrape_network(network=net)

        cnps = sum(s.cnps_received for s in forward_senders)
        delay_sum = sum(s.cnp_delay_sum for s in forward_senders)
        delay_max = max(s.cnp_delay_max for s in forward_senders)
        window = duration / 2.0
        rows.append(PriorityRow(
            discipline="priority" if priority else "fifo",
            cnp_delay_mean_us=units.seconds_to_us(
                delay_sum / max(cnps, 1)),
            cnp_delay_max_us=units.seconds_to_us(delay_max),
            forward_queue_mean_kb=monitor.tail_mean_bytes(window)
            / 1024,
            forward_queue_std_kb=monitor.tail_std_bytes(window)
            / 1024))
    return rows


def report(rows: List[PriorityRow]) -> str:
    """Render the FIFO-vs-priority comparison."""
    return format_table(
        ["discipline", "CNP delay mean (us)", "CNP delay max (us)",
         "fwd queue (KB)", "fwd queue std (KB)"],
        [[r.discipline, r.cnp_delay_mean_us, r.cnp_delay_max_us,
          r.forward_queue_mean_kb, r.forward_queue_std_kb]
         for r in rows],
        title="Extension -- feedback prioritization under reverse-path "
              "congestion")
