"""Figure 12: patched TIMELY convergence and stability.

(a) two flows with asymmetric initial rates (7 vs 3 Gbps) converge to
    the fair share with the queue settling at Eq. 31's value -- the
    direct contrast to Fig. 9(c);
(b) moderate flow counts remain stable;
(c) large flow counts oscillate, matching the Fig. 11 margin curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro import units
from repro.analysis.reporting import format_table
from repro.core.convergence.metrics import jain_fairness
from repro.core.fluid import dde
from repro.core.fluid.patched_timely import PatchedTimelyFluidModel
from repro.core.params import PatchedTimelyParams
from repro.obs import health as _health


def _unfairness_watch(label: str, n: int, window: float):
    """(observer, monitor) streaming rates into the drift detector.

    The patched model shares TIMELY's ``[q, g[i], r[i]]`` state
    layout.  Fig. 12 is the *negative control*: the patch pins the
    unique fixed point at the fair share, so the detector must stay
    clean here while firing on Fig. 9 -- even in panel (c), where
    large N oscillates the queue but the rates stay symmetric.
    Returns ``(None, None)`` while telemetry is off.
    """
    if _health.current_session() is None:
        return None, None
    monitor = _health.HealthMonitor(
        [_health.UnfairnessDriftDetector(window=window)],
        context=label)
    return monitor.observe_state(
        rate_slice=slice(1 + n, 1 + 2 * n)), monitor


@dataclass(frozen=True)
class PatchedRunRow:
    """Tail statistics of one patched-TIMELY fluid run."""

    label: str
    num_flows: int
    jain_index: float
    queue_mean_kb: float
    queue_pred_kb: float
    queue_std_kb: float

    @property
    def queue_error(self) -> float:
        """Relative deviation from the Eq. 31 prediction."""
        return abs(self.queue_mean_kb - self.queue_pred_kb) \
            / self.queue_pred_kb

    @property
    def oscillating(self) -> bool:
        return self.queue_std_kb > 0.1 * self.queue_pred_kb


def run_asymmetric(capacity_gbps: float = 10.0,
                   duration: float = 0.08,
                   dt: float = 1e-6) -> PatchedRunRow:
    """Panel (a): 7 vs 3 Gbps starting rates."""
    patched = PatchedTimelyParams.paper_default(
        capacity_gbps=capacity_gbps, num_flows=2)
    mtu = patched.base.mtu_bytes
    model = PatchedTimelyFluidModel(
        patched,
        initial_rates=[units.gbps_to_pps(7.0, mtu),
                       units.gbps_to_pps(3.0, mtu)])
    window = duration / 4.0
    observer, monitor = _unfairness_watch("(a) 7Gbps vs 3Gbps start",
                                          2, window)
    trace = dde.integrate(model, duration, dt=dt, record_stride=10,
                          observer=observer)
    if monitor is not None:
        monitor.finalize()
    finals = [trace.tail_mean(f"r[{i}]", window) for i in range(2)]
    return PatchedRunRow(
        label="(a) 7Gbps vs 3Gbps start",
        num_flows=2,
        jain_index=jain_fairness(finals),
        queue_mean_kb=units.packets_to_kb(trace.tail_mean("q", window),
                                          mtu),
        queue_pred_kb=units.packets_to_kb(patched.fixed_point_queue, mtu),
        queue_std_kb=units.packets_to_kb(trace.tail_std("q", window),
                                         mtu))


def run_flow_sweep(flow_counts: Sequence[int] = (10, 40, 64),
                   capacity_gbps: float = 10.0,
                   duration: float = 0.2,
                   dt: float = 1e-6) -> List[PatchedRunRow]:
    """Panels (b)/(c): stability across flow counts."""
    rows = []
    window = duration / 4.0
    for n in flow_counts:
        patched = PatchedTimelyParams.paper_default(
            capacity_gbps=capacity_gbps, num_flows=n)
        mtu = patched.base.mtu_bytes
        model = PatchedTimelyFluidModel(patched)
        observer, monitor = _unfairness_watch(f"N={n}", n, window)
        trace = dde.integrate(model, duration, dt=dt,
                              record_stride=20, observer=observer)
        if monitor is not None:
            monitor.finalize()
        finals = [trace.tail_mean(f"r[{i}]", window) for i in range(n)]
        rows.append(PatchedRunRow(
            label=f"N={n}",
            num_flows=n,
            jain_index=jain_fairness(finals),
            queue_mean_kb=units.packets_to_kb(
                trace.tail_mean("q", window), mtu),
            queue_pred_kb=units.packets_to_kb(patched.fixed_point_queue,
                                              mtu),
            queue_std_kb=units.packets_to_kb(
                trace.tail_std("q", window), mtu)))
    return rows


def report(rows: List[PatchedRunRow]) -> str:
    """Render the patched-TIMELY behaviour table."""
    return format_table(
        ["scenario", "N", "Jain", "queue (KB)", "Eq.31 (KB)",
         "queue std (KB)", "oscillating"],
        [[r.label, r.num_flows, r.jain_index, r.queue_mean_kb,
          r.queue_pred_kb, r.queue_std_kb, r.oscillating]
         for r in rows],
        title="Fig. 12 -- patched TIMELY: convergence and stability")
