"""Figure 10: the impact of TIMELY's per-burst pacing.

(a) with 16 KB segments, two burst-paced flows converge near the fair
    share -- the burstiness de-correlates the flows and nudges the
    system toward one operating point;
(b) with 64 KB segments, the initial back-to-back bursts collide
    ("incast"), both flows observe a huge RTT, slash their rates, and
    take a long time to crawl back at ``delta`` per completion event.

The experiment reports the rate trajectory milestones and tail state
for both segment sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.convergence.metrics import jain_fairness
from repro.core.params import TimelyParams
from repro.obs.scrape import scrape_network
from repro.sim.monitors import QueueMonitor, RateMonitor
from repro.sim.topology import install_flow, single_switch


@dataclass(frozen=True)
class BurstPacingRow:
    """Outcome of one burst-size configuration."""

    segment_kb: float
    early_total_gbps: float   #: aggregate rate shortly after start
    late_total_gbps: float    #: aggregate rate at the end
    jain_index: float
    queue_peak_kb: float
    recovered: bool           #: did the aggregate recover to >60% C?


def run(segment_kbs: Sequence[float] = (16.0, 64.0),
        capacity_gbps: float = 10.0,
        duration: float = 0.12,
        early_probe: float = 0.01,
        seed: int = 0) -> List[BurstPacingRow]:
    """Two burst-paced flows per segment size, starting simultaneously."""
    rows = []
    for seg in segment_kbs:
        params = TimelyParams.paper_default(capacity_gbps=capacity_gbps,
                                            num_flows=2, segment_kb=seg)
        net = single_switch(2, link_gbps=capacity_gbps)
        for i in range(2):
            install_flow(net, "timely", f"s{i}", "recv", None, 0.0,
                         params, pacing="burst",
                         initial_rate=net.link_rate_bytes / 2)
        queue_mon = QueueMonitor(net.sim, net.bottleneck_port,
                                 interval=20e-6)
        rate_mon = RateMonitor(
            net.sim, {f"s{i}": net.senders[i] for i in range(2)},
            interval=200e-6)
        net.sim.run(until=duration)
        scrape_network(network=net)

        def total_at(when: float) -> float:
            total = 0.0
            for i in range(2):
                times, series = rate_mon.series(f"s{i}")
                idx = int(np.searchsorted(times, when))
                idx = min(idx, series.size - 1)
                total += float(series[idx])
            return total * 8 / 1e9

        finals = [rate_mon.final_rates()[f"s{i}"] for i in range(2)]
        _, occupancy = queue_mon.as_arrays()
        late_total = total_at(duration * 0.99)
        rows.append(BurstPacingRow(
            segment_kb=seg,
            early_total_gbps=total_at(early_probe),
            late_total_gbps=late_total,
            jain_index=jain_fairness(finals),
            queue_peak_kb=float(occupancy.max()) / 1024,
            recovered=late_total > 0.6 * capacity_gbps))
    return rows


def report(rows: List[BurstPacingRow]) -> str:
    """Render the burst-size comparison."""
    return format_table(
        ["Seg (KB)", "total @10ms (Gbps)", "total @end (Gbps)", "Jain",
         "queue peak (KB)", "recovered"],
        [[r.segment_kb, r.early_total_gbps, r.late_total_gbps,
          r.jain_index, r.queue_peak_kb, r.recovered] for r in rows],
        title="Fig. 10 -- TIMELY burst pacing: 16KB converges, 64KB "
              "incast collapses")
