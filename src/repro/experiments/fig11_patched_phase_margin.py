"""Figure 11: patched TIMELY phase margin vs number of flows.

The margin rises at small N, then falls -- increasingly fast -- and
crosses zero: Eq. 31's fixed-point queue grows linearly with N, and
Eq. 24 turns that queue into control-loop delay.  Delay-based control
destabilizes itself by its own queue (Section 5.2's core argument).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro import units
from repro.analysis.reporting import format_table
from repro.core.fixedpoint.timely import patched_fixed_point
from repro.core.params import PatchedTimelyParams
from repro.core.stability.timely_margin import patched_timely_phase_margin
from repro.perf import ResiliencePolicy, ResultCache, SweepRunner

#: Default flow-count grid.
DEFAULT_FLOWS = (2, 5, 10, 15, 20, 30, 40, 50, 60)


@dataclass(frozen=True)
class PatchedMarginRow:
    """Margin and fixed-point geometry for one flow count."""

    num_flows: int
    margin_deg: float
    queue_star_kb: float
    feedback_delay_us: float


def compute_row(num_flows: int,
                capacity_gbps: float) -> PatchedMarginRow:
    """Margin and fixed-point geometry for one flow count (picklable)."""
    patched = PatchedTimelyParams.paper_default(
        capacity_gbps=capacity_gbps, num_flows=num_flows)
    base = patched.base
    try:
        point = patched_fixed_point(patched)
        margin: Optional[float] = patched_timely_phase_margin(
            patched).margin_deg
        queue_kb = units.packets_to_kb(point.queue, base.mtu_bytes)
        delay_us = units.seconds_to_us(
            point.queue / base.capacity + 1.0 / base.capacity
            + base.prop_delay)
    except ValueError:
        # Eq. 31 queue left the gradient band: no fixed point.
        margin = float("nan")
        queue_kb = float("nan")
        delay_us = float("nan")
    return PatchedMarginRow(
        num_flows=num_flows, margin_deg=margin, queue_star_kb=queue_kb,
        feedback_delay_us=delay_us)


def run(flow_counts: Sequence[int] = DEFAULT_FLOWS,
        capacity_gbps: float = 10.0,
        workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        resilience: Optional[ResiliencePolicy] = None
        ) -> List[PatchedMarginRow]:
    """Sweep the flow count, collecting margin and loop-delay data."""
    runner = SweepRunner(workers=workers, cache=cache,
                         experiment_id="fig11",
                         resilience=resilience)
    cells = [{"num_flows": int(n), "capacity_gbps": capacity_gbps}
             for n in flow_counts]
    return runner.map(compute_row, cells)


def crossover_flows(rows: List[PatchedMarginRow]) -> Optional[int]:
    """Smallest N whose margin is negative (instability onset)."""
    for row in rows:
        if row.margin_deg == row.margin_deg and row.margin_deg <= 0:
            return row.num_flows
    return None


def report(rows: List[PatchedMarginRow]) -> str:
    """Render margin vs N with the fixed-point geometry."""
    return format_table(
        ["N", "phase margin (deg)", "q* (KB)", "feedback delay (us)"],
        [[r.num_flows, r.margin_deg, r.queue_star_kb,
          r.feedback_delay_us] for r in rows],
        title="Fig. 11 -- patched TIMELY phase margin vs flow count")
