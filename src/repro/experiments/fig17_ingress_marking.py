"""Figure 17: egress vs ingress ECN marking for DCQCN stability.

Two flows compete at a bottleneck whose control loop already carries
substantial delay, with the switch marking either at egress
(departure-time queue, the shared-buffer-silicon behaviour) or at
ingress (arrival-time queue -- the mark's information is one queuing
delay stale by the time the packet departs and carries it onward).
The default scenario runs at 10 Gbps, where draining the RED band
takes ~160 us, so the ingress staleness is a large fraction of the
loop delay -- exactly the "queuing delays dominate" regime Section 5.2
describes.  Ingress marking produces visibly larger queue fluctuation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro import units
from repro.analysis.reporting import format_table
from repro.core.params import DCQCNParams
from repro.obs.scrape import scrape_network
from repro.sim.monitors import QueueMonitor
from repro.sim.red import REDMarker
from repro.sim.topology import install_flow, single_switch


@dataclass(frozen=True)
class MarkingPointRow:
    """Tail queue behaviour for one marking point."""

    marking_point: str
    queue_mean_kb: float
    queue_std_kb: float
    queue_peak_kb: float

    @property
    def coefficient_of_variation(self) -> float:
        if self.queue_mean_kb == 0:
            return float("inf")
        return self.queue_std_kb / self.queue_mean_kb


def run(marking_points: Sequence[str] = ("egress", "ingress"),
        num_flows: int = 2,
        capacity_gbps: float = 10.0,
        extra_delay_us: float = 40.0,
        duration: float = 0.05,
        seed: int = 5) -> List[MarkingPointRow]:
    """Run the stressed scenario under both marking disciplines."""
    rows = []
    window = duration / 2.0
    for point in marking_points:
        params = DCQCNParams.paper_default(capacity_gbps=capacity_gbps,
                                           num_flows=num_flows)
        marker = REDMarker(params.red, params.mtu_bytes, seed=seed)
        net = single_switch(num_flows, link_gbps=capacity_gbps,
                            marker=marker, marking_point=point,
                            feedback_extra_delay=units.us(extra_delay_us))
        for i in range(num_flows):
            install_flow(net, "dcqcn", f"s{i}", "recv", None, 0.0, params)
        monitor = QueueMonitor(net.sim, net.bottleneck_port,
                               interval=20e-6)
        net.sim.run(until=duration)
        scrape_network(network=net)
        _, occupancy = monitor.as_arrays()
        rows.append(MarkingPointRow(
            marking_point=point,
            queue_mean_kb=monitor.tail_mean_bytes(window) / 1024,
            queue_std_kb=monitor.tail_std_bytes(window) / 1024,
            queue_peak_kb=float(occupancy.max()) / 1024))
    return rows


def report(rows: List[MarkingPointRow]) -> str:
    """Render the marking-point comparison."""
    return format_table(
        ["marking", "queue mean (KB)", "queue std (KB)", "peak (KB)",
         "CoV"],
        [[r.marking_point, r.queue_mean_kb, r.queue_std_kb,
          r.queue_peak_kb, r.coefficient_of_variation] for r in rows],
        title="Fig. 17 -- DCQCN with egress vs ingress ECN marking "
              "(85us feedback delay)")
