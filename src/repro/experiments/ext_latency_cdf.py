"""Extension: per-packet latency distributions under load.

FCT (Figs. 14-15) is the flow-level view; this is the packet-level
one: the distribution of sender-to-bottleneck-egress latency -- which
contains exactly the bottleneck queueing delay each protocol permits
-- sampled by tracing every data packet that crosses the bottleneck
during the Section 5.1 workload.  The ordering mirrors Fig. 16's
queue statistics, but expressed in the currency applications feel:
microseconds per packet, at the tail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro import units
from repro.analysis.reporting import format_table
from repro.experiments.fct_study import protocol_setup
from repro.sim.topology import dumbbell
from repro.sim.tracing import PacketTracer
from repro.workloads.generator import DynamicWorkload, WorkloadConfig

#: Reported percentiles.
PERCENTILES = (50, 90, 99, 99.9)


@dataclass(frozen=True)
class LatencyRow:
    """Packet-latency percentiles for one protocol."""

    protocol: str
    load: float
    packets: int
    latency_us: Dict[float, float]
    marked_fraction: float


def run(protocols: Sequence[str] = ("dcqcn", "timely",
                                    "patched_timely"),
        load: float = 0.8,
        duration: float = 0.2,
        drain: float = 0.1,
        capacity_gbps: float = 10.0,
        seed: int = 42,
        warmup: float = 0.02) -> List[LatencyRow]:
    """Trace the bottleneck during the dynamic workload."""
    rows = []
    for protocol in protocols:
        params, marker, sender_kwargs = protocol_setup(protocol,
                                                       capacity_gbps)
        net = dumbbell(10, link_gbps=capacity_gbps, marker=marker)
        config = WorkloadConfig(protocol=protocol, load=load,
                                duration=duration, seed=seed)
        workload = DynamicWorkload(net, config, params,
                                   **sender_kwargs)
        tracer = PacketTracer(net.sim, kinds=["data"],
                              max_events=2_000_000)
        tracer.attach(net.bottleneck_port)
        workload.run(drain_time=drain)

        latencies_us = np.array([
            units.seconds_to_us(latency)
            for latency in tracer.latencies(since=warmup)
        ])
        percentiles = {
            p: float(np.percentile(latencies_us, p))
            for p in PERCENTILES
        } if latencies_us.size else {p: float("nan")
                                     for p in PERCENTILES}
        rows.append(LatencyRow(
            protocol=protocol,
            load=load,
            packets=int(latencies_us.size),
            latency_us=percentiles,
            marked_fraction=tracer.marked_fraction()
            if protocol == "dcqcn" else 0.0))
    return rows


def report(rows: List[LatencyRow]) -> str:
    """Render the latency percentile table."""
    headers = ["protocol", "load", "packets"] \
        + [f"p{p:g} (us)" for p in PERCENTILES] + ["marked frac"]
    table = []
    for row in rows:
        table.append([row.protocol, row.load, row.packets]
                     + [row.latency_us[p] for p in PERCENTILES]
                     + [row.marked_fraction])
    return format_table(
        headers, table,
        title="Extension -- per-packet sender->bottleneck latency "
              "under the Section 5.1 workload")
