"""Experiment drivers: one module per paper figure (``figNN_*``) plus
the beyond-the-paper extensions (``ext_*``) and ablations; see
:mod:`repro.experiments.registry` for the full catalogue."""
