"""Figure 15: CDF of small-flow FCT at load 0.8.

A view over :mod:`repro.experiments.fct_study`: the per-protocol FCT
sample sets at the high-load point, rendered as CDF quantiles.  The
paper's qualitative claim -- TIMELY's distribution has a much heavier
tail than DCQCN's, with patched TIMELY's variability in between at the
extreme tail -- shows up in the upper quantiles.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.analysis.fct import fct_cdf
from repro.analysis.reporting import format_table
from repro.experiments.fct_study import (ProtocolRun, STUDY_PROTOCOLS,
                                         run_protocol)

#: CDF levels reported (fractions).
QUANTILES = (0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99)


def run(load: float = 0.8,
        protocols: Sequence[str] = STUDY_PROTOCOLS,
        **kwargs) -> Dict[str, ProtocolRun]:
    """One high-load run per protocol."""
    return {protocol: run_protocol(protocol, load, **kwargs)
            for protocol in protocols}


def quantile_rows(results: Dict[str, ProtocolRun]) -> List[List[object]]:
    """FCT (ms) at each CDF level, one row per protocol."""
    rows = []
    for protocol, run_result in results.items():
        fcts, _fractions = fct_cdf(run_result.small_fcts)
        row: List[object] = [protocol]
        for q in QUANTILES:
            row.append(float(np.percentile(fcts, q * 100)) * 1e3)
        rows.append(row)
    return rows


def report(results: Dict[str, ProtocolRun]) -> str:
    """Render the CDF quantile table."""
    headers = ["protocol"] + [f"p{int(q * 100)} (ms)" for q in QUANTILES]
    return format_table(headers, quantile_rows(results),
                        title="Fig. 15 -- small-flow FCT CDF at load 0.8")
