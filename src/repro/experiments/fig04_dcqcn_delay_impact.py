"""Figure 4: impact of feedback delay and flow count on DCQCN stability.

Fluid-model trajectories for delay x flow-count combinations.  At 4 us
every configuration settles; at 85 us the 10-flow system limit-cycles
while 2 and 64 flows remain stable -- the non-monotonic behaviour the
phase-margin analysis (Fig. 3) predicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro import units
from repro.analysis.reporting import format_table
from repro.core.fixedpoint.dcqcn import solve_fixed_point
from repro.core.fluid import dde
from repro.core.fluid.dcqcn import DCQCNFluidModel
from repro.core.params import DCQCNParams
from repro.obs import health as _health


@dataclass(frozen=True)
class StabilityRow:
    """Tail statistics of one fluid run."""

    delay_us: float
    num_flows: int
    queue_mean_kb: float
    queue_std_kb: float
    rate_std_gbps: float

    @property
    def oscillating(self) -> bool:
        """Limit-cycle detector: tail queue swings above 10% of mean."""
        if self.queue_mean_kb <= 0:
            return self.queue_std_kb > 1.0
        return self.queue_std_kb / self.queue_mean_kb > 0.10


def run(delays_us: Sequence[float] = (4.0, 85.0),
        flow_counts: Sequence[int] = (2, 10, 64),
        capacity_gbps: float = 40.0,
        duration: float = 0.08,
        dt: float = 1e-6) -> List[StabilityRow]:
    """Integrate the fluid model across the delay/flow grid.

    Uses the smooth-RED idealization (see
    :class:`~repro.core.fluid.dcqcn.DCQCNFluidModel`): at N=64 the
    fixed-point marking probability exceeds ``pmax``, and the physical
    profile's jump-to-1 would add cliff chatter unrelated to the
    delay-driven instability this figure isolates.
    """
    rows = []
    window = duration / 3.0
    health_on = _health.current_session() is not None
    for delay in delays_us:
        for n in flow_counts:
            params = DCQCNParams.paper_default(
                capacity_gbps=capacity_gbps, num_flows=n,
                tau_star_us=delay)
            observer = None
            monitor = None
            if health_on:
                # Stream the queue (state[0], packets) into the
                # oscillation detector against the Thm. 1 fixed
                # point; zero-cost otherwise (no monitor, observer
                # stays None and the integrator skips the hook).
                monitor = _health.HealthMonitor(
                    [_health.QueueOscillationDetector(
                        window=window,
                        q_star=solve_fixed_point(
                            params, extend_red=True).queue,
                        check_interval=window / 2.0)],
                    context=f"delay={delay}us,N={n}")
                observer = monitor.observe_state(queue_index=0)
            trace = dde.integrate(
                DCQCNFluidModel(params, extend_red=True), duration,
                dt=dt, record_stride=10, observer=observer)
            if monitor is not None:
                monitor.finalize()
            rate_std = trace.tail_std("rc[0]", window)
            rows.append(StabilityRow(
                delay_us=delay,
                num_flows=n,
                queue_mean_kb=units.packets_to_kb(
                    trace.tail_mean("q", window), params.mtu_bytes),
                queue_std_kb=units.packets_to_kb(
                    trace.tail_std("q", window), params.mtu_bytes),
                rate_std_gbps=units.pps_to_gbps(rate_std,
                                                params.mtu_bytes)))
    return rows


def report(rows: List[StabilityRow]) -> str:
    """Render the delay/flow stability grid."""
    return format_table(
        ["delay (us)", "N", "queue mean (KB)", "queue std (KB)",
         "rate std (Gbps)", "oscillating"],
        [[r.delay_us, r.num_flows, r.queue_mean_kb, r.queue_std_kb,
          r.rate_std_gbps, r.oscillating] for r in rows],
        title="Fig. 4 -- DCQCN fluid stability vs delay and N")
