"""Extension: the Fig. 18 PI marker validated packet-by-packet.

The paper demonstrates DCQCN+PI with fluid simulations (Fig. 18) and
notes a hardware implementation as future work.  Here the discrete
:class:`~repro.sim.piaqm.PIMarker` replaces RED at the simulator's
bottleneck egress -- the same 10 us-update controller PIE-style
hardware would run -- and the packet-level system reproduces the fluid
prediction: queue pinned to the reference for any flow count, fair
rates, marking probability settling at each N's Eq. 11 value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.convergence.metrics import jain_fairness
from repro.core.params import DCQCNParams, PIParams
from repro.obs.scrape import scrape_network
from repro.sim.monitors import QueueMonitor, RateMonitor
from repro.sim.piaqm import PIMarker
from repro.sim.topology import install_flow, single_switch


@dataclass(frozen=True)
class PISimRow:
    """Packet-level DCQCN+PI outcome for one flow count."""

    num_flows: int
    queue_mean_kb: float
    queue_ref_kb: float
    queue_std_kb: float
    jain_index: float
    p_final: float

    @property
    def pinned(self) -> bool:
        """Queue within 20% of the reference (packet noise included)."""
        return abs(self.queue_mean_kb - self.queue_ref_kb) \
            <= 0.2 * self.queue_ref_kb


def run(flow_counts: Sequence[int] = (2, 10),
        q_ref_kb: float = 100.0,
        capacity_gbps: float = 40.0,
        duration: float = 0.3,
        seed: int = 4) -> List[PISimRow]:
    """Packet-level DCQCN with a PI-marked bottleneck."""
    rows = []
    for n in flow_counts:
        params = DCQCNParams.paper_default(capacity_gbps=capacity_gbps,
                                           num_flows=n)
        pi = PIParams.for_dcqcn(q_ref_kb, mtu_bytes=params.mtu_bytes)
        marker = PIMarker(pi, params.mtu_bytes, seed=seed)
        net = single_switch(n, link_gbps=capacity_gbps, marker=marker)
        for i in range(n):
            install_flow(net, "dcqcn", f"s{i}", "recv", None, 0.0,
                         params)
        queue_mon = QueueMonitor(net.sim, net.bottleneck_port,
                                 interval=100e-6)
        rate_mon = RateMonitor(
            net.sim, {f"s{i}": net.senders[i] for i in range(n)},
            interval=500e-6)
        net.sim.run(until=duration)
        scrape_network(network=net)
        window = duration / 3.0
        tail_rates = []
        for i in range(n):
            times, series = rate_mon.series(f"s{i}")
            mask = times >= times[-1] - window
            tail_rates.append(float(np.mean(series[mask])))
        rows.append(PISimRow(
            num_flows=n,
            queue_mean_kb=queue_mon.tail_mean_bytes(window) / 1024,
            queue_ref_kb=q_ref_kb,
            queue_std_kb=queue_mon.tail_std_bytes(window) / 1024,
            jain_index=jain_fairness(tail_rates),
            p_final=marker.p))
    return rows


def report(rows: List[PISimRow]) -> str:
    """Render the packet-level PI validation table."""
    return format_table(
        ["N", "queue (KB)", "ref (KB)", "queue std", "Jain",
         "p (final)", "pinned"],
        [[r.num_flows, r.queue_mean_kb, r.queue_ref_kb,
          r.queue_std_kb, r.jain_index, r.p_final, r.pinned]
         for r in rows],
        title="Extension -- DCQCN + PI marker, packet level "
              "(Fig. 18 confirmed in simulation)")
