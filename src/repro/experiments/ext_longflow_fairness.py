"""Extension: long-flow fairness under churn.

The fairness theorems (1 and 5) speak about static flow sets; real
bottlenecks carry a handful of long flows *through* constant
short-flow churn.  This experiment pins four long-lived flows across
the dumbbell bottleneck, runs the Section 5.1 short-flow workload over
them, and samples the long flows' instantaneous rates: the time-mean
Jain index says how fair the protocol stays while perturbed, and the
index's dips say how badly churn knocks it off the fair point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.convergence.metrics import jain_fairness
from repro.experiments.fct_study import protocol_setup
from repro.obs.scrape import scrape_network
from repro.sim.monitors import RateMonitor
from repro.sim.topology import dumbbell, install_flow
from repro.workloads.generator import DynamicWorkload, WorkloadConfig


@dataclass(frozen=True)
class ChurnFairnessRow:
    """Long-flow fairness statistics for one protocol."""

    protocol: str
    load: float
    jain_mean: float
    jain_p10: float      #: the bad moments
    long_flow_share: float  #: long flows' fraction of the bottleneck


def run(protocols: Sequence[str] = ("dcqcn", "timely",
                                    "patched_timely"),
        n_long: int = 4,
        load: float = 0.4,
        duration: float = 0.2,
        capacity_gbps: float = 10.0,
        seed: int = 19,
        warmup: float = 0.04) -> List[ChurnFairnessRow]:
    """Four long flows under short-flow churn, per protocol."""
    rows = []
    for protocol in protocols:
        params, marker, sender_kwargs = protocol_setup(protocol,
                                                       capacity_gbps)
        net = dumbbell(10, link_gbps=capacity_gbps, marker=marker)
        long_senders = {}
        for i in range(n_long):
            sender, _ = install_flow(net, protocol, f"s{i}", f"r{i}",
                                     None, 0.0, params,
                                     **sender_kwargs)
            long_senders[f"long{i}"] = sender
        config = WorkloadConfig(protocol=protocol, load=load,
                                duration=duration, seed=seed)
        DynamicWorkload(net, config, params, **sender_kwargs)
        monitor = RateMonitor(net.sim, long_senders,
                              interval=500e-6)
        net.sim.run(until=duration)
        scrape_network(network=net)

        times = np.asarray(monitor.times)
        mask = times >= warmup
        series = np.array([monitor.rates[label]
                           for label in sorted(long_senders)])
        series = series[:, mask]
        jains = np.array([jain_fairness(series[:, k])
                          for k in range(series.shape[1])])
        mean_rates = series.mean(axis=1)
        rows.append(ChurnFairnessRow(
            protocol=protocol,
            load=load,
            jain_mean=float(jains.mean()),
            jain_p10=float(np.percentile(jains, 10)),
            long_flow_share=float(mean_rates.sum()
                                  / net.link_rate_bytes)))
    return rows


def report(rows: List[ChurnFairnessRow]) -> str:
    """Render the churn-fairness table."""
    return format_table(
        ["protocol", "load", "Jain mean", "Jain p10",
         "long-flow share"],
        [[r.protocol, r.load, r.jain_mean, r.jain_p10,
          r.long_flow_share] for r in rows],
        title="Extension -- long-flow fairness under short-flow churn")
