"""Figure 5: packet-level confirmation of the DCQCN instability.

Ten DCQCN flows on the validation topology with an extra 85 us of
feedback delay on the reverse path: the queue and rates oscillate
persistently, confirming the fluid model's negative phase margin.  The
companion low-delay run settles, isolating the delay as the cause.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro import units
from repro.analysis.reporting import format_table
from repro.core.fixedpoint.dcqcn import solve_fixed_point
from repro.core.params import DCQCNParams
from repro.obs import health as _health
from repro.obs.forensics import attach_flow_forensics
from repro.obs.scrape import scrape_network
from repro.sim.monitors import QueueMonitor
from repro.sim.red import REDMarker
from repro.sim.topology import install_flow, single_switch


@dataclass(frozen=True)
class SimStabilityRow:
    """Tail queue statistics of one packet-level run."""

    extra_delay_us: float
    num_flows: int
    queue_mean_kb: float
    queue_std_kb: float
    queue_peak_kb: float

    @property
    def coefficient_of_variation(self) -> float:
        if self.queue_mean_kb == 0:
            return float("inf")
        return self.queue_std_kb / self.queue_mean_kb


def run(extra_delays_us: Sequence[float] = (0.0, 85.0),
        num_flows: int = 10,
        capacity_gbps: float = 40.0,
        duration: float = 0.04,
        seed: int = 3,
        engine: str = "heap") -> List[SimStabilityRow]:
    """Packet-level runs with and without the extra feedback delay.

    ``engine`` selects the event-queue backend (``"heap"`` /
    ``"calendar"``, bit-identical results) or the tick-stepped
    ``"hybrid"`` fluid/packet mode, in which the ten long-lived flows
    are elephants stepped by the Eq. 4-7 fluid recurrence and the
    queue statistics come from the coupler's shared-queue trace
    (statistically compatible, not bit-identical; see
    ``docs/PERFORMANCE.md``).
    """
    if engine == "hybrid":
        return _run_hybrid(extra_delays_us, num_flows, capacity_gbps,
                           duration)
    rows = []
    window = duration / 2.0
    # The oscillation detector refuses to judge until its trailing
    # window clears the start-up transient (2x its own width), so it
    # gets a quarter of the run; the row statistics keep the half.
    health_window = duration / 4.0
    for extra_us in extra_delays_us:
        params = DCQCNParams.paper_default(capacity_gbps=capacity_gbps,
                                           num_flows=num_flows)
        marker = REDMarker(params.red, params.mtu_bytes, seed=seed)
        net = single_switch(num_flows, link_gbps=capacity_gbps,
                            marker=marker,
                            feedback_extra_delay=units.us(extra_us),
                            engine=engine)
        # Per-flow forensics (no-op unless --forensics); before
        # install_flow so flows land in this delay point's context.
        attach_flow_forensics(
            net, context=f"extra_delay={extra_us}us,N={num_flows}")
        for i in range(num_flows):
            install_flow(net, "dcqcn", f"s{i}", "recv", None, 0.0, params)
        monitor = QueueMonitor(net.sim, net.bottleneck_port,
                               interval=20e-6)
        # Health sampling rides the same 20 us cadence; q* is the
        # Thm. 1 queue converted to bytes.  No-op while telemetry is
        # off (attach returns None without installing a sampler).
        health = _health.attach_packet_health(
            net,
            [_health.QueueOscillationDetector(
                window=health_window,
                q_star=solve_fixed_point(params).queue
                * params.mtu_bytes,
                # Packet-level RED keeps a coarse sawtooth even when
                # stable (tail CoV ~0.2 vs ~1.5 unstable), so the
                # packet run judges with a wider band than the fluid
                # default.
                cov_threshold=0.5,
                check_interval=health_window / 2.0)],
            interval=20e-6,
            context=f"extra_delay={extra_us}us,N={num_flows}")
        net.sim.run(until=duration)
        scrape_network(network=net)
        if health is not None:
            health.finalize()
        _, occupancy = monitor.as_arrays()
        rows.append(SimStabilityRow(
            extra_delay_us=extra_us,
            num_flows=num_flows,
            queue_mean_kb=monitor.tail_mean_bytes(window) / 1024,
            queue_std_kb=monitor.tail_std_bytes(window) / 1024,
            queue_peak_kb=float(occupancy.max()) / 1024))
    return rows


def _run_hybrid(extra_delays_us: Sequence[float], num_flows: int,
                capacity_gbps: float,
                duration: float) -> List[SimStabilityRow]:
    """The same scenario with all ten flows as fluid elephants."""
    from repro.sim.hybrid import attach_drift_monitor, attach_hybrid

    rows = []
    window = duration / 2.0
    for extra_us in extra_delays_us:
        params = DCQCNParams.paper_default(capacity_gbps=capacity_gbps,
                                           num_flows=num_flows)
        net = single_switch(num_flows, link_gbps=capacity_gbps,
                            engine="hybrid")
        coupler = attach_hybrid(
            net, params, extra_feedback_delay=units.us(extra_us))
        # Hybrid-drift health rides the same 20 us cadence as the
        # packet runs' sampler; None while telemetry is off.
        drift = attach_drift_monitor(
            coupler, interval=20e-6, window=duration / 4.0,
            context=f"extra_delay={extra_us}us,N={num_flows}")
        net.sim.run(until=duration)
        if drift is not None:
            drift.finalize()
        _, occupancy = coupler.as_arrays()
        rows.append(SimStabilityRow(
            extra_delay_us=extra_us,
            num_flows=num_flows,
            queue_mean_kb=coupler.tail_mean_bytes(window) / 1024,
            queue_std_kb=coupler.tail_std_bytes(window) / 1024,
            queue_peak_kb=float(occupancy.max()) / 1024))
    return rows


def report(rows: List[SimStabilityRow]) -> str:
    """Render the packet-level stability comparison."""
    return format_table(
        ["extra delay (us)", "N", "queue mean (KB)", "queue std (KB)",
         "peak (KB)", "CoV"],
        [[r.extra_delay_us, r.num_flows, r.queue_mean_kb,
          r.queue_std_kb, r.queue_peak_kb,
          r.coefficient_of_variation] for r in rows],
        title="Fig. 5 -- DCQCN packet-level (in)stability vs feedback "
              "delay")
