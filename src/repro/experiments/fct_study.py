"""Shared machinery for the Section 5.1 FCT study (Figures 13-16).

One :func:`run_protocol` call simulates the Fig. 13 dumbbell under the
dynamic web-search workload for one protocol and load, returning FCT
statistics, the FCT sample set, and the bottleneck queue time series.
Figures 14 (FCT vs load), 15 (FCT CDF at load 0.8) and 16 (queue time
series at load 0.8) are all views over these results.

Protocol configurations follow the paper's defaults: DCQCN per [31]
with RED marking at the bottleneck egress; TIMELY per [21] with its
implementation's 64 KB per-burst pacing; patched TIMELY per Section
4.3 (``beta_band = 0.008``, 16 KB segments).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.fct import (FCTSummary, SMALL_FLOW_BYTES,
                                completed_fcts)
from repro.analysis.reporting import format_table
from repro.core.params import (DCQCNParams, DCTCPParams,
                               PatchedTimelyParams, TimelyParams)
from repro.perf import ResiliencePolicy, ResultCache, SweepRunner
from repro.sim.monitors import QueueMonitor
from repro.sim.red import REDMarker
from repro.sim.topology import dumbbell
from repro.workloads.generator import DynamicWorkload, WorkloadConfig

#: Protocols compared in Section 5.1.
STUDY_PROTOCOLS = ("dcqcn", "timely", "patched_timely")


@dataclass
class ProtocolRun:
    """Everything measured in one (protocol, load) simulation."""

    protocol: str
    load: float
    summary: FCTSummary
    small_fcts: List[float]
    queue_times: np.ndarray = field(repr=False)
    queue_bytes: np.ndarray = field(repr=False)
    completed: int = 0
    installed: int = 0
    utilization: float = 0.0

    @property
    def completion_fraction(self) -> float:
        if self.installed == 0:
            return 0.0
        return self.completed / self.installed


def protocol_setup(protocol: str, capacity_gbps: float):
    """Default (params, marker, sender_kwargs) for each protocol."""
    if protocol == "dcqcn":
        params = DCQCNParams.paper_default(capacity_gbps=capacity_gbps,
                                           num_flows=10)
        marker = REDMarker(params.red, params.mtu_bytes, seed=11)
        return params, marker, {}
    if protocol == "timely":
        params = TimelyParams.paper_default(capacity_gbps=capacity_gbps,
                                            segment_kb=64.0)
        return params, None, {"pacing": "burst"}
    if protocol == "patched_timely":
        params = PatchedTimelyParams.paper_default(
            capacity_gbps=capacity_gbps)
        return params, None, {"pacing": "burst"}
    if protocol == "dctcp":
        # The window-based baseline, with its native step marking.
        params = DCTCPParams()
        marker = REDMarker(params.step_red(), params.mtu_bytes,
                           seed=11)
        return params, marker, {}
    raise ValueError(f"unknown protocol {protocol!r}")


def run_protocol(protocol: str, load: float,
                 duration: float = 0.25,
                 drain: float = 0.15,
                 capacity_gbps: float = 10.0,
                 n_pairs: int = 10,
                 seed: int = 42,
                 warmup: float = 0.02) -> ProtocolRun:
    """Simulate one protocol at one load on the dumbbell."""
    params, marker, sender_kwargs = protocol_setup(protocol,
                                                   capacity_gbps)
    net = dumbbell(n_pairs, link_gbps=capacity_gbps, marker=marker)
    config = WorkloadConfig(protocol=protocol, load=load,
                            duration=duration, seed=seed)
    workload = DynamicWorkload(net, config, params, **sender_kwargs)
    monitor = QueueMonitor(net.sim, net.bottleneck_port,
                           interval=100e-6)
    workload.run(drain_time=drain)

    small = completed_fcts(workload.completed_flows,
                           max_bytes=SMALL_FLOW_BYTES,
                           skip_before=warmup)
    times, occupancy = monitor.as_arrays()
    return ProtocolRun(
        protocol=protocol,
        load=load,
        summary=FCTSummary.from_fcts(small),
        small_fcts=small,
        queue_times=times,
        queue_bytes=occupancy,
        completed=len(workload.completed_flows),
        installed=len(workload.flows),
        utilization=net.bottleneck_port.bytes_transmitted
        / (net.link_rate_bytes * duration))


def run_load_sweep(loads: Sequence[float] = (0.2, 0.4, 0.6, 0.8),
                   protocols: Sequence[str] = STUDY_PROTOCOLS,
                   workers: Optional[int] = None,
                   cache: Optional[ResultCache] = None,
                   resilience: Optional[ResiliencePolicy] = None,
                   **kwargs) -> Dict[str, List[ProtocolRun]]:
    """Figure 14's grid: every protocol at every load.

    The (protocol, load) cells are independent simulations, each
    deterministically seeded, so they fan out over ``workers``
    processes (and memoize through ``cache``) with results identical
    to the serial nested loop.  ``resilience`` adds per-cell
    timeouts/retries, quarantine, and the crash-surviving journal
    behind ``repro run --resume`` -- this is the longest sweep in the
    reproduction, and an interrupted run resumes without recomputing
    finished (protocol, load) cells.
    """
    runner = SweepRunner(workers=workers, cache=cache,
                         experiment_id="fct_study",
                         resilience=resilience)
    cells = [{"protocol": protocol, "load": load, **kwargs}
             for protocol in protocols for load in loads]
    results = runner.map(run_protocol, cells)
    grouped: Dict[str, List[ProtocolRun]] = {}
    for cell, result in zip(cells, results):
        grouped.setdefault(cell["protocol"], []).append(result)
    return grouped


def report_fct_vs_load(results: Dict[str, List[ProtocolRun]]) -> str:
    """Fig. 14 rows: median and 90th-percentile small-flow FCT."""
    rows: List[List[object]] = []
    for protocol, runs in results.items():
        for run in runs:
            rows.append([protocol, run.load,
                         run.summary.median_s * 1e3,
                         run.summary.p90_s * 1e3,
                         run.summary.p99_s * 1e3,
                         run.summary.count,
                         run.completion_fraction])
    return format_table(
        ["protocol", "load", "median FCT (ms)", "p90 FCT (ms)",
         "p99 FCT (ms)", "small flows", "done frac"],
        rows,
        title="Fig. 14 -- small-flow FCT vs load (dumbbell, "
              "web-search sizes)")


def report_queue_stats(runs: Sequence[ProtocolRun]) -> str:
    """Fig. 16 rows: bottleneck-queue distribution at one load."""
    rows = []
    for run in runs:
        occupancy_kb = run.queue_bytes / 1024.0
        rows.append([run.protocol, run.load,
                     float(np.percentile(occupancy_kb, 50)),
                     float(np.percentile(occupancy_kb, 90)),
                     float(np.percentile(occupancy_kb, 99)),
                     float(occupancy_kb.max()),
                     float(occupancy_kb.std())])
    return format_table(
        ["protocol", "load", "q p50 (KB)", "q p90 (KB)", "q p99 (KB)",
         "q max (KB)", "q std (KB)"],
        rows,
        title="Fig. 16 -- bottleneck queue at the studied load")
