"""Extension: DCQCN on a leaf-spine fabric (future-work topology).

A rack-rotation permutation -- every host sends a fixed-size transfer
to its counterpart on the next rack, so all traffic crosses the spine
-- runs on fabrics with one and with two spines.  With a single spine
the uplinks are 4:1 oversubscribed and DCQCN must arbitrate them;
doubling the spines doubles the bisection and roughly halves the
completion times, while per-flow rates stay fair within each
contended uplink.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.params import DCQCNParams
from repro.obs.scrape import scrape_network
from repro.sim.leaf_spine import cross_rack_pairs, leaf_spine
from repro.sim.red import REDMarker
from repro.sim.topology import install_flow


@dataclass(frozen=True)
class LeafSpineRow:
    """Permutation-transfer outcome on one fabric configuration."""

    n_spines: int
    flows: int
    completed: int
    median_fct_ms: float
    p99_fct_ms: float
    spine_imbalance: float  #: max/mean bytes across spine uplinks


def run(spine_counts: Sequence[int] = (1, 2),
        n_leaves: int = 4,
        hosts_per_leaf: int = 4,
        transfer_kb: float = 512.0,
        link_gbps: float = 10.0,
        duration: float = 0.1,
        seed: int = 31) -> List[LeafSpineRow]:
    """Run the rack-rotation permutation per spine count."""
    rows = []
    for n_spines in spine_counts:
        params = DCQCNParams.paper_default(capacity_gbps=link_gbps,
                                           num_flows=hosts_per_leaf)
        counter = [0]

        def make_marker():
            counter[0] += 1
            return REDMarker(params.red, params.mtu_bytes,
                             seed=seed + counter[0])

        net = leaf_spine(n_leaves=n_leaves, n_spines=n_spines,
                         hosts_per_leaf=hosts_per_leaf,
                         host_gbps=link_gbps, spine_gbps=link_gbps,
                         marker_factory=make_marker)
        done = []
        pairs = cross_rack_pairs(n_leaves, hosts_per_leaf)
        for src, dst in pairs:
            install_flow(net, "dcqcn", src, dst,
                         int(transfer_kb * 1024), 0.0, params,
                         on_complete=done.append)
        net.sim.run(until=duration)
        scrape_network(network=net)

        fcts = np.array([f.fct for f in done]) * 1e3
        uplink_bytes = []
        for name, switch in net.switches.items():
            if not name.startswith("leaf"):
                continue
            for neighbour, port in switch.ports.items():
                if neighbour.startswith("spine"):
                    uplink_bytes.append(port.bytes_transmitted)
        uplink_bytes = np.asarray(uplink_bytes, dtype=float)
        imbalance = float(uplink_bytes.max() / uplink_bytes.mean()) \
            if uplink_bytes.mean() > 0 else float("nan")
        rows.append(LeafSpineRow(
            n_spines=n_spines,
            flows=len(pairs),
            completed=len(done),
            median_fct_ms=float(np.median(fcts)) if done else
            float("nan"),
            p99_fct_ms=float(np.percentile(fcts, 99)) if done else
            float("nan"),
            spine_imbalance=imbalance))
    return rows


def report(rows: List[LeafSpineRow]) -> str:
    """Render the fabric-scaling table."""
    return format_table(
        ["spines", "flows", "completed", "median FCT (ms)",
         "p99 FCT (ms)", "uplink max/mean"],
        [[r.n_spines, r.flows, r.completed, r.median_fct_ms,
          r.p99_fct_ms, r.spine_imbalance] for r in rows],
        title="Extension -- DCQCN on a leaf-spine fabric "
              "(rack-rotation permutation)")
