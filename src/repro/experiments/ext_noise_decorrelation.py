"""Extension: testing the burst-noise de-correlation conjecture.

Sweeps the measurement-noise amplitude on the Fig. 9(c) scenario (7 vs
3 Gbps starts).  Plain TIMELY freezes the asymmetry (Theorem 4); with
burst-scale noise the flows drift toward the fair share -- the fluid
counterpart of the paper's Fig. 10(a) observation and its unproven
conjecture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro import units
from repro.analysis.reporting import format_table
from repro.core.convergence.metrics import jain_fairness, max_min_ratio
from repro.core.fluid import dde
from repro.core.fluid.noisy_timely import NoisyTimelyFluidModel
from repro.core.fluid.timely import TimelyFluidModel
from repro.core.params import TimelyParams


@dataclass(frozen=True)
class NoiseRow:
    """Tail operating point for one noise amplitude."""

    noise_packets: float
    rates_gbps: "list[float]"
    jain_index: float
    max_min: float


def run(noise_amplitudes: Sequence[float] = (0.0, 4.0, 16.0, 64.0),
        capacity_gbps: float = 10.0,
        duration: float = 0.15,
        seed: int = 8) -> List[NoiseRow]:
    """Integrate the 7/3 scenario per noise amplitude."""
    rows = []
    params = TimelyParams.paper_default(capacity_gbps=capacity_gbps,
                                        num_flows=2)
    mtu = params.mtu_bytes
    initial = [units.gbps_to_pps(7.0, mtu),
               units.gbps_to_pps(3.0, mtu)]
    window = duration / 5.0
    for amplitude in noise_amplitudes:
        if amplitude == 0.0:
            model = TimelyFluidModel(params, initial_rates=initial)
        else:
            model = NoisyTimelyFluidModel(
                params, amplitude, seed=seed, initial_rates=initial)
        trace = dde.integrate(model, duration, dt=1e-6,
                              record_stride=50)
        finals = [trace.tail_mean(f"r[{i}]", window) for i in range(2)]
        rows.append(NoiseRow(
            noise_packets=amplitude,
            rates_gbps=[units.pps_to_gbps(r, mtu) for r in finals],
            jain_index=jain_fairness(finals),
            max_min=max_min_ratio(finals)))
    return rows


def report(rows: List[NoiseRow]) -> str:
    """Render the noise sweep."""
    return format_table(
        ["noise (pkts)", "final rates (Gbps)", "Jain", "max/min"],
        [[r.noise_packets,
          "/".join(f"{g:.2f}" for g in r.rates_gbps),
          r.jain_index, r.max_min] for r in rows],
        title="Extension -- measurement noise de-correlates TIMELY "
              "(the Fig. 10a conjecture, fluid form)")
