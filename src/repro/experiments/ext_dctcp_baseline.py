"""Extension: the DCTCP baseline on the Section 5.1 workload.

DCQCN combines "elements of DCTCP and QCN" (Section 3); DCTCP itself
could not be used in the RoCE NICs the paper targets (no TCP stack on
the NIC, per-packet ACKs too expensive), but as the protocol DCQCN's
alpha estimator comes from, it is the natural window-based baseline.
This experiment runs DCTCP next to DCQCN on the same dumbbell
workload and contrasts:

* **queue control** -- DCTCP's step marking at K=65 packets holds the
  queue near K (self-clocked windows cannot overshoot by more than
  one window), generally tighter than DCQCN's RED band;
* **the cost** -- per-packet ACK traffic on the reverse path, which
  is exactly what DCQCN's CNP aggregation removes ("Practical
  concerns", Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.analysis.reporting import format_table
from repro.experiments.fct_study import ProtocolRun, run_protocol


@dataclass(frozen=True)
class BaselineRow:
    """FCT and queue summary for one protocol at one load."""

    protocol: str
    load: float
    median_ms: float
    p99_ms: float
    queue_p90_kb: float
    queue_max_kb: float


def run(loads: Sequence[float] = (0.4, 0.8),
        protocols: Sequence[str] = ("dcqcn", "dctcp"),
        **kwargs) -> List[BaselineRow]:
    """Run the dumbbell study for DCQCN and the DCTCP baseline."""
    rows = []
    for protocol in protocols:
        for load in loads:
            result: ProtocolRun = run_protocol(protocol, load,
                                               **kwargs)
            occupancy_kb = result.queue_bytes / 1024.0
            rows.append(BaselineRow(
                protocol=protocol,
                load=load,
                median_ms=result.summary.median_s * 1e3,
                p99_ms=result.summary.p99_s * 1e3,
                queue_p90_kb=float(np.percentile(occupancy_kb, 90)),
                queue_max_kb=float(occupancy_kb.max())))
    return rows


def report(rows: List[BaselineRow]) -> str:
    """Render the DCQCN-vs-DCTCP comparison."""
    return format_table(
        ["protocol", "load", "median FCT (ms)", "p99 FCT (ms)",
         "queue p90 (KB)", "queue max (KB)"],
        [[r.protocol, r.load, r.median_ms, r.p99_ms, r.queue_p90_kb,
          r.queue_max_kb] for r in rows],
        title="Extension -- DCQCN vs the DCTCP (window-based) "
              "baseline")
