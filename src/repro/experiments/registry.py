"""Registry mapping experiment ids to their run/report entry points.

Lets the benchmark harness and the examples enumerate everything the
reproduction covers::

    from repro.experiments.registry import EXPERIMENTS
    result = EXPERIMENTS["fig04"].run()
    print(EXPERIMENTS["fig04"].report(result))

Every registered ``run`` uniformly accepts ``workers=`` and ``cache=``
(see :mod:`repro.perf`): experiments whose grids fan out use them,
and the rest silently ignore them, so callers (the CLI, the bench
harness) never need per-experiment special cases.

Every run also accepts ``telemetry=`` -- a
:class:`~repro.obs.telemetry.Telemetry` bundle or a directory path.
When given, the run executes inside ``telemetry.activate()``: the
bundle's metrics registry becomes the process-wide active one (so the
engine, DDE integrator, sweep runner and result cache publish into
it), spans and warnings stream into the run's JSONL log, and the
final metric snapshot is exported on completion.  ``telemetry=None``
(the default) leaves the inert null registry installed and costs
nothing.
"""

from __future__ import annotations

import functools
import inspect
from dataclasses import dataclass
from typing import Callable, Dict

from repro.experiments import (ablations,
                               ext_burst_mitigation,
                               ext_convergence_time,
                               ext_dctcp_baseline,
                               ext_fault_resilience,
                               ext_feedback_priority,
                               ext_incast_pfc,
                               ext_latency_cdf,
                               ext_leaf_spine,
                               ext_longflow_fairness,
                               ext_noise_decorrelation,
                               ext_parking_lot,
                               ext_pi_switch_sim,
                               ext_stability_map,
                               fig02_dcqcn_validation,
                               fig03_dcqcn_phase_margin,
                               fig04_dcqcn_delay_impact,
                               fig05_dcqcn_sim_instability,
                               fig08_timely_validation,
                               fig09_timely_unfairness,
                               fig10_burst_pacing,
                               fig11_patched_phase_margin,
                               fig12_patched_timely,
                               fig15_fct_cdf,
                               fig17_ingress_marking,
                               fig18_dcqcn_pi,
                               fig19_timely_pi,
                               fig20_jitter,
                               fct_study)


#: Keyword arguments every registered ``run`` accepts uniformly.
#: ``resilience`` (a :class:`~repro.perf.resilience.ResiliencePolicy`)
#: rides along with the perf kwargs: sweep-backed experiments thread
#: it into their :class:`~repro.perf.SweepRunner` for timeouts,
#: retries, quarantine and ``--resume`` journaling; the rest drop it.
#: ``backend`` (a :class:`~repro.perf.backend.SweepBackend`) likewise
#: selects *where* cells execute -- note most callers instead install
#: an ambient default via :func:`repro.perf.backend.use_backend`,
#: which reaches every runner without threading a kwarg through.
#: ``engine`` picks the event-queue backend for packet-level
#: experiments (:data:`repro.sim.topology.ENGINES`); fluid-only
#: experiments drop it.
PERF_KWARGS = ("workers", "cache", "resilience", "backend", "engine")

#: Uniform observability kwarg, handled by the registry wrapper
#: itself (experiments never see it).
TELEMETRY_KWARG = "telemetry"


def _accepts_keyword(fn: Callable, name: str) -> bool:
    """Whether calling ``fn(..., name=...)`` could succeed."""
    try:
        parameters = inspect.signature(fn).parameters
    except (TypeError, ValueError):  # builtins, odd callables
        return True
    for parameter in parameters.values():
        if parameter.kind == parameter.VAR_KEYWORD:
            return True
        if parameter.name == name and parameter.kind in (
                parameter.POSITIONAL_OR_KEYWORD,
                parameter.KEYWORD_ONLY):
            return True
    return False


def _uniform_run(fn: Callable[..., object]) -> Callable[..., object]:
    """Wrap ``fn`` so ``workers=``/``cache=`` are always accepted.

    Experiments with parallel/cached sweeps receive them; the rest
    (single simulations, closed-form computations) have them dropped.
    """
    unsupported = tuple(name for name in PERF_KWARGS
                        if not _accepts_keyword(fn, name))
    if not unsupported:
        return fn

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        for name in unsupported:
            kwargs.pop(name, None)
        return fn(*args, **kwargs)
    return wrapper


def _telemetry_run(fn: Callable[..., object],
                   experiment_id: str) -> Callable[..., object]:
    """Wrap ``fn`` to honour the uniform ``telemetry=`` kwarg.

    ``telemetry`` may be a :class:`~repro.obs.telemetry.Telemetry`
    bundle, a directory path (a bundle is created there), or None
    (the default -- zero overhead, no wrapping work beyond one
    ``pop``).  The remaining kwargs are recorded as the run's
    parameters in the run log, keyed by the same content hash the
    result cache uses.
    """
    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        telemetry = kwargs.pop(TELEMETRY_KWARG, None)
        if telemetry is None:
            return fn(*args, **kwargs)
        from repro.obs.telemetry import Telemetry
        bundle = Telemetry.ensure(telemetry, experiment=experiment_id)
        from repro.obs import forensics as _forensics
        if _forensics.requested() and bundle.forensics is None:
            bundle.forensics = _forensics.FlowLedger()
        params = {key: value for key, value in kwargs.items()
                  if key not in PERF_KWARGS}
        with bundle.activate(params=params):
            return fn(*args, **kwargs)
    return wrapper


@dataclass(frozen=True)
class Experiment:
    """One reproducible paper artefact."""

    experiment_id: str
    description: str
    run: Callable[..., object]
    report: Callable[[object], str]

    def __post_init__(self):
        object.__setattr__(
            self, "run",
            _telemetry_run(_uniform_run(self.run), self.experiment_id))


def _fig03_run(**kwargs):
    return fig03_dcqcn_phase_margin.panel_a(**kwargs)


def _fig03_report(sweeps):
    return fig03_dcqcn_phase_margin.report(
        sweeps, "Fig. 3(a) -- DCQCN phase margin vs N and delay")


def _fig12_run(workers=None, cache=None, resilience=None,
               backend=None, **kwargs):
    # The flow sweep is a handful of short fluid integrations; it
    # stays serial, so the uniform perf kwargs are accepted and
    # ignored here.
    del workers, cache, resilience, backend
    return [fig12_patched_timely.run_asymmetric()] \
        + fig12_patched_timely.run_flow_sweep(**kwargs)


def _fig14_run(**kwargs):
    return fct_study.run_load_sweep(**kwargs)


def _fig16_run(workers=None, cache=None, resilience=None,
               backend=None, **kwargs):
    from repro.perf import SweepRunner
    runner = SweepRunner(workers=workers, cache=cache,
                         experiment_id="fig16",
                         resilience=resilience, backend=backend)
    cells = [{"protocol": protocol, "load": 0.8, **kwargs}
             for protocol in fct_study.STUDY_PROTOCOLS]
    return runner.map(fct_study.run_protocol, cells)


EXPERIMENTS: Dict[str, Experiment] = {
    exp.experiment_id: exp for exp in [
        Experiment("fig02", "DCQCN fluid vs packet simulation",
                   fig02_dcqcn_validation.run,
                   fig02_dcqcn_validation.report),
        Experiment("fig03", "DCQCN phase margin sweeps",
                   _fig03_run, _fig03_report),
        Experiment("fig04", "delay/flow impact on DCQCN stability",
                   fig04_dcqcn_delay_impact.run,
                   fig04_dcqcn_delay_impact.report),
        Experiment("fig05", "packet-level DCQCN instability",
                   fig05_dcqcn_sim_instability.run,
                   fig05_dcqcn_sim_instability.report),
        Experiment("fig08", "TIMELY fluid vs packet simulation",
                   fig08_timely_validation.run,
                   fig08_timely_validation.report),
        Experiment("fig09", "TIMELY unfairness vs initial conditions",
                   fig09_timely_unfairness.run,
                   fig09_timely_unfairness.report),
        Experiment("fig10", "per-burst pacing effects",
                   fig10_burst_pacing.run, fig10_burst_pacing.report),
        Experiment("fig11", "patched TIMELY phase margin vs N",
                   fig11_patched_phase_margin.run,
                   fig11_patched_phase_margin.report),
        Experiment("fig12", "patched TIMELY convergence/stability",
                   _fig12_run, fig12_patched_timely.report),
        Experiment("fig14", "small-flow FCT vs load",
                   _fig14_run, fct_study.report_fct_vs_load),
        Experiment("fig15", "FCT CDF at load 0.8",
                   fig15_fct_cdf.run, fig15_fct_cdf.report),
        Experiment("fig16", "bottleneck queue at load 0.8",
                   _fig16_run, fct_study.report_queue_stats),
        Experiment("fig17", "egress vs ingress marking",
                   fig17_ingress_marking.run,
                   fig17_ingress_marking.report),
        Experiment("fig18", "DCQCN + PI controller",
                   fig18_dcqcn_pi.run, fig18_dcqcn_pi.report),
        Experiment("fig19", "patched TIMELY + host PI controller",
                   fig19_timely_pi.run, fig19_timely_pi.report),
        Experiment("fig20", "feedback jitter resilience",
                   fig20_jitter.run, fig20_jitter.report),
        # -- beyond the paper: its Section 7 future work + ablations --
        Experiment("ext_parking_lot",
                   "multi-bottleneck parking lot (future work)",
                   ext_parking_lot.run, ext_parking_lot.report),
        Experiment("ext_incast_pfc",
                   "incast with finite buffers and PFC (future work)",
                   ext_incast_pfc.run, ext_incast_pfc.report),
        Experiment("ext_pi_sim",
                   "packet-level DCQCN + PI marker (future work)",
                   ext_pi_switch_sim.run, ext_pi_switch_sim.report),
        Experiment("ext_burst_mitigation",
                   "sub-line-rate bursts vs the 64KB incast",
                   ext_burst_mitigation.run,
                   ext_burst_mitigation.report),
        Experiment("ext_dctcp",
                   "DCQCN vs the window-based DCTCP baseline",
                   ext_dctcp_baseline.run, ext_dctcp_baseline.report),
        Experiment("ext_leaf_spine",
                   "DCQCN on a leaf-spine fabric (future work)",
                   ext_leaf_spine.run, ext_leaf_spine.report),
        Experiment("ext_faults",
                   "CNP loss + link flaps: fault resilience sweep",
                   ext_fault_resilience.run, ext_fault_resilience.report),
        Experiment("ext_feedback_priority",
                   "prioritizing feedback packets (Section 5.2)",
                   ext_feedback_priority.run,
                   ext_feedback_priority.report),
        Experiment("ext_convergence",
                   "re-convergence time after a flow joins",
                   ext_convergence_time.run,
                   ext_convergence_time.report),
        Experiment("ext_stability_map",
                   "full DCQCN (N, delay) stability map",
                   ext_stability_map.run, ext_stability_map.report),
        Experiment("ext_noise",
                   "burst-noise de-correlation conjecture (fluid)",
                   ext_noise_decorrelation.run,
                   ext_noise_decorrelation.report),
        Experiment("ext_latency",
                   "per-packet latency CDF under the 5.1 workload",
                   ext_latency_cdf.run, ext_latency_cdf.report),
        Experiment("ext_longflow",
                   "long-flow fairness under short-flow churn",
                   ext_longflow_fairness.run,
                   ext_longflow_fairness.report),
        Experiment("abl_cnp_timer", "ablation: DCQCN CNP timer",
                   ablations.cnp_timer, ablations.report_cnp_timer),
        Experiment("abl_ewma_gain", "ablation: DCQCN EWMA gain g",
                   ablations.ewma_gain, ablations.report_ewma_gain),
        Experiment("abl_weight", "ablation: Eq. 30 weight ramp width",
                   ablations.weight_halfwidth,
                   ablations.report_weight_halfwidth),
        Experiment("abl_gradient_clamp",
                   "ablation: TIMELY gradient clamp",
                   ablations.gradient_clamp,
                   ablations.report_gradient_clamp),
    ]
}
