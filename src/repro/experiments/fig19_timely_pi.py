"""Figure 19: patched TIMELY with host-side PI controllers.

Each host integrates its own delay error into an internal variable
``p_i`` that replaces the queue-excess feedback of Eq. 29.  The queue
is controlled to the reference (300 KB in the paper), but the rate
split is whatever the per-host integrators happened to accumulate --
bounded delay *without* fairness, the delay-based half of Theorem 6.
The asymmetry is seeded as in Fig. 9(b): the second flow starts late.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.analysis.reporting import format_table
from repro.core.convergence.metrics import jain_fairness, max_min_ratio
from repro.core.fluid import dde
from repro.core.fluid.pi import PatchedTimelyPIFluidModel
from repro.core.params import PatchedTimelyParams, PIParams


@dataclass(frozen=True)
class TimelyPIResult:
    """Tail state of the two-flow PI experiment."""

    queue_mean_kb: float
    queue_ref_kb: float
    queue_std_kb: float
    rates_gbps: "list[float]"
    p_values: "list[float]"

    @property
    def queue_pinned(self) -> bool:
        """Queue within 15% of the reference (it oscillates mildly)."""
        return abs(self.queue_mean_kb - self.queue_ref_kb) \
            <= 0.15 * self.queue_ref_kb

    @property
    def jain_index(self) -> float:
        return jain_fairness(self.rates_gbps)

    @property
    def max_min(self) -> float:
        return max_min_ratio(self.rates_gbps)


def run(q_ref_kb: float = 300.0,
        capacity_gbps: float = 10.0,
        late_start: float = 0.05,
        duration: float = 0.7,
        dt: float = 1e-6) -> TimelyPIResult:
    """Two flows, the second starting ``late_start`` seconds in."""
    patched = PatchedTimelyParams.paper_default(
        capacity_gbps=capacity_gbps, num_flows=2)
    mtu = patched.base.mtu_bytes
    pi = PIParams.for_timely(q_ref_kb)
    fair = patched.base.fair_share
    model = PatchedTimelyPIFluidModel(
        patched, pi, initial_rates=[fair, fair],
        start_times=[0.0, late_start])
    trace = dde.integrate(model, duration, dt=dt, record_stride=50)
    window = duration / 5.0
    rates = [units.pps_to_gbps(trace.tail_mean(f"r[{i}]", window), mtu)
             for i in range(2)]
    return TimelyPIResult(
        queue_mean_kb=units.packets_to_kb(trace.tail_mean("q", window),
                                          mtu),
        queue_ref_kb=q_ref_kb,
        queue_std_kb=units.packets_to_kb(trace.tail_std("q", window),
                                         mtu),
        rates_gbps=rates,
        p_values=[trace.tail_mean(f"p[{i}]", window) for i in range(2)])


def report(result: TimelyPIResult) -> str:
    """Render the delay-without-fairness outcome."""
    return format_table(
        ["queue (KB)", "ref (KB)", "queue std", "rates (Gbps)",
         "p values", "Jain", "max/min", "pinned"],
        [[result.queue_mean_kb, result.queue_ref_kb,
          result.queue_std_kb,
          "/".join(f"{g:.2f}" for g in result.rates_gbps),
          "/".join(f"{p:.3f}" for p in result.p_values),
          result.jain_index, result.max_min, result.queue_pinned]],
        title="Fig. 19 -- patched TIMELY + host PI: delay bounded, "
              "fairness lost")
