"""Ablations over the design choices DESIGN.md calls out.

Each function isolates one knob and quantifies its effect with the
analytic toolkit or short simulations:

* :func:`cnp_timer` -- DCQCN's CNP generation timer ``tau`` sets the
  multiplicative-decrease cadence; faster CNPs mark more windows and
  shift the Eq. 11 fixed point and the phase margin.
* :func:`ewma_gain` -- DCQCN's ``g`` trades how fast ``alpha`` tracks
  congestion against the depth of each cut (Theorem 2's contraction
  is ``1 - alpha/2``).
* :func:`weight_halfwidth` -- the Eq. 30 ramp width: the paper's 1/4
  versus a sharper/softer transition, measured as patched TIMELY's
  convergence behaviour (the original protocol is the hard-switch
  limit ``halfwidth -> 0``).
* :func:`gradient_clamp` -- the simulator's TIMELY gradient clamp:
  with it, burst noise costs bounded rate cuts; without it, a single
  polluted sample can floor a flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro import units
from repro.analysis.reporting import format_table
from repro.core.fixedpoint.dcqcn import solve_fixed_point
from repro.core.fluid import dde
from repro.core.fluid.patched_timely import PatchedTimelyFluidModel
from repro.core.params import (DCQCNParams, PatchedTimelyParams,
                               TimelyParams)
from repro.core.stability.dcqcn_margin import dcqcn_phase_margin
from repro.core.convergence.discrete import (DiscreteDCQCN,
                                             contraction_rate)
from repro.obs.scrape import scrape_network
from repro.sim.monitors import QueueMonitor, RateMonitor
from repro.sim.topology import install_flow, single_switch
import dataclasses


@dataclass(frozen=True)
class AblationRow:
    """A generic (setting, metrics...) ablation record."""

    setting: str
    metrics: "tuple"


def cnp_timer(taus_us: Sequence[float] = (25.0, 50.0, 100.0),
              num_flows: int = 10,
              tau_star_us: float = 55.0) -> List[AblationRow]:
    """Sweep the CNP timer: fixed point and stability margin."""
    rows = []
    for tau_us in taus_us:
        params = DCQCNParams.paper_default(
            num_flows=num_flows, tau_star_us=tau_star_us).replace(
                tau=units.us(tau_us),
                tau_prime=units.us(max(tau_us + 5.0, 55.0)))
        fp = solve_fixed_point(params, extend_red=True)
        margin = dcqcn_phase_margin(params).margin_deg
        rows.append(AblationRow(
            setting=f"tau={tau_us:g}us",
            metrics=(fp.p, units.packets_to_kb(fp.queue), fp.alpha,
                     margin)))
    return rows


def report_cnp_timer(rows: List[AblationRow]) -> str:
    return format_table(
        ["CNP timer", "p*", "q* (KB)", "alpha*", "margin (deg)"],
        [[r.setting, *r.metrics] for r in rows],
        title="Ablation -- DCQCN CNP timer tau")


def ewma_gain(gains: Sequence[float] = (1 / 64, 1 / 256, 1 / 1024),
              num_flows: int = 2) -> List[AblationRow]:
    """Sweep DCQCN's g: contraction speed vs steady oscillation."""
    rows = []
    for g in gains:
        params = DCQCNParams.paper_default(num_flows=num_flows).replace(
            g=g)
        mtu = params.mtu_bytes
        model = DiscreteDCQCN(
            params,
            initial_rates=[units.gbps_to_pps(30, mtu),
                           units.gbps_to_pps(10, mtu)])
        cycles = model.run_cycles(40)
        spreads = [c.rate_spread for c in cycles]
        alphas = [float(np.mean(c.alphas)) for c in cycles]
        margin = dcqcn_phase_margin(params).margin_deg
        rows.append(AblationRow(
            setting=f"g=1/{round(1 / g)}",
            metrics=(contraction_rate(spreads), alphas[-1], margin)))
    return rows


def report_ewma_gain(rows: List[AblationRow]) -> str:
    return format_table(
        ["g", "contraction/cycle", "alpha tail", "margin (deg)"],
        [[r.setting, *r.metrics] for r in rows],
        title="Ablation -- DCQCN EWMA gain g (Theorem 2 speed vs "
              "cut depth)")


def weight_halfwidth(halfwidths: Sequence[float] = (0.05, 0.25, 1.0),
                     duration: float = 0.08) -> List[AblationRow]:
    """Sweep the Eq. 30 ramp width on the 7/3 Gbps fluid scenario."""
    rows = []
    for halfwidth in halfwidths:
        patched = dataclasses.replace(
            PatchedTimelyParams.paper_default(num_flows=2),
            weight_slope_halfwidth=halfwidth)
        mtu = patched.base.mtu_bytes
        model = PatchedTimelyFluidModel(
            patched,
            initial_rates=[units.gbps_to_pps(7, mtu),
                           units.gbps_to_pps(3, mtu)])
        trace = dde.integrate(model, duration, dt=1e-6,
                              record_stride=20)
        window = duration / 4.0
        gap = abs(trace.tail_mean("r[0]", window)
                  - trace.tail_mean("r[1]", window))
        rows.append(AblationRow(
            setting=f"halfwidth={halfwidth:g}",
            metrics=(units.pps_to_gbps(gap, mtu),
                     units.packets_to_kb(trace.tail_std("q", window),
                                         mtu))))
    return rows


def report_weight_halfwidth(rows: List[AblationRow]) -> str:
    return format_table(
        ["w(g) halfwidth", "final rate gap (Gbps)", "queue std (KB)"],
        [[r.setting, *r.metrics] for r in rows],
        title="Ablation -- Eq. 30 weight ramp width (0 is original "
              "TIMELY's hard switch)")


def gradient_clamp(clamps: Sequence[object] = (None, 0.25),
                   duration: float = 0.1,
                   segment_kb: float = 64.0) -> List[AblationRow]:
    """Clamped vs unclamped gradients under bursty self-noise."""
    rows = []
    for clamp in clamps:
        params = TimelyParams.paper_default(capacity_gbps=10,
                                            num_flows=2,
                                            segment_kb=segment_kb)
        net = single_switch(2, link_gbps=10)
        for i in range(2):
            install_flow(net, "timely", f"s{i}", "recv", None, 0.0,
                         params, pacing="burst",
                         initial_rate=net.link_rate_bytes / 2,
                         gradient_clamp=clamp)
        monitor = QueueMonitor(net.sim, net.bottleneck_port,
                               interval=100e-6)
        rate_mon = RateMonitor(
            net.sim, {f"s{i}": net.senders[i] for i in range(2)},
            interval=500e-6)
        net.sim.run(until=duration)
        scrape_network(network=net)
        total = sum(rate_mon.final_rates().values()) * 8 / 1e9
        rows.append(AblationRow(
            setting="unclamped" if clamp is None else f"clamp={clamp}",
            metrics=(net.utilization(duration), total,
                     max(monitor.occupancy_bytes) / 1024)))
    return rows


def report_gradient_clamp(rows: List[AblationRow]) -> str:
    return format_table(
        ["gradient", "utilization", "final total rate (Gbps)",
         "queue peak (KB)"],
        [[r.setting, *r.metrics] for r in rows],
        title="Ablation -- TIMELY gradient clamp under 64KB burst "
              "noise")
