"""Extension: multi-bottleneck behaviour (the paper's Section 7 wish).

One cross flow traverses every link of a parking-lot chain while each
link also carries a local flow.  Per-link max-min fairness would give
the cross flow half of each link; end-to-end congestion control beats
multi-hop flows down below that because they accumulate signal from
every hop -- ECN marks compose as ``1 - prod(1 - p_i)`` for DCQCN,
and queuing delays *sum* into TIMELY's RTT.  The experiment measures
the cross flow's share as the chain grows, for both protocol families.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro import units
from repro.analysis.reporting import format_table
from repro.core.params import DCQCNParams, PatchedTimelyParams
from repro.obs.scrape import scrape_network
from repro.sim.monitors import RateMonitor
from repro.sim.parking_lot import parking_lot
from repro.sim.red import REDMarker
from repro.sim.topology import install_flow


@dataclass(frozen=True)
class ParkingLotRow:
    """Cross-flow outcome on one chain length."""

    protocol: str
    n_segments: int
    cross_share_gbps: float
    local_share_gbps: float  #: mean of the local flows
    cross_fraction: float    #: cross rate over the per-link fair half


def run(protocols: Sequence[str] = ("dcqcn", "patched_timely"),
        segment_counts: Sequence[int] = (1, 2, 4),
        link_gbps: float = 10.0,
        duration: float = 0.08,
        seed: int = 13) -> List[ParkingLotRow]:
    """Sweep chain length for each protocol."""
    rows = []
    for protocol in protocols:
        for n in segment_counts:
            rows.append(_run_one(protocol, n, link_gbps, duration,
                                 seed))
    return rows


def _run_one(protocol: str, n_segments: int, link_gbps: float,
             duration: float, seed: int) -> ParkingLotRow:
    if protocol == "dcqcn":
        params = DCQCNParams.paper_default(capacity_gbps=link_gbps,
                                           num_flows=2)
        marker_factory = lambda i: REDMarker(  # noqa: E731
            params.red, params.mtu_bytes, seed=seed + i)
        sender_kwargs = {}
    elif protocol == "patched_timely":
        params = PatchedTimelyParams.paper_default(
            capacity_gbps=link_gbps, num_flows=2)
        marker_factory = None
        sender_kwargs = {"pacing": "packet",
                         "base_rtt": units.us(4)}
    else:
        raise ValueError(f"unsupported protocol {protocol!r}")

    net = parking_lot(n_segments, link_gbps=link_gbps,
                      marker_factory=marker_factory)
    install_flow(net, protocol, "sx", "rx", None, 0.0, params,
                 **sender_kwargs)
    for i in range(n_segments):
        install_flow(net, protocol, f"s{i}", f"r{i}", None, 0.0,
                     params, **sender_kwargs)
    monitor = RateMonitor(
        net.sim,
        {flow_id: sender for flow_id, sender in net.senders.items()},
        interval=200e-6)
    net.sim.run(until=duration)
    scrape_network(network=net)

    finals = monitor.final_rates()
    cross = finals[0] * 8 / 1e9
    locals_gbps = [finals[i] * 8 / 1e9
                   for i in range(1, n_segments + 1)]
    fair_half = link_gbps / 2.0
    return ParkingLotRow(
        protocol=protocol,
        n_segments=n_segments,
        cross_share_gbps=cross,
        local_share_gbps=sum(locals_gbps) / len(locals_gbps),
        cross_fraction=cross / fair_half)


def report(rows: List[ParkingLotRow]) -> str:
    """Render the multi-bottleneck beat-down table."""
    return format_table(
        ["protocol", "segments", "cross (Gbps)", "local mean (Gbps)",
         "cross / per-link fair"],
        [[r.protocol, r.n_segments, r.cross_share_gbps,
          r.local_share_gbps, r.cross_fraction] for r in rows],
        title="Extension -- multi-bottleneck parking lot: the cross "
              "flow's beat-down")
