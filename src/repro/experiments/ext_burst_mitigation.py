"""Extension: sub-line-rate bursts as the incast mitigation.

The paper (Section 4.2) notes the 64 KB incast collapse "can be
mitigated to some extent by sending bursts at less than line rate...
however such tuning is fragile".  This experiment sweeps the
intra-burst rate fraction on the Fig. 10(b) scenario and exposes both
halves of that sentence:

* a moderate fraction (~0.5) completely defuses the incast: the
  spread-out bursts no longer collide into a giant RTT sample;
* too low a fraction silently caps every flow at
  ``fraction * line_rate`` -- the "right" value depends on the flow
  count the operator cannot know in advance, which is exactly the
  fragility the paper calls out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.analysis.reporting import format_table
from repro.core.convergence.metrics import jain_fairness
from repro.core.params import TimelyParams
from repro.obs.scrape import scrape_network
from repro.sim.monitors import QueueMonitor, RateMonitor
from repro.sim.topology import install_flow, single_switch


@dataclass(frozen=True)
class BurstMitigationRow:
    """Outcome of one intra-burst rate fraction."""

    fraction: float
    utilization: float
    jain_index: float
    queue_peak_kb: float

    @property
    def healthy(self) -> bool:
        """Full-ish utilization with a fair split."""
        return self.utilization > 0.85 and self.jain_index > 0.9


def run(fractions: Sequence[float] = (1.0, 0.75, 0.5, 0.25),
        n_flows: int = 2,
        capacity_gbps: float = 10.0,
        segment_kb: float = 64.0,
        duration: float = 0.12) -> List[BurstMitigationRow]:
    """Sweep the intra-burst rate fraction on the incast scenario."""
    rows = []
    for fraction in fractions:
        params = TimelyParams.paper_default(
            capacity_gbps=capacity_gbps, num_flows=n_flows,
            segment_kb=segment_kb)
        net = single_switch(n_flows, link_gbps=capacity_gbps)
        for i in range(n_flows):
            install_flow(net, "timely", f"s{i}", "recv", None, 0.0,
                         params, pacing="burst",
                         initial_rate=net.link_rate_bytes / n_flows,
                         burst_rate_fraction=fraction)
        queue_mon = QueueMonitor(net.sim, net.bottleneck_port,
                                 interval=50e-6)
        rate_mon = RateMonitor(
            net.sim,
            {f"s{i}": net.senders[i] for i in range(n_flows)},
            interval=500e-6)
        net.sim.run(until=duration)
        scrape_network(network=net)
        finals = list(rate_mon.final_rates().values())
        rows.append(BurstMitigationRow(
            fraction=fraction,
            utilization=net.utilization(duration),
            jain_index=jain_fairness(finals),
            queue_peak_kb=max(queue_mon.occupancy_bytes) / 1024))
    return rows


def report(rows: List[BurstMitigationRow]) -> str:
    """Render the fraction sweep."""
    return format_table(
        ["burst rate fraction", "utilization", "Jain",
         "queue peak (KB)", "healthy"],
        [[r.fraction, r.utilization, r.jain_index, r.queue_peak_kb,
          r.healthy] for r in rows],
        title="Extension -- sub-line-rate bursts vs the 64KB incast "
              "(Fig. 10b mitigation)")
