"""Extension: PFC-induced PAUSEs under incast (Section 7 future work).

The paper's models deliberately assume ECN acts before PFC; this
experiment builds the substrate to check what happens when buffers are
finite and PFC is real.  A synchronized incast -- many senders firing
a burst at one receiver -- lands on a bottleneck with a finite egress
buffer, under four configurations:

* **plain**: no PFC, no ECN -- the buffer overflows and (since RoCE
  NICs do not retransmit in this regime) the dropped bytes never
  arrive;
* **pfc**: PFC only -- lossless, but the congestion backs up into the
  senders as PAUSE storms;
* **dcqcn**: ECN/DCQCN only -- end-to-end control reacts, but the
  first RTT of line-rate bursts can still overflow a small buffer;
* **dcqcn+pfc**: the deployed combination -- PFC guarantees zero loss
  while DCQCN's marks drain the queue and retire the PAUSEs quickly;
* **timely** / **timely+pfc**: the delay-based protocol in the same
  storm.  TIMELY *sees* PFC indirectly -- PAUSEs inflate the RTT its
  signal is made of -- which is precisely the interaction the paper's
  Section 7 flags as unstudied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro import units
from repro.analysis.reporting import format_table
from repro.core.params import DCQCNParams, TimelyParams
from repro.obs import health as _health
from repro.obs.forensics import attach_flow_forensics
from repro.obs.scrape import scrape_network
from repro.sim.engine import Simulator
from repro.sim.flows import FlowRegistry
from repro.sim.node import Host
from repro.sim.pfc import PFCController
from repro.sim.red import REDMarker
from repro.sim.switch import Switch, connect
from repro.sim.topology import Network, install_flow

#: The studied configurations.
CONFIGS = ("plain", "pfc", "dcqcn", "dcqcn+pfc", "timely",
           "timely+pfc")


@dataclass(frozen=True)
class IncastRow:
    """Outcome of one incast configuration."""

    config: str
    completed: int
    senders: int
    dropped_packets: int
    pauses: int
    last_fct_ms: float      #: completion time of the slowest flow (nan
    #: if any flow never finished)


def build_incast_network(n_senders: int,
                         link_gbps: float,
                         buffer_kb: Optional[float],
                         use_pfc: bool,
                         marker: Optional[object],
                         pause_kb: float = 20.0,
                         resume_kb: float = 10.0) -> Network:
    """Star topology with a finite bottleneck buffer and optional PFC."""
    sim = Simulator()
    rate = link_gbps * 1e9 / units.BITS_PER_BYTE
    pfc = None
    if use_pfc:
        pfc = PFCController(sim,
                            pause_threshold_bytes=int(pause_kb * 1024),
                            resume_threshold_bytes=int(resume_kb * 1024))
    switch = Switch(sim, "sw", pfc=pfc)
    receiver = Host(sim, "recv")
    hosts = {"recv": receiver}
    capacity = None if buffer_kb is None else int(buffer_kb * 1024)
    bottleneck = connect(sim, switch, receiver, rate, units.us(1),
                         marker=marker, capacity_bytes=capacity)
    switch.add_route("recv", "recv")
    connect(sim, receiver, switch, rate, units.us(1))

    for i in range(n_senders):
        sender = Host(sim, f"s{i}")
        hosts[sender.name] = sender
        nic = connect(sim, sender, switch, rate, units.us(1))
        connect(sim, switch, sender, rate, units.us(1))
        switch.add_route(sender.name, sender.name)
        if pfc is not None:
            pfc.register_upstream(
                sender.name,
                lambda pause, port=nic: port.pause() if pause
                else port.resume(),
                reverse_delay=units.us(1))

    return Network(sim=sim, hosts=hosts, switches={"sw": switch},
                   registry=FlowRegistry(), bottleneck_port=bottleneck,
                   mtu_bytes=units.DEFAULT_MTU_BYTES,
                   link_rate_bytes=rate)


def run(configs: Sequence[str] = CONFIGS,
        n_senders: int = 16,
        transfer_kb: float = 256.0,
        buffer_kb: float = 512.0,
        link_gbps: float = 10.0,
        duration: float = 0.05,
        seed: int = 21) -> List[IncastRow]:
    """Fire the synchronized incast under each configuration."""
    rows = []
    for config in configs:
        if config not in CONFIGS:
            raise ValueError(
                f"unknown config {config!r}; choose from {CONFIGS}")
        use_pfc = "pfc" in config
        use_dcqcn = "dcqcn" in config
        use_timely = "timely" in config
        params = DCQCNParams.paper_default(capacity_gbps=link_gbps,
                                           num_flows=n_senders)
        marker = REDMarker(params.red, params.mtu_bytes, seed=seed) \
            if use_dcqcn else None
        net = build_incast_network(n_senders, link_gbps, buffer_kb,
                                   use_pfc, marker)
        # Per-flow FCT attribution (no-op unless --forensics); wired
        # before install_flow so flows register under this config's
        # context (flow ids restart at 0 for every config).
        attach_flow_forensics(net, context=config)
        done = []
        if use_timely:
            timely = TimelyParams.paper_default(
                capacity_gbps=link_gbps, segment_kb=16.0)
            for i in range(n_senders):
                # No initial_rate override: each host has one flow, so
                # TIMELY's own C/(N+1) rule starts it at line rate --
                # the same inrush DCQCN's line-rate start causes.
                install_flow(net, "timely", f"s{i}", "recv",
                             int(transfer_kb * 1024), 0.0, timely,
                             pacing="packet",
                             on_complete=done.append)
        else:
            for i in range(n_senders):
                install_flow(net, "dcqcn", f"s{i}", "recv",
                             int(transfer_kb * 1024), 0.0, params,
                             on_complete=done.append)
        # Pause-storm / deadlock-precursor surveillance while the
        # incast burns down; no-op with telemetry off.
        health = _health.attach_packet_health(
            net, [_health.PauseStormDetector(window=duration / 5.0)],
            interval=duration / 500.0, context=config)
        net.sim.run(until=duration)
        scrape_network(network=net)
        if health is not None:
            health.finalize()

        pauses = 0
        if net.switches["sw"].pfc is not None:
            pauses = net.switches["sw"].pfc.pauses_sent
        if len(done) == n_senders:
            last_fct = max(f.fct for f in done) * 1e3
        else:
            last_fct = float("nan")
        rows.append(IncastRow(
            config=config,
            completed=len(done),
            senders=n_senders,
            dropped_packets=net.bottleneck_port.queue.dropped_packets,
            pauses=pauses,
            last_fct_ms=last_fct))
    return rows


def report(rows: List[IncastRow]) -> str:
    """Render the incast/PFC outcome table."""
    return format_table(
        ["config", "completed", "drops (pkts)", "PAUSEs",
         "slowest FCT (ms)"],
        [[r.config, f"{r.completed}/{r.senders}", r.dropped_packets,
          r.pauses, r.last_fct_ms] for r in rows],
        title="Extension -- synchronized incast with finite buffers "
              "and PFC")
