"""Unit conversions used throughout the reproduction.

The paper mixes Gbps, Mbps, microseconds, and KB.  Internally every model
in this package works in a single consistent system:

* time        -- seconds
* data        -- packets (one packet == one MTU, default 1 KB)
* rate        -- packets per second
* queue depth -- packets

The fluid models of the paper (Figs. 1 and 7) count data in packets (the
exponents ``(1 - p)**(tau * R_C)`` are "number of packets sent in a
window"), so packets are the natural internal currency.  These helpers
convert between wire units and internal units explicitly, which keeps
parameter definitions readable::

    params = DCQCNParams(capacity=gbps_to_pps(40.0), ...)

All converters are simple pure functions; there is deliberately no unit
wrapper class, because the hot loops (DDE integration, packet simulation)
work on plain floats and numpy arrays.
"""

from __future__ import annotations

#: Default maximum transmission unit in bytes.  DCQCN deployments use
#: 1 KB MTU-sized RDMA packets [31]; the simulator default matches.
DEFAULT_MTU_BYTES = 1024

#: Bits per byte, named for readability at call sites.
BITS_PER_BYTE = 8

#: One microsecond in seconds.
MICROSECOND = 1e-6

#: One millisecond in seconds.
MILLISECOND = 1e-3

#: One kilobyte in bytes (the paper uses binary KB for buffer sizes).
KILOBYTE = 1024

#: One megabyte in bytes.
MEGABYTE = 1024 * 1024


def gbps_to_pps(gbps: float, mtu_bytes: int = DEFAULT_MTU_BYTES) -> float:
    """Convert a rate in gigabits/second to packets/second.

    >>> round(gbps_to_pps(40.0))
    4882812
    """
    return gbps * 1e9 / (BITS_PER_BYTE * mtu_bytes)


def pps_to_gbps(pps: float, mtu_bytes: int = DEFAULT_MTU_BYTES) -> float:
    """Convert a rate in packets/second back to gigabits/second."""
    return pps * BITS_PER_BYTE * mtu_bytes / 1e9


def mbps_to_pps(mbps: float, mtu_bytes: int = DEFAULT_MTU_BYTES) -> float:
    """Convert a rate in megabits/second to packets/second.

    The DCQCN additive-increase step ``R_AI`` is specified as 40 Mbps.
    """
    return mbps * 1e6 / (BITS_PER_BYTE * mtu_bytes)


def pps_to_mbps(pps: float, mtu_bytes: int = DEFAULT_MTU_BYTES) -> float:
    """Convert a rate in packets/second to megabits/second."""
    return pps * BITS_PER_BYTE * mtu_bytes / 1e6


def us(value: float) -> float:
    """Microseconds -> seconds.  ``us(55)`` reads like the paper's 55 us."""
    return value * MICROSECOND


def ms(value: float) -> float:
    """Milliseconds -> seconds."""
    return value * MILLISECOND


def seconds_to_us(value: float) -> float:
    """Seconds -> microseconds, for reporting."""
    return value / MICROSECOND


def kb_to_packets(kilobytes: float,
                  mtu_bytes: int = DEFAULT_MTU_BYTES) -> float:
    """Buffer/queue size in KB -> packets.

    RED thresholds such as ``K_max = 200 KB`` become packet counts.
    """
    return kilobytes * KILOBYTE / mtu_bytes


def packets_to_kb(packets: float, mtu_bytes: int = DEFAULT_MTU_BYTES) -> float:
    """Queue size in packets -> KB, for reporting against the paper."""
    return packets * mtu_bytes / KILOBYTE


def mb_to_packets(megabytes: float,
                  mtu_bytes: int = DEFAULT_MTU_BYTES) -> float:
    """Byte-counter style sizes in MB -> packets (e.g. DCQCN ``B`` = 10 MB)."""
    return megabytes * MEGABYTE / mtu_bytes


def bytes_to_packets(nbytes: float,
                     mtu_bytes: int = DEFAULT_MTU_BYTES) -> float:
    """Raw byte count -> (possibly fractional) packets."""
    return nbytes / mtu_bytes


def packets_to_bytes(packets: float,
                     mtu_bytes: int = DEFAULT_MTU_BYTES) -> float:
    """Packets -> bytes."""
    return packets * mtu_bytes


def serialization_delay(nbytes: float, rate_pps: float,
                        mtu_bytes: int = DEFAULT_MTU_BYTES) -> float:
    """Time to serialize ``nbytes`` onto a link running at ``rate_pps``.

    ``rate_pps`` is in packets/second of ``mtu_bytes`` packets, i.e. the
    same internal currency the rest of the package uses.
    """
    if rate_pps <= 0:
        raise ValueError(f"rate must be positive, got {rate_pps}")
    return (nbytes / mtu_bytes) / rate_pps
