"""Parameter sets for DCQCN, TIMELY, patched TIMELY, and the PI controller.

All dataclasses store values in the package's internal units (seconds,
packets, packets/second; see :mod:`repro.units`).  Factory classmethods
build the default configurations the paper uses:

* :meth:`DCQCNParams.paper_default` -- the SIGCOMM'15 defaults [31] the
  paper adopts (Section 3.1, "DCQCN parameters are set to the values
  proposed in [31]").
* :meth:`TimelyParams.paper_default` -- footnote 4 of the paper:
  ``C = 10 Gbps, beta = 0.8, alpha = 0.875, T_low = 50 us,
  T_high = 500 us, D_minRTT = 20 us`` plus ``delta = 10 Mbps`` from
  Section 4.2.
* :meth:`PatchedTimelyParams.paper_default` -- Section 4.3:
  "All other TIMELY parameters remain the same except we set
  beta = 0.008 and Seg = 16KB".
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro import units


def _require_positive(name: str, value: float) -> None:
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")


def _require_fraction(name: str, value: float) -> None:
    if not 0.0 < value <= 1.0:
        raise ValueError(f"{name} must be in (0, 1], got {value}")


@dataclass(frozen=True)
class REDParams:
    """RED-like ECN marking profile at the congestion point (Eq. 3).

    ``p(q)`` is 0 below ``kmin``, rises linearly to ``pmax`` at ``kmax``,
    and is 1 above ``kmax``.
    """

    kmin: float  #: lower threshold, packets
    kmax: float  #: upper threshold, packets
    pmax: float  #: marking probability at ``kmax``

    def __post_init__(self) -> None:
        _require_positive("kmin", self.kmin)
        if self.kmax <= self.kmin:
            raise ValueError(
                f"kmax ({self.kmax}) must exceed kmin ({self.kmin})")
        _require_fraction("pmax", self.pmax)

    def marking_probability(self, queue: float) -> float:
        """Evaluate Eq. 3 of the paper at queue depth ``queue`` packets."""
        if queue <= self.kmin:
            return 0.0
        if queue > self.kmax:
            return 1.0
        return (queue - self.kmin) / (self.kmax - self.kmin) * self.pmax

    def queue_for_probability(self, p: float, extend: bool = False) -> float:
        """Invert Eq. 3 on the linear segment (Eq. 9 of the paper).

        With ``extend=True`` the linear ramp is extrapolated past
        ``pmax`` instead of raising -- the smooth-RED idealization the
        stability analysis linearizes around (the physical profile
        jumps to p=1 at ``kmax``, which has no slope to linearize).
        """
        if not 0.0 <= p <= self.pmax and not extend:
            raise ValueError(
                f"p={p} outside the RED profile's linear range "
                f"[0, {self.pmax}]; pass extend=True to extrapolate")
        if p < 0.0:
            raise ValueError(f"p must be >= 0, got {p}")
        return self.kmin + p / self.pmax * (self.kmax - self.kmin)

    @property
    def slope(self) -> float:
        """Marking slope ``pmax / (kmax - kmin)`` per packet of queue."""
        return self.pmax / (self.kmax - self.kmin)

    @classmethod
    def paper_default(
            cls,
            mtu_bytes: int = units.DEFAULT_MTU_BYTES,
    ) -> "REDParams":
        """Defaults from [31]: Kmin=5KB, Kmax=200KB, Pmax=1%."""
        return cls(kmin=units.kb_to_packets(5, mtu_bytes),
                   kmax=units.kb_to_packets(200, mtu_bytes),
                   pmax=0.01)


@dataclass(frozen=True)
class DCQCNParams:
    """Full DCQCN parameter set (Table 1 of the paper).

    Rates are packets/second, times seconds, counters packets.
    """

    red: REDParams
    capacity: float        #: bottleneck bandwidth C, packets/s
    num_flows: int         #: N, number of flows at the bottleneck
    g: float               #: EWMA gain of Eq. 1 (DCTCP-style)
    tau: float             #: CNP generation timer, seconds (50 us)
    tau_prime: float       #: alpha-update interval of Eq. 2, seconds (55 us)
    tau_star: float        #: control-loop (feedback) delay, seconds
    fast_recovery_steps: int   #: F, fixed at 5
    byte_counter: float    #: B, packets between byte-counter events
    timer: float           #: T, rate-increase timer, seconds (55 us)
    rate_ai: float         #: R_AI additive increase, packets/s (40 Mbps)
    rate_hai: float        #: R_HAI hyper increase, packets/s (sim only)
    mtu_bytes: int = units.DEFAULT_MTU_BYTES

    def __post_init__(self) -> None:
        _require_positive("capacity", self.capacity)
        _require_positive("num_flows", self.num_flows)
        _require_fraction("g", self.g)
        _require_positive("tau", self.tau)
        _require_positive("tau_prime", self.tau_prime)
        if self.tau_star < 0:
            raise ValueError(f"tau_star must be >= 0, got {self.tau_star}")
        _require_positive("fast_recovery_steps", self.fast_recovery_steps)
        _require_positive("byte_counter", self.byte_counter)
        _require_positive("timer", self.timer)
        _require_positive("rate_ai", self.rate_ai)
        if self.tau_prime < self.tau:
            raise ValueError(
                "tau_prime (alpha decay interval) must be larger than the "
                f"CNP timer tau; got tau'={self.tau_prime}, tau={self.tau}")

    @property
    def fair_share(self) -> float:
        """The per-flow fixed-point rate C/N (Theorem 1), packets/s."""
        return self.capacity / self.num_flows

    def replace(self, **changes) -> "DCQCNParams":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    @classmethod
    def paper_default(cls,
                      capacity_gbps: float = 40.0,
                      num_flows: int = 2,
                      tau_star_us: float = 4.0,
                      mtu_bytes: int = units.DEFAULT_MTU_BYTES,
                      ) -> "DCQCNParams":
        """The configuration of [31] used throughout Section 3.

        ``tau_star_us`` is the control-loop delay; the paper sweeps it
        from 4 us (one-hop propagation) up to 100 us.
        """
        return cls(
            red=REDParams.paper_default(mtu_bytes),
            capacity=units.gbps_to_pps(capacity_gbps, mtu_bytes),
            num_flows=num_flows,
            g=1.0 / 256.0,
            tau=units.us(50),
            tau_prime=units.us(55),
            tau_star=units.us(tau_star_us),
            fast_recovery_steps=5,
            byte_counter=units.mb_to_packets(10, mtu_bytes),
            timer=units.us(55),
            rate_ai=units.mbps_to_pps(40, mtu_bytes),
            rate_hai=units.mbps_to_pps(400, mtu_bytes),
            mtu_bytes=mtu_bytes,
        )


@dataclass(frozen=True)
class TimelyParams:
    """TIMELY parameter set (Table 2 of the paper)."""

    capacity: float        #: bottleneck bandwidth C, packets/s
    num_flows: int         #: N
    ewma_alpha: float      #: EWMA smoothing factor (0.875 in [21])
    delta: float           #: additive increase step, packets/s (10 Mbps)
    beta: float            #: multiplicative decrease factor (0.8)
    t_low: float           #: low RTT threshold, seconds (50 us)
    t_high: float          #: high RTT threshold, seconds (500 us)
    min_rtt: float         #: D_minRTT normalization, seconds (20 us)
    prop_delay: float      #: D_prop propagation delay, seconds
    segment: float         #: burst size Seg, packets (16 KB or 64 KB)
    mtu_bytes: int = units.DEFAULT_MTU_BYTES

    def __post_init__(self) -> None:
        _require_positive("capacity", self.capacity)
        _require_positive("num_flows", self.num_flows)
        _require_fraction("ewma_alpha", self.ewma_alpha)
        _require_positive("delta", self.delta)
        _require_fraction("beta", self.beta)
        _require_positive("t_low", self.t_low)
        if self.t_high <= self.t_low:
            raise ValueError(
                f"t_high ({self.t_high}) must exceed t_low ({self.t_low})")
        _require_positive("min_rtt", self.min_rtt)
        if self.prop_delay < 0:
            raise ValueError(
                f"prop_delay must be >= 0, got {self.prop_delay}")
        _require_positive("segment", self.segment)

    @property
    def fair_share(self) -> float:
        """Per-flow fair rate C/N, packets/s."""
        return self.capacity / self.num_flows

    @property
    def q_low(self) -> float:
        """Queue depth (packets) whose queuing delay equals ``t_low``.

        The fluid model compares ``q(t - tau')`` against ``C * T_low``
        (Eq. 21); this is that product in internal units.
        """
        return self.capacity * self.t_low

    @property
    def q_high(self) -> float:
        """Queue depth (packets) whose queuing delay equals ``t_high``."""
        return self.capacity * self.t_high

    def replace(self, **changes) -> "TimelyParams":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    @classmethod
    def paper_default(cls,
                      capacity_gbps: float = 10.0,
                      num_flows: int = 2,
                      prop_delay_us: float = 4.0,
                      segment_kb: float = 16.0,
                      mtu_bytes: int = units.DEFAULT_MTU_BYTES,
                      ) -> "TimelyParams":
        """Footnote-4 defaults of the paper (values recommended in [21])."""
        return cls(
            capacity=units.gbps_to_pps(capacity_gbps, mtu_bytes),
            num_flows=num_flows,
            ewma_alpha=0.875,
            delta=units.mbps_to_pps(10, mtu_bytes),
            beta=0.8,
            t_low=units.us(50),
            t_high=units.us(500),
            min_rtt=units.us(20),
            prop_delay=units.us(prop_delay_us),
            segment=units.kb_to_packets(segment_kb, mtu_bytes),
            mtu_bytes=mtu_bytes,
        )


@dataclass(frozen=True)
class PatchedTimelyParams:
    """Patched TIMELY (Algorithm 2 / Eq. 29-30) parameter set.

    Extends :class:`TimelyParams` semantics with the reference queue
    ``q_ref`` (the paper's ``q'``, set to ``C * T_low``), the
    piecewise-linear gradient weight ``w(g)`` breakpoint, and the
    band-specific decrease gain ``beta_band``.

    Section 4.3 sets ``beta = 0.008``; we apply it to the Eq. 29
    gradient-band term it appears in.  The ``T_high`` emergency brake
    keeps the base TIMELY ``beta`` -- a 0.8% maximum cut would take
    hundreds of updates to recover from an incast spike, defeating the
    branch's purpose (the paper's Fig. 14/16 results, where patched
    TIMELY controls the queue better than original TIMELY, are only
    reproducible with a functional brake).
    """

    base: TimelyParams
    q_ref: float            #: reference queue q', packets
    beta_band: float = 0.008  #: decrease gain in the Eq. 29 middle branch
    weight_slope_halfwidth: float = 0.25  #: g range over which w ramps 0->1

    def __post_init__(self) -> None:
        _require_positive("q_ref", self.q_ref)
        _require_fraction("beta_band", self.beta_band)
        _require_positive("weight_slope_halfwidth",
                          self.weight_slope_halfwidth)

    def weight(self, gradient: float) -> float:
        """The paper's Eq. 30 weight function ``w(g)``.

        Linear ramp from 0 at ``g = -1/4`` to 1 at ``g = +1/4`` by
        default; clamped outside.
        """
        half = self.weight_slope_halfwidth
        if gradient <= -half:
            return 0.0
        if gradient >= half:
            return 1.0
        return gradient / (2.0 * half) + 0.5

    @property
    def fixed_point_queue(self) -> float:
        """Theorem 5 / Eq. 31: ``q* = N * delta * q' / (beta * C) + q'``."""
        b = self.base
        return (b.num_flows * b.delta * self.q_ref
                / (self.beta_band * b.capacity) + self.q_ref)

    def replace_base(self, **changes) -> "PatchedTimelyParams":
        """Return a copy with fields of the embedded base replaced."""
        return dataclasses.replace(self, base=self.base.replace(**changes))

    @classmethod
    def paper_default(cls,
                      capacity_gbps: float = 10.0,
                      num_flows: int = 2,
                      prop_delay_us: float = 4.0,
                      mtu_bytes: int = units.DEFAULT_MTU_BYTES,
                      ) -> "PatchedTimelyParams":
        """Section 4.3 defaults: TIMELY's, but beta=0.008 and Seg=16KB."""
        base = TimelyParams.paper_default(
            capacity_gbps=capacity_gbps,
            num_flows=num_flows,
            prop_delay_us=prop_delay_us,
            segment_kb=16.0,
            mtu_bytes=mtu_bytes,
        )
        return cls(base=base, q_ref=base.capacity * base.t_low)


@dataclass(frozen=True)
class DCTCPParams:
    """DCTCP baseline configuration ([2], the protocol DCQCN extends).

    DCTCP marks with a *step* profile: every packet departing a queue
    deeper than ``step_threshold`` packets is marked
    (:meth:`step_red` encodes that as a degenerate RED ramp).  The
    sender is window-based; see
    :class:`repro.sim.protocols.dctcp.DCTCPSender`.
    """

    g: float = 1.0 / 16.0           #: marked-fraction EWMA gain
    step_threshold: float = 65.0    #: marking threshold K, packets
    initial_window_packets: int = 10  #: TCP IW, MSS units
    mtu_bytes: int = units.DEFAULT_MTU_BYTES

    def __post_init__(self) -> None:
        _require_fraction("g", self.g)
        _require_positive("step_threshold", self.step_threshold)
        _require_positive("initial_window_packets",
                          self.initial_window_packets)

    def step_red(self) -> "REDParams":
        """The step-marking profile as a (degenerate) RED ramp."""
        return REDParams(kmin=self.step_threshold,
                         kmax=self.step_threshold * (1 + 1e-6),
                         pmax=1.0)


@dataclass(frozen=True)
class PIParams:
    """PI marking controller (Eq. 32): ``dp/dt = K1 de/dt + K2 e(t)``.

    ``e(t) = q(t) - q_ref`` is the queue error in packets.  For DCQCN the
    controller runs at the switch and replaces RED; for patched TIMELY it
    runs at the host on measured delay and replaces the
    ``(q - q')/q'`` feedback term.
    """

    q_ref: float            #: reference queue length, packets
    k1: float               #: proportional gain, on normalized de/dt
    k2: float               #: integral gain, on normalized e (1/s)
    p_min: float = 0.0      #: clamp for the marking variable
    p_max: float = 1.0

    def __post_init__(self) -> None:
        _require_positive("q_ref", self.q_ref)
        if self.k1 < 0:
            raise ValueError(f"k1 must be >= 0, got {self.k1}")
        _require_positive("k2", self.k2)
        if not 0.0 <= self.p_min < self.p_max <= 1.0:
            raise ValueError(
                f"require 0 <= p_min < p_max <= 1, got "
                f"[{self.p_min}, {self.p_max}]")

    @classmethod
    def for_dcqcn(cls, q_ref_kb: float,
                  mtu_bytes: int = units.DEFAULT_MTU_BYTES) -> "PIParams":
        """Gains for a switch-side PI marker driving DCQCN senders.

        DCQCN's steady marking probability is tiny (Eq. 14, ~1e-3), so
        the controller must move ``p`` slowly: gains are sized for a
        millisecond-scale integral response, empirically stable for
        N up to ~64 flows at 40 Gbps.
        """
        return cls(q_ref=units.kb_to_packets(q_ref_kb, mtu_bytes),
                   k1=1e-3, k2=0.02)

    @classmethod
    def for_timely(cls, q_ref_kb: float,
                   mtu_bytes: int = units.DEFAULT_MTU_BYTES) -> "PIParams":
        """Gains for host-side PI variables driving patched TIMELY.

        Patched TIMELY's equilibrium feedback is O(0.1-1) (``p* =
        delta / (beta R)``), so the integrator can be proportionally
        faster than the DCQCN marker.
        """
        return cls(q_ref=units.kb_to_packets(q_ref_kb, mtu_bytes),
                   k1=1e-2, k2=1.0)
