"""Patched TIMELY phase-margin analysis -- Section 4.3, Figure 11.

The linearization mirrors the DCQCN one, with the crucial difference
the paper highlights: the feedback delay is *not* constant.  The RTT
signal observes the queue only after ``tau' = q*/C + MTU/C + D_prop``
(Eq. 24), and the Eq. 31 fixed-point queue grows linearly with the
number of flows -- so more flows literally lengthen the control loop.
That coupling is what drives the margin below zero past ~40 flows
(Fig. 11), whereas DCQCN's egress-marked ECN loop keeps a constant
delay regardless of queue depth.

Loop structure at the fixed point (``g* = 0``, ``R* = C/N``,
``q*`` from Eq. 31):

* per-flow subsystem ``(g, R)`` with two delayed queue inputs,
  ``q(t - tau')`` and ``q(t - tau' - tau*)`` (the gradient differences
  them, Eq. 22);
* queue integrator ``delta q = N delta R / s``;
* open loop ``L(s) = -(N/s) (G1(s) e^{-s tau'} +
  G2(s) e^{-s (tau' + tau*)})``.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.core.fixedpoint.timely import patched_fixed_point
from repro.core.params import PatchedTimelyParams
from repro.core.stability.bode import PhaseMarginResult, phase_margin
from repro.core.stability.linearize import (jacobian,
                                            transfer_function_grid)

#: Output selector: the subsystem's second state is the rate R.
_OUTPUT = np.array([0.0, 1.0])


def flow_subsystem_rhs(patched: PatchedTimelyParams,
                       x: np.ndarray) -> np.ndarray:
    """Unrolled patched-TIMELY flow dynamics ``f(g, R, q_d1, q_d2)``.

    ``q_d1 = q(t - tau')`` and ``q_d2 = q(t - tau' - tau*)`` enter as
    explicit arguments.  The update interval ``tau*(R)`` keeps its rate
    dependence (Eq. 23) so its stabilizing/destabilizing slope is part
    of the Jacobian.
    """
    g, rate, q_d1, q_d2 = x
    base = patched.base
    tau_star = max(base.segment / max(rate, 1.0), base.min_rtt)
    dg = (base.ewma_alpha / tau_star) * (
        -g + (q_d1 - q_d2) / (base.capacity * base.min_rtt))
    w = patched.weight(g)
    error = (q_d1 - patched.q_ref) / patched.q_ref
    dr = ((1.0 - w) * base.delta
          - w * patched.beta_band * rate * error) / tau_star
    return np.array([dg, dr])


class PatchedTimelyLoopGain:
    """Open-loop transfer function of linearized patched TIMELY.

    ``jacobian_mode`` selects finite differences (``"numeric"``) or
    the closed forms in :mod:`repro.core.stability.analytic`
    (``"analytic"``); the tests enforce their agreement.
    """

    def __init__(self, patched: PatchedTimelyParams,
                 mtu_packets: float = 1.0,
                 jacobian_mode: str = "numeric"):
        if jacobian_mode not in ("numeric", "analytic"):
            raise ValueError(
                f"jacobian_mode must be 'numeric' or 'analytic', got "
                f"{jacobian_mode!r}")
        self.patched = patched
        base = patched.base
        point = patched_fixed_point(patched)
        self.queue_star = point.queue
        self.rate_star = float(point.rates[0])
        #: Eq. 24 feedback delay frozen at the fixed-point queue.
        self.tau_feedback = (self.queue_star / base.capacity
                             + mtu_packets / base.capacity
                             + base.prop_delay)
        #: Eq. 23 update interval at the fixed-point rate.
        self.tau_update = max(base.segment / self.rate_star, base.min_rtt)

        if jacobian_mode == "analytic":
            from repro.core.stability.analytic import \
                patched_flow_jacobians
            closed = patched_flow_jacobians(patched, self.rate_star,
                                            self.queue_star)
            self.m0 = closed.m0
            self.b_q1 = closed.b_q1
            self.b_q2 = closed.b_q2
        else:
            x0 = np.array([0.0, self.rate_star, self.queue_star,
                           self.queue_star])
            full = jacobian(lambda x: flow_subsystem_rhs(patched, x),
                            x0)
            #: 2x2 Jacobian w.r.t. the current (g, R).
            self.m0 = full[:, :2]
            #: Sensitivity to q(t - tau').
            self.b_q1 = full[:, 2]
            #: Sensitivity to q(t - tau' - tau*).
            self.b_q2 = full[:, 3]

    def __call__(self, omegas: np.ndarray) -> np.ndarray:
        omegas = np.asarray(omegas, dtype=float)
        n = self.patched.base.num_flows
        s = 1j * omegas.ravel()
        # Both delayed-queue inputs share the (sI - M0) factorization:
        # one stacked solve with a two-column right-hand side.
        inputs = np.column_stack((self.b_q1, self.b_q2))
        g = transfer_function_grid(s, self.m0, inputs, _OUTPUT)
        delayed = (g[:, 0] * np.exp(-s * self.tau_feedback)
                   + g[:, 1] * np.exp(-s * (self.tau_feedback
                                            + self.tau_update)))
        out = -(n / s) * delayed
        return out.reshape(omegas.shape)


def patched_timely_phase_margin(patched: PatchedTimelyParams,
                                omega_min: float = 1e2,
                                omega_max: float = 1e7,
                                num_points: int = 2000
                                ) -> PhaseMarginResult:
    """Phase margin of patched TIMELY at Theorem 5's fixed point."""
    return phase_margin(PatchedTimelyLoopGain(patched),
                        omega_min=omega_min, omega_max=omega_max,
                        num_points=num_points)


def margin_vs_flows(patched: PatchedTimelyParams,
                    flow_counts: Iterable[int]) -> List[float]:
    """Phase margins (degrees) across a flow-count sweep (Fig. 11).

    Flow counts whose Eq. 31 queue leaves the gradient band (where the
    fixed point stops existing) report ``nan``.
    """
    margins = []
    for n in flow_counts:
        swept = patched.replace_base(num_flows=int(n))
        try:
            margins.append(patched_timely_phase_margin(swept).margin_deg)
        except ValueError:
            margins.append(float("nan"))
    return margins
