"""Numeric linearization helpers for the stability analysis.

Appendix A of the paper linearizes the DCQCN fluid model symbolically.
We obtain the same Jacobians by central finite differences on the
"unrolled" right-hand sides (delayed quantities passed as explicit
arguments), which is exact to O(step^2) and spares us transcribing the
paper's page of partial derivatives -- while the tests cross-check the
DC gains against the closed-form fixed-point relations.
"""

from __future__ import annotations

from typing import Callable

import numpy as np


def jacobian(fn: Callable[[np.ndarray], np.ndarray], x0: np.ndarray,
             relative_step: float = 1e-6,
             minimum_step: float = 1e-9) -> np.ndarray:
    """Central-difference Jacobian of ``fn`` at ``x0``.

    Parameters
    ----------
    fn:
        Vector function R^n -> R^m; must be smooth in a neighbourhood
        of ``x0`` (the fluid models are, at interior fixed points).
    x0:
        Linearization point.
    relative_step:
        Step as a fraction of each component's magnitude.
    minimum_step:
        Absolute floor for components near zero.

    Returns
    -------
    numpy.ndarray
        The m-by-n matrix ``J[i, j] = d fn_i / d x_j``.
    """
    x0 = np.asarray(x0, dtype=float)
    f0 = np.asarray(fn(x0), dtype=float)
    out = np.empty((f0.shape[0], x0.shape[0]))
    for j in range(x0.shape[0]):
        step = max(abs(x0[j]) * relative_step, minimum_step)
        forward = x0.copy()
        forward[j] += step
        backward = x0.copy()
        backward[j] -= step
        out[:, j] = (np.asarray(fn(forward), dtype=float)
                     - np.asarray(fn(backward), dtype=float)) / (2.0 * step)
    return out


def transfer_function(s: complex, a0: np.ndarray, b: np.ndarray,
                      c: np.ndarray,
                      a_delayed: "list[tuple[np.ndarray, float]]" = ()
                      ) -> complex:
    """Evaluate ``c (sI - A0 - sum_k Ak e^{-s tau_k})^{-1} b``.

    The building block for loop gains of delayed linear systems: each
    ``(Ak, tau_k)`` pair contributes a delayed state-feedback term.
    """
    a0 = np.asarray(a0, dtype=complex)
    n = a0.shape[0]
    matrix = s * np.eye(n) - a0
    for a_k, tau_k in a_delayed:
        matrix -= np.asarray(a_k, dtype=complex) * np.exp(-s * tau_k)
    solution = np.linalg.solve(matrix, np.asarray(b, dtype=complex))
    return complex(np.asarray(c, dtype=complex) @ solution)


def transfer_function_grid(s: np.ndarray, a0: np.ndarray, b: np.ndarray,
                           c: np.ndarray,
                           a_delayed:
                           "list[tuple[np.ndarray, float]]" = ()
                           ) -> np.ndarray:
    """Vectorized :func:`transfer_function` over an array of ``s`` values.

    Stacks one ``(len(s), n, n)`` system and factorizes it with a
    single LAPACK call instead of looping scalar 3x3 solves in Python
    -- the loop-gain evaluations behind the phase-margin sweeps call
    this with thousands of frequency points, and the per-call numpy
    overhead of the scalar path dominated the stability experiments.

    ``b`` may be ``(n,)`` for one input vector (returns ``(len(s),)``)
    or ``(n, k)`` for ``k`` inputs sharing the factorization (returns
    ``(len(s), k)``), which the two-delay TIMELY loop gain uses to
    solve both of its inputs at once.
    """
    s = np.asarray(s, dtype=complex).ravel()
    a0 = np.asarray(a0, dtype=complex)
    n = a0.shape[0]
    matrices = np.multiply.outer(s, np.eye(n, dtype=complex)) - a0
    for a_k, tau_k in a_delayed:
        phase = np.exp(-s * tau_k)
        matrices -= (np.asarray(a_k, dtype=complex)
                     * phase[:, None, None])
    b = np.asarray(b, dtype=complex)
    single = b.ndim == 1
    columns = b.reshape(n, -1)
    stacked = np.broadcast_to(columns, (s.shape[0],) + columns.shape)
    solutions = np.linalg.solve(matrices, stacked)
    out = np.einsum("j,mjk->mk", np.asarray(c, dtype=complex),
                    solutions)
    return out[:, 0] if single else out
