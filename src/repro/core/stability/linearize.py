"""Numeric linearization helpers for the stability analysis.

Appendix A of the paper linearizes the DCQCN fluid model symbolically.
We obtain the same Jacobians by central finite differences on the
"unrolled" right-hand sides (delayed quantities passed as explicit
arguments), which is exact to O(step^2) and spares us transcribing the
paper's page of partial derivatives -- while the tests cross-check the
DC gains against the closed-form fixed-point relations.
"""

from __future__ import annotations

from typing import Callable

import numpy as np


def jacobian(fn: Callable[[np.ndarray], np.ndarray], x0: np.ndarray,
             relative_step: float = 1e-6,
             minimum_step: float = 1e-9) -> np.ndarray:
    """Central-difference Jacobian of ``fn`` at ``x0``.

    Parameters
    ----------
    fn:
        Vector function R^n -> R^m; must be smooth in a neighbourhood
        of ``x0`` (the fluid models are, at interior fixed points).
    x0:
        Linearization point.
    relative_step:
        Step as a fraction of each component's magnitude.
    minimum_step:
        Absolute floor for components near zero.

    Returns
    -------
    numpy.ndarray
        The m-by-n matrix ``J[i, j] = d fn_i / d x_j``.
    """
    x0 = np.asarray(x0, dtype=float)
    f0 = np.asarray(fn(x0), dtype=float)
    out = np.empty((f0.shape[0], x0.shape[0]))
    for j in range(x0.shape[0]):
        step = max(abs(x0[j]) * relative_step, minimum_step)
        forward = x0.copy()
        forward[j] += step
        backward = x0.copy()
        backward[j] -= step
        out[:, j] = (np.asarray(fn(forward), dtype=float)
                     - np.asarray(fn(backward), dtype=float)) / (2.0 * step)
    return out


def transfer_function(s: complex, a0: np.ndarray, b: np.ndarray,
                      c: np.ndarray,
                      a_delayed: "list[tuple[np.ndarray, float]]" = ()
                      ) -> complex:
    """Evaluate ``c (sI - A0 - sum_k Ak e^{-s tau_k})^{-1} b``.

    The building block for loop gains of delayed linear systems: each
    ``(Ak, tau_k)`` pair contributes a delayed state-feedback term.
    """
    a0 = np.asarray(a0, dtype=complex)
    n = a0.shape[0]
    matrix = s * np.eye(n) - a0
    for a_k, tau_k in a_delayed:
        matrix -= np.asarray(a_k, dtype=complex) * np.exp(-s * tau_k)
    solution = np.linalg.solve(matrix, np.asarray(b, dtype=complex))
    return complex(np.asarray(c, dtype=complex) @ solution)
