"""Closed-form linearizations of the flow dynamics (Appendix A style).

DCQCN's is the paper's Appendix A; patched TIMELY's follows the same
recipe for the (g, R) subsystem of Eq. 29.  Both are cross-checked
against finite differences in the tests.

The paper derives the linearized model symbolically (Eq. 33 and the
Laplace transform Eq. 34).  This module implements the same closed
forms: exact partial derivatives of the per-flow right-hand side

    f(alpha, R_T, R_C; p_d, R_d)

with respect to the current state and the delayed inputs, evaluated at
the Theorem-1 fixed point.  It serves two purposes:

* an independent check on the finite-difference Jacobians used by
  :class:`~repro.core.stability.dcqcn_margin.DCQCNLoopGain` (the test
  suite requires agreement to several significant digits);
* an exact, step-size-free path for the phase-margin sweeps
  (``DCQCNLoopGain(..., jacobian="analytic")``).

Writing ``L = -ln(1 - p)`` (so ``(1-p)^x = exp(-x L)``), the QCN
factors and their exact partials are::

    a = 1 - exp(-tau R L)        da/dp = exp(-tau R L) tau R / (1-p)
                                 da/dR = exp(-tau R L) tau L
    b = p / (exp(B L) - 1)       (byte counter, B packets)
    c = exp(-F B L) b
    d = p / (exp(x L) - 1)       with x = T R (timer window, packets)
    e = exp(-F x L) d

with the quotient-rule partials spelled out in the code.
"""

from __future__ import annotations

import math
from typing import NamedTuple

import numpy as np

from repro.core.fixedpoint.dcqcn import DCQCNFixedPoint
from repro.core.params import DCQCNParams, PatchedTimelyParams


class FactorDerivatives(NamedTuple):
    """One QCN factor's value and partials at the fixed point."""

    value: float
    d_dp: float
    d_dr: float


def _survival(exponent: float) -> float:
    """``exp(-exponent)`` guarded against overflow for huge windows."""
    if exponent > 700.0:
        return 0.0
    return math.exp(-exponent)


def mark_window_factor(p: float, rate: float,
                       window_s: float) -> FactorDerivatives:
    """``a = 1 - (1-p)^{window * R}`` and its partials.

    Also used for the alpha target (Eq. 5) with ``window_s = tau'``.
    """
    big_l = -math.log1p(-p)
    survival = _survival(window_s * rate * big_l)
    value = 1.0 - survival
    d_dp = survival * window_s * rate / (1.0 - p)
    d_dr = survival * window_s * big_l
    return FactorDerivatives(value, d_dp, d_dr)


def counter_factor(p: float, window_packets: float,
                   window_slope_dr: float) -> FactorDerivatives:
    """``p / ((1-p)^{-w} - 1)`` for an inter-event window ``w``.

    ``window_slope_dr`` is ``dw/dR`` (zero for the byte counter,
    ``T`` for the timer whose window is ``T R``).
    """
    big_l = -math.log1p(-p)
    # Work with 1/G = (1-p)^{w} to stay finite for huge windows
    # (B = 10 MB of packets easily overflows exp(w L)).
    inv_g = _survival(window_packets * big_l)
    one_minus = 1.0 - inv_g  # == (G - 1)/G
    value = p * inv_g / one_minus
    d_dp = inv_g * (one_minus - p * window_packets / (1.0 - p)) \
        / one_minus ** 2
    d_dr = -p * big_l * window_slope_dr * inv_g / one_minus ** 2
    return FactorDerivatives(value, d_dp, d_dr)


def past_recovery_factor(base: FactorDerivatives, p: float,
                         fr_window_packets: float,
                         fr_window_slope_dr: float
                         ) -> FactorDerivatives:
    """``(1-p)^{F w} * base`` -- events surviving fast recovery.

    ``fr_window_packets = F * w`` and ``fr_window_slope_dr`` its rate
    derivative (``0`` for the byte counter, ``F T`` for the timer).
    """
    big_l = -math.log1p(-p)
    survival = _survival(fr_window_packets * big_l)
    value = survival * base.value
    d_dp = survival * (base.d_dp
                       - base.value * fr_window_packets / (1.0 - p))
    d_dr = survival * (base.d_dr
                       - base.value * big_l * fr_window_slope_dr)
    return FactorDerivatives(value, d_dp, d_dr)


class AnalyticJacobians(NamedTuple):
    """Linearized flow subsystem, Appendix-A style.

    ``m0`` is the 3x3 Jacobian w.r.t. the current ``(alpha, R_T,
    R_C)``; ``b_p`` and ``b_r`` the sensitivities to the delayed
    marking probability and the delayed own rate.
    """

    m0: np.ndarray
    b_p: np.ndarray
    b_r: np.ndarray


def flow_jacobians(params: DCQCNParams,
                   fp: DCQCNFixedPoint) -> AnalyticJacobians:
    """Evaluate the closed-form Jacobians at the fixed point."""
    p_star = fp.p
    rate = fp.rate
    alpha = fp.alpha
    rt = fp.target_rate
    rc = fp.rate
    prm = params

    a = mark_window_factor(p_star, rate, prm.tau)
    alpha_target = mark_window_factor(p_star, rate, prm.tau_prime)
    b = counter_factor(p_star, prm.byte_counter, 0.0)
    c = past_recovery_factor(
        b, p_star, prm.fast_recovery_steps * prm.byte_counter, 0.0)
    d = counter_factor(p_star, prm.timer * rate, prm.timer)
    e = past_recovery_factor(
        d, p_star, prm.fast_recovery_steps * prm.timer * rate,
        prm.fast_recovery_steps * prm.timer)

    g_over_tp = prm.g / prm.tau_prime
    # d(alpha)/dt = g/tau' * (A(p_d, R_d) - alpha)
    dalpha_dalpha = -g_over_tp
    dalpha_dp = g_over_tp * alpha_target.d_dp
    dalpha_dr = g_over_tp * alpha_target.d_dr

    # d(R_T)/dt = -(R_T - R_C)/tau * a + R_AI R_d (c + e)
    gap = rt - rc
    drt_drt = -a.value / prm.tau
    drt_drc = a.value / prm.tau
    drt_dp = (-gap / prm.tau * a.d_dp
              + prm.rate_ai * rate * (c.d_dp + e.d_dp))
    drt_dr = (-gap / prm.tau * a.d_dr
              + prm.rate_ai * (c.value + e.value)
              + prm.rate_ai * rate * (c.d_dr + e.d_dr))

    # d(R_C)/dt = -R_C alpha/(2 tau) a + (R_T - R_C)/2 * R_d (b + d)
    bd = b.value + d.value
    drc_dalpha = -rc * a.value / (2.0 * prm.tau)
    drc_drt = rate * bd / 2.0
    drc_drc = -alpha * a.value / (2.0 * prm.tau) - rate * bd / 2.0
    drc_dp = (-rc * alpha / (2.0 * prm.tau) * a.d_dp
              + gap / 2.0 * rate * (b.d_dp + d.d_dp))
    drc_dr = (-rc * alpha / (2.0 * prm.tau) * a.d_dr
              + gap / 2.0 * (bd + rate * (b.d_dr + d.d_dr)))

    m0 = np.array([
        [dalpha_dalpha, 0.0, 0.0],
        [0.0, drt_drt, drt_drc],
        [drc_dalpha, drc_drt, drc_drc],
    ])
    b_p = np.array([dalpha_dp, drt_dp, drc_dp])
    b_r = np.array([dalpha_dr, drt_dr, drc_dr])
    return AnalyticJacobians(m0=m0, b_p=b_p, b_r=b_r)


class PatchedAnalyticJacobians(NamedTuple):
    """Linearized patched-TIMELY flow subsystem at Theorem 5's point.

    ``m0`` is the 2x2 Jacobian w.r.t. the current ``(g, R)``; ``b_q1``
    and ``b_q2`` the sensitivities to the delayed queue observations
    ``q(t - tau')`` and ``q(t - tau' - tau*)``.
    """

    m0: np.ndarray
    b_q1: np.ndarray
    b_q2: np.ndarray


def patched_flow_jacobians(patched: PatchedTimelyParams,
                           rate_star: float,
                           queue_star: float
                           ) -> PatchedAnalyticJacobians:
    """Closed-form partials of Eq. 29's (g, R) dynamics.

    Evaluated at the Theorem-5 fixed point, where several terms vanish
    identically: the gradient is zero, the Eq. 29 numerator balances
    (``w* beta R* e* = (1-w*) delta`` with ``w* = 1/2``), so the
    ``d tau*/dR`` chain terms multiply zero and drop out.
    """
    base = patched.base
    tau_star = max(base.segment / rate_star, base.min_rtt)
    half = patched.weight_slope_halfwidth
    w_star = patched.weight(0.0)
    w_slope = 1.0 / (2.0 * half)
    error_star = (queue_star - patched.q_ref) / patched.q_ref
    norm = base.capacity * base.min_rtt

    # dg/dt = (alpha/tau*) (-g + (q1 - q2)/(C Dmin))
    dg_dg = -base.ewma_alpha / tau_star
    dg_dq1 = base.ewma_alpha / (tau_star * norm)
    dg_dq2 = -dg_dq1
    # At the fixed point (-g + D) = 0, so tau*(R) sensitivity drops.
    dg_dr = 0.0

    # dR/dt = ((1 - w(g)) delta - w(g) beta_band R (q1 - q')/q')/tau*
    beta = patched.beta_band
    dr_dg = -w_slope * (base.delta
                        + beta * rate_star * error_star) / tau_star
    dr_dr = -w_star * beta * error_star / tau_star
    dr_dq1 = -w_star * beta * rate_star / (patched.q_ref * tau_star)

    m0 = np.array([
        [dg_dg, dg_dr],
        [dr_dg, dr_dr],
    ])
    b_q1 = np.array([dg_dq1, dr_dq1])
    b_q2 = np.array([dg_dq2, 0.0])
    return PatchedAnalyticJacobians(m0=m0, b_q1=b_q1, b_q2=b_q2)
