"""DCQCN phase-margin analysis -- Section 3.2, Appendix A, Figure 3.

The analysis linearizes the symmetric mode (all flows perturbed
together) around Theorem 1's fixed point and breaks the loop at the
marking signal:

* per-flow controller ``G(s)``: response of ``R_C`` to a marking
  perturbation ``delta p``, from the 3-state ``(alpha, R_T, R_C)``
  subsystem, including the self-delayed ``R_C(t - tau*)`` feedback
  that the QCN event rates introduce;
* queue integrator: ``delta q = N delta R_C / s`` (Eq. 4);
* marking: ``delta p = K_red e^{-s tau*} delta q`` with
  ``K_red = pmax / (kmax - kmin)`` -- the mark conveys the *egress*
  queue, delayed only by the constant control-loop latency, which is
  the paper's central argument for ECN (Section 5.2).

The open loop is ``L(s) = -(N/s) K_red e^{-s tau*} G(s)`` and the
margin follows from :func:`repro.core.stability.bode.phase_margin`.
The fixed point uses the smooth-RED extension (see
:func:`repro.core.fixedpoint.dcqcn.solve_fixed_point`), as a cliff has
no slope to linearize.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.core.fixedpoint.dcqcn import solve_fixed_point
from repro.core.fluid.dcqcn import qcn_event_rates
from repro.core.params import DCQCNParams
from repro.core.stability.bode import PhaseMarginResult, phase_margin
from repro.core.stability.linearize import (jacobian, transfer_function,
                                            transfer_function_grid)

#: Output selector: the subsystem's third state is R_C.
_OUTPUT = np.array([0.0, 0.0, 1.0])


def flow_subsystem_rhs(params: DCQCNParams, x: np.ndarray) -> np.ndarray:
    """Unrolled per-flow dynamics ``f(alpha, rt, rc, p_d, rc_d)``.

    ``p_d`` and ``rc_d`` stand for the delayed marking probability and
    the delayed own rate; passing them as explicit arguments lets the
    finite-difference Jacobian separate current-state from
    delayed-state sensitivities.
    """
    alpha, rt, rc, p_d, rc_d = x
    events = qcn_event_rates(p_d, np.array([rc_d]), params)
    mark_fraction = float(events.mark_fraction[0])
    byte_rate = float(events.byte_rate[0])
    byte_ai = float(events.byte_ai_rate[0])
    timer_rate = float(events.timer_rate[0])
    timer_ai = float(events.timer_ai_rate[0])

    if p_d > 0.0:
        alpha_target = -np.expm1(params.tau_prime * rc_d * np.log1p(-p_d))
    else:
        alpha_target = 0.0
    dalpha = (params.g / params.tau_prime) * (alpha_target - alpha)
    drt = (-(rt - rc) / params.tau * mark_fraction
           + params.rate_ai * (byte_ai + timer_ai))
    drc = (-(rc * alpha) / (2.0 * params.tau) * mark_fraction
           + (rt - rc) / 2.0 * (byte_rate + timer_rate))
    return np.array([dalpha, drt, drc])


class DCQCNLoopGain:
    """Open-loop transfer function of the linearized DCQCN system.

    ``jacobian_mode`` selects how the Appendix-A linearization is
    obtained: ``"numeric"`` (central finite differences on the
    unrolled RHS) or ``"analytic"`` (the closed forms in
    :mod:`repro.core.stability.analytic`).  Both agree to many digits;
    the tests enforce it.
    """

    def __init__(self, params: DCQCNParams,
                 fixed_point: "DCQCNFixedPoint | None" = None,
                 jacobian_mode: str = "numeric"):
        if jacobian_mode not in ("numeric", "analytic"):
            raise ValueError(
                f"jacobian_mode must be 'numeric' or 'analytic', got "
                f"{jacobian_mode!r}")
        self.params = params
        self.fixed_point = fixed_point or solve_fixed_point(
            params, extend_red=True)
        fp = self.fixed_point
        if jacobian_mode == "analytic":
            from repro.core.stability.analytic import flow_jacobians
            closed = flow_jacobians(params, fp)
            self.m0 = closed.m0
            self.b_p = closed.b_p
            self.b_r = closed.b_r
        else:
            x0 = np.array([fp.alpha, fp.target_rate, fp.rate, fp.p,
                           fp.rate])
            full = jacobian(lambda x: flow_subsystem_rhs(params, x), x0)
            #: 3x3 Jacobian w.r.t. the current (alpha, R_T, R_C).
            self.m0 = full[:, :3]
            #: Sensitivity to the delayed marking probability.
            self.b_p = full[:, 3]
            #: Sensitivity to the delayed own rate R_C(t - tau*).
            self.b_r = full[:, 4]
        #: Delayed self-feedback matrix b_r * c^T.
        self.m_delayed = np.outer(self.b_r, _OUTPUT)

    def controller(self, s: complex) -> complex:
        """``G(s)``: marking perturbation -> R_C response."""
        return transfer_function(
            s, self.m0, self.b_p, _OUTPUT,
            a_delayed=[(self.m_delayed, self.params.tau_star)])

    def __call__(self, omegas: np.ndarray) -> np.ndarray:
        omegas = np.asarray(omegas, dtype=float)
        k_red = self.params.red.slope
        n = self.params.num_flows
        s = 1j * omegas.ravel()
        g = transfer_function_grid(
            s, self.m0, self.b_p, _OUTPUT,
            a_delayed=[(self.m_delayed, self.params.tau_star)])
        out = -(n / s) * k_red * np.exp(-s * self.params.tau_star) * g
        return out.reshape(omegas.shape)


def dcqcn_phase_margin(params: DCQCNParams,
                       omega_min: float = 1e2,
                       omega_max: float = 1e7,
                       num_points: int = 2000) -> PhaseMarginResult:
    """Phase margin of DCQCN at Theorem 1's fixed point."""
    return phase_margin(DCQCNLoopGain(params), omega_min=omega_min,
                        omega_max=omega_max, num_points=num_points)


def margin_vs_flows(params: DCQCNParams,
                    flow_counts: Iterable[int]) -> List[float]:
    """Phase margins (degrees) across a sweep of flow counts (Fig. 3)."""
    margins = []
    for n in flow_counts:
        swept = params.replace(num_flows=int(n))
        margins.append(dcqcn_phase_margin(swept).margin_deg)
    return margins
