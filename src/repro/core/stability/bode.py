"""Bode stability criteria -- gain crossover and phase margin.

Section 3.2 of the paper: "We test the system against Bode Stability
Criteria.  The degree of stability is shown as Phase Margin...  The
system is stable when its Phase Margin is larger than 0".

Given the open-loop transfer function ``L(s)`` of a (delayed) feedback
system, the phase margin is ``180 deg + arg L(j w_gc)`` evaluated at
the gain-crossover frequency ``|L(j w_gc)| = 1``.  Delay terms make
``L`` transcendental, so we evaluate it on a dense logarithmic
frequency grid, unwrap the phase, locate every crossover by
interpolation, and report the *worst* (smallest) margin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class PhaseMarginResult:
    """Outcome of a phase-margin computation.

    ``margin_deg`` is ``math.inf`` when the loop gain never reaches
    unity (unconditionally stable in the Bode sense).
    """

    margin_deg: float           #: worst phase margin, degrees
    crossover_rad_s: float      #: frequency of that margin (nan if none)
    omegas: np.ndarray = field(repr=False)   #: evaluation grid, rad/s
    gain_db: np.ndarray = field(repr=False)  #: |L| in dB along the grid
    phase_deg: np.ndarray = field(repr=False)  #: unwrapped arg L, degrees

    @property
    def stable(self) -> bool:
        """Bode criterion verdict: positive margin (or no crossover)."""
        return self.margin_deg > 0.0


def phase_margin(loop: Callable[[np.ndarray], np.ndarray],
                 omega_min: float = 1e2,
                 omega_max: float = 1e7,
                 num_points: int = 4000) -> PhaseMarginResult:
    """Compute the worst phase margin of the open loop ``loop``.

    Parameters
    ----------
    loop:
        Vectorized ``L(j omega)``: maps an array of angular frequencies
        (rad/s) to complex loop-gain values.  Sign convention: the
        closed loop is ``1 + L``, i.e. ``L`` has positive DC gain for
        negative feedback.
    omega_min, omega_max:
        Grid bounds, rad/s.  The defaults bracket the paper's dynamics
        (millisecond AIMD cycles to microsecond delays).
    num_points:
        Logarithmic grid resolution.

    Notes
    -----
    Multiple gain crossovers are common for delayed loops; the minimum
    margin over all of them decides stability, matching how Fig. 3's
    non-monotonic curves were obtained.
    """
    if omega_min <= 0 or omega_max <= omega_min:
        raise ValueError(
            f"need 0 < omega_min < omega_max, got [{omega_min}, "
            f"{omega_max}]")
    omegas = np.logspace(math.log10(omega_min), math.log10(omega_max),
                         num_points)
    values = np.asarray(loop(omegas), dtype=complex)
    if values.shape != omegas.shape:
        raise ValueError(
            f"loop() returned shape {values.shape}, expected "
            f"{omegas.shape}")
    magnitude = np.abs(values)
    with np.errstate(divide="ignore"):
        gain_db = 20.0 * np.log10(magnitude)
    phase_deg = np.degrees(np.unwrap(np.angle(values)))

    crossings = np.nonzero(np.diff(np.sign(gain_db)) != 0)[0]
    if crossings.size == 0:
        return PhaseMarginResult(margin_deg=math.inf,
                                 crossover_rad_s=math.nan,
                                 omegas=omegas, gain_db=gain_db,
                                 phase_deg=phase_deg)

    worst = math.inf
    worst_omega = math.nan
    for idx in crossings:
        g0, g1 = gain_db[idx], gain_db[idx + 1]
        if g1 == g0:
            fraction = 0.5
        else:
            fraction = -g0 / (g1 - g0)
        phase_at = phase_deg[idx] + fraction * (phase_deg[idx + 1]
                                                - phase_deg[idx])
        log_omega = (math.log10(omegas[idx])
                     + fraction * (math.log10(omegas[idx + 1])
                                   - math.log10(omegas[idx])))
        margin = 180.0 + _principal_phase(phase_at)
        if margin < worst:
            worst = margin
            worst_omega = 10.0 ** log_omega
    return PhaseMarginResult(margin_deg=worst, crossover_rad_s=worst_omega,
                             omegas=omegas, gain_db=gain_db,
                             phase_deg=phase_deg)


def gain_margin(loop: Callable[[np.ndarray], np.ndarray],
                omega_min: float = 1e2,
                omega_max: float = 1e7,
                num_points: int = 4000) -> float:
    """Gain margin in dB: headroom at the phase-crossover frequency.

    The gain margin is ``-20 log10 |L(j w_pc)|`` at the first frequency
    where the phase crosses -180 degrees; positive means the loop gain
    could grow by that factor before instability.  Returns ``inf`` if
    the phase never reaches -180 degrees inside the grid.

    Complements :func:`phase_margin` for the Fig. 3-style sensitivity
    questions ("how much more aggressive could R_AI get?"): the phase
    margin measures delay headroom, the gain margin measures gain
    headroom.
    """
    if omega_min <= 0 or omega_max <= omega_min:
        raise ValueError(
            f"need 0 < omega_min < omega_max, got [{omega_min}, "
            f"{omega_max}]")
    omegas = np.logspace(math.log10(omega_min), math.log10(omega_max),
                         num_points)
    values = np.asarray(loop(omegas), dtype=complex)
    phase_deg = np.degrees(np.unwrap(np.angle(values)))
    with np.errstate(divide="ignore"):
        gain_db = 20.0 * np.log10(np.abs(values))

    target = phase_deg - (-180.0)
    crossings = np.nonzero(np.diff(np.sign(target)) != 0)[0]
    if crossings.size == 0:
        return math.inf
    idx = crossings[0]
    p0, p1 = target[idx], target[idx + 1]
    fraction = 0.5 if p1 == p0 else -p0 / (p1 - p0)
    gain_at = gain_db[idx] + fraction * (gain_db[idx + 1]
                                         - gain_db[idx])
    return float(-gain_at)


def _principal_phase(phase_deg: float) -> float:
    """Map an unwrapped phase into (-360, 0] for margin arithmetic.

    Delayed loops accumulate unbounded phase lag; the margin at a
    crossover only depends on the phase modulo 360.  Mapping into
    (-360, 0] makes ``180 + phase`` land in (-180, 180], negative
    exactly when the crossover is unstable.
    """
    wrapped = math.fmod(phase_deg, 360.0)
    if wrapped > 0.0:
        wrapped -= 360.0
    return wrapped
