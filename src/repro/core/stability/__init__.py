"""Control-theoretic stability: linearization, loop gains, Bode margins.

The DCQCN machinery (Fig. 3) lives in
:mod:`repro.core.stability.dcqcn_margin` with closed-form Jacobians in
:mod:`repro.core.stability.analytic`; patched TIMELY's (Fig. 11) in
:mod:`repro.core.stability.timely_margin`.
"""
