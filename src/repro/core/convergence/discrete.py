"""Discrete DCQCN convergence model -- Section 3.3, Appendix B, Theorem 2.

The fluid model cannot answer whether flows *converge* to the fair
fixed point, so the paper builds a discrete model of the RP's AIMD
cycle (Fig. 6/22), with the alpha-update interval ``tau'`` (= timer
``T`` = 55 us) as the unit of time, synchronized flows, fast recovery
folded into the multiplicative decrease, and hyper-increase omitted
(the paper's footnote 3 simplification, with ``R_T = R_C`` on
decrease).

Per unit step (additive-increase phase, Appendix Eq. 35-36)::

    R_T <- R_T + R_AI
    R_C <- (R_C + R_T) / 2

At a synchronized decrease event ``T_k`` (Eq. 15-16 semantics)::

    R_T <- R_C
    R_C <- (1 - alpha/2) R_C
    alpha <- (1 - g) alpha + g

and during every marking-free unit step alpha decays by ``(1 - g)``.

The decrease events are endogenous: once the aggregate rate exceeds
``C`` the bottleneck queue builds (Appendix Eq. 41), and when it
reaches the marking threshold every flow gets marked.  Theorem 2 then
gives two exponential laws this module lets you verify numerically:

* alpha differences contract by ``(1 - g)`` per unit of time (Eq. 17);
* once alphas agree, rate differences contract by ``(1 - alpha/2)``
  per cycle (Eq. 18), with ``alpha(T_k)`` decreasing toward a strictly
  positive ``alpha*`` (Eq. 19/42).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.params import DCQCNParams


@dataclass
class CycleRecord:
    """Snapshot taken at one synchronized decrease event ``T_k``."""

    time_units: int            #: T_k in units of tau'
    rates_at_peak: np.ndarray  #: per-flow R_C just before the decrease
    alphas: np.ndarray         #: per-flow alpha just after the decrease

    @property
    def rate_spread(self) -> float:
        """``max R - min R`` at the peak -- Theorem 2's contracting gap."""
        return float(np.max(self.rates_at_peak)
                     - np.min(self.rates_at_peak))

    @property
    def alpha_spread(self) -> float:
        """``max alpha - min alpha`` -- Eq. 17's contracting gap."""
        return float(np.max(self.alphas) - np.min(self.alphas))


class DiscreteDCQCN:
    """Synchronized-flow discrete AIMD iteration of Section 3.3.

    Parameters
    ----------
    params:
        DCQCN parameter set; ``tau_prime`` is the time unit, and the
        marking threshold is ``red.kmax`` (Appendix Eq. 41 bounds the
        queue buildup by ``K_max``).
    initial_rates:
        Per-flow rates at t=0, packets/s.
    initial_alphas:
        Per-flow alpha at t=0 (DCQCN initializes alpha to 1).
    """

    def __init__(self, params: DCQCNParams,
                 initial_rates: Optional[Sequence[float]] = None,
                 initial_alphas: Optional[Sequence[float]] = None):
        self.params = params
        n = params.num_flows
        if initial_rates is None:
            self.rates = np.full(n, params.capacity, dtype=float)
        else:
            self.rates = np.asarray(initial_rates, dtype=float).copy()
            if self.rates.shape != (n,):
                raise ValueError(
                    f"initial_rates must have shape ({n},), got "
                    f"{self.rates.shape}")
        if initial_alphas is None:
            self.alphas = np.ones(n, dtype=float)
        else:
            self.alphas = np.asarray(initial_alphas, dtype=float).copy()
            if self.alphas.shape != (n,):
                raise ValueError(
                    f"initial_alphas must have shape ({n},), got "
                    f"{self.alphas.shape}")
            if np.any((self.alphas < 0) | (self.alphas > 1)):
                raise ValueError("alphas must lie in [0, 1]")
        self.targets = self.rates.copy()
        self.queue = 0.0
        self.time_units = 0
        self.cycles: List[CycleRecord] = []

    def _increase_step(self) -> None:
        """One tau' of additive increase (Appendix Eq. 35-36)."""
        p = self.params
        self.targets = self.targets + p.rate_ai
        self.rates = 0.5 * (self.rates + self.targets)
        # Alpha decays every marking-free tau' interval (Eq. 2).
        self.alphas = (1.0 - p.g) * self.alphas

    def _decrease_event(self) -> None:
        """Synchronized marked cycle end (Eq. 15-16 semantics)."""
        record = CycleRecord(time_units=self.time_units,
                             rates_at_peak=self.rates.copy(),
                             alphas=np.empty(0))
        self.rates = (1.0 - self.alphas / 2.0) * self.rates
        # Footnote 3: the simplified model sets R_T = R_C upon decrease
        # (no fast recovery toward the pre-cut peak).
        self.targets = self.rates.copy()
        self.alphas = (1.0 - self.params.g) * self.alphas + self.params.g
        record.alphas = self.alphas.copy()
        self.cycles.append(record)
        # The decrease drops the aggregate below capacity; the bottleneck
        # drains, and the model restarts the cycle with an empty queue.
        self.queue = 0.0

    def step(self) -> bool:
        """Advance one tau'.  Returns True if a decrease event fired."""
        p = self.params
        self.time_units += 1
        excess = float(np.sum(self.rates)) - p.capacity
        if excess > 0.0:
            self.queue += excess * p.tau_prime
        if self.queue >= p.red.kmax:
            self._decrease_event()
            return True
        self._increase_step()
        return False

    def run_cycles(self, num_cycles: int,
                   max_steps: int = 10_000_000) -> List[CycleRecord]:
        """Run until ``num_cycles`` decrease events have fired."""
        if num_cycles < 1:
            raise ValueError(f"num_cycles must be >= 1, got {num_cycles}")
        target = len(self.cycles) + num_cycles
        steps = 0
        while len(self.cycles) < target:
            self.step()
            steps += 1
            if steps > max_steps:
                raise RuntimeError(
                    f"no {num_cycles} cycles within {max_steps} steps; "
                    "parameters may prevent the aggregate from reaching "
                    "capacity")
        return self.cycles[-num_cycles:]


def queue_buildup_units(params: DCQCNParams) -> float:
    """Appendix Eq. 41: units of tau' to build the queue to ``K_max``::

        t <= (-1 + sqrt(1 + 8 K_max / (N R_AI tau'))) / 2
    """
    p = params
    inner = 1.0 + 8.0 * p.red.kmax / (p.num_flows * p.rate_ai * p.tau_prime)
    return (-1.0 + np.sqrt(inner)) / 2.0


def cycle_length_units(params: DCQCNParams, alpha: float) -> float:
    """Appendix Eq. 40: cycle length given the common alpha::

        Delta T = 2 + (t/2 + C / (2 N R_AI)) alpha
    """
    p = params
    t = queue_buildup_units(params)
    return 2.0 + (t / 2.0 + p.capacity / (2.0 * p.num_flows * p.rate_ai)) \
        * alpha


def alpha_fixed_point(params: DCQCNParams,
                      tolerance: float = 1e-12,
                      max_iterations: int = 10_000) -> float:
    """Appendix Eq. 42: the strictly positive limit ``alpha*``.

    Solves ``alpha = (1-g)^{Delta T(alpha)} ((1-g) alpha + g)`` by
    fixed-point iteration, which converges because the map is a
    monotone contraction on (0, 1] (Appendix's f(alpha) analysis).
    """
    g = params.g
    alpha = 1.0
    for _ in range(max_iterations):
        delta_t = cycle_length_units(params, alpha)
        updated = (1.0 - g) ** delta_t * ((1.0 - g) * alpha + g)
        if abs(updated - alpha) < tolerance:
            return updated
        alpha = updated
    raise RuntimeError(
        f"alpha* iteration did not converge within {max_iterations} "
        "iterations")


def contraction_rate(spreads: Sequence[float]) -> float:
    """Geometric decay rate fitted to a positive, decreasing series.

    Returns the least-squares slope of ``log(spread)`` per cycle; a
    value below 1 confirms exponential contraction (Theorem 2).
    """
    spreads = np.asarray(spreads, dtype=float)
    positive = spreads[spreads > 0]
    if positive.size < 2:
        raise ValueError(
            "need at least two positive spread samples to fit a rate")
    logs = np.log(positive)
    slope = np.polyfit(np.arange(positive.size), logs, 1)[0]
    return float(np.exp(slope))
