"""Theorem 2's discrete AIMD model plus fairness/convergence metrics."""
