"""Fairness and convergence metrics shared by experiments and tests."""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np


def jain_fairness(rates: Sequence[float]) -> float:
    """Jain's fairness index ``(sum x)^2 / (n sum x^2)``.

    1.0 for a perfectly even split; ``1/n`` when one flow hogs
    everything.  Used to quantify Theorem 4's "arbitrary unfairness"
    versus the fair fixed points of Theorems 1 and 5.
    """
    rates = np.asarray(rates, dtype=float)
    if rates.size == 0:
        raise ValueError("need at least one rate")
    if np.any(rates < 0):
        raise ValueError("rates must be non-negative")
    total = float(np.sum(rates))
    if total == 0.0:
        raise ValueError("all rates are zero")
    return total ** 2 / (rates.size * float(np.sum(rates ** 2)))


def max_min_ratio(rates: Sequence[float]) -> float:
    """``max(rate) / min(rate)``; infinity if any rate is zero."""
    rates = np.asarray(rates, dtype=float)
    if rates.size == 0:
        raise ValueError("need at least one rate")
    low = float(np.min(rates))
    if low <= 0.0:
        return math.inf
    return float(np.max(rates)) / low


def convergence_time(times: Sequence[float], values: Sequence[float],
                     target: float, tolerance: float) -> Optional[float]:
    """First time after which ``values`` stays within ``target +/- tol``.

    Returns None if the series never settles (the TIMELY limit-cycle
    case).  ``tolerance`` is absolute.
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if times.shape != values.shape:
        raise ValueError(
            f"times {times.shape} and values {values.shape} differ")
    inside = np.abs(values - target) <= tolerance
    if not inside[-1]:
        return None
    # Walk back from the end to the last excursion.
    outside = np.nonzero(~inside)[0]
    if outside.size == 0:
        return float(times[0])
    last_excursion = outside[-1]
    if last_excursion + 1 >= times.size:
        return None
    return float(times[last_excursion + 1])


def oscillation_amplitude(values: Sequence[float]) -> float:
    """Half the peak-to-peak swing of a (tail) series."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("need at least one sample")
    return float(np.max(values) - np.min(values)) / 2.0
