"""PI-controller fluid models -- Section 5.2, Eq. 32, Figures 18-19.

Two systems demonstrate the paper's fairness/delay-tradeoff argument
(Theorem 6):

* :class:`DCQCNPIFluidModel` -- the switch marks with a PI controller
  instead of RED.  The marking probability is a *shared* integrator
  state ``dp/dt = K1 de/dt + K2 e`` with ``e = q - q_ref``; integral
  action pins the queue to ``q_ref`` regardless of the number of flows,
  while the shared ``p`` still forces all flows to the same rate
  (Fig. 18): fairness *and* bounded delay.

* :class:`PatchedTimelyPIFluidModel` -- each *host* runs its own PI
  controller on its measured delay, and the resulting per-flow internal
  variable ``p_i`` replaces the ``(q - q')/q'`` term of Eq. 29.  The
  queue is again pinned to the reference, but the per-host integrators
  retain whatever asymmetry their histories accumulated: the rate split
  is an accident of initial conditions (Fig. 19): bounded delay
  *without* fairness.  This is exactly the underdetermined system in
  Theorem 6's proof (``N+1`` equations, ``2N`` unknowns).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.fluid.dcqcn import DCQCNFluidModel
from repro.core.fluid.history import UniformHistory
from repro.core.fluid.jitter import no_jitter
from repro.core.fluid.patched_timely import PatchedTimelyFluidModel
from repro.core.params import DCQCNParams, PatchedTimelyParams, PIParams


class DCQCNPIFluidModel(DCQCNFluidModel):
    """DCQCN whose congestion point marks via Eq. 32 instead of RED.

    The marking variable joins the state vector (label ``p_mark``);
    senders observe it delayed by ``tau*`` exactly as they observe RED
    marks in the base model.
    """

    def __init__(self, params: DCQCNParams, pi: PIParams,
                 initial_rates: Optional[Sequence[float]] = None,
                 initial_queue: float = 0.0,
                 line_rate: Optional[float] = None,
                 feedback_jitter: Callable[[float], float] = no_jitter):
        super().__init__(params, initial_rates=initial_rates,
                         initial_queue=initial_queue, line_rate=line_rate,
                         feedback_jitter=feedback_jitter)
        self.pi = pi

    @property
    def p_mark_index(self) -> int:
        """Column index of the PI marking variable."""
        return 1 + 3 * self.n

    def initial_state(self) -> np.ndarray:
        base = super().initial_state()
        return np.append(base, 0.0)

    def state_labels(self) -> List[str]:
        return super().state_labels() + ["p_mark"]

    def marking_probability(self, t: float,
                            history: UniformHistory) -> float:
        lag = self.params.tau_star + self.feedback_jitter(t)
        delayed_p = history.component(t - lag, self.p_mark_index)
        return float(np.clip(delayed_p, self.pi.p_min, self.pi.p_max))

    def derivatives(self, t: float, state: np.ndarray,
                    history: UniformHistory) -> np.ndarray:
        base = super().derivatives(t, state[:self.p_mark_index], history)
        queue = state[self.queue_index]
        dq = base[self.queue_index]
        # Error and its slope are normalized by q_ref so PI gains carry
        # the same meaning (fraction of p per second) across models.
        error = (queue - self.pi.q_ref) / self.pi.q_ref
        dp = self.pi.k1 * dq / self.pi.q_ref + self.pi.k2 * error
        # Anti-windup: freeze the integrator when pushing past a clamp.
        p_mark = state[self.p_mark_index]
        if (p_mark <= self.pi.p_min and dp < 0) or \
                (p_mark >= self.pi.p_max and dp > 0):
            dp = 0.0
        return np.append(base, dp)

    def clamp(self, state: np.ndarray) -> np.ndarray:
        super().clamp(state[:self.p_mark_index])
        state[self.p_mark_index] = float(
            np.clip(state[self.p_mark_index], self.pi.p_min, self.pi.p_max))
        return state


class PatchedTimelyPIFluidModel(PatchedTimelyFluidModel):
    """Patched TIMELY with a *per-host* PI controller on measured delay.

    Each flow carries an internal variable ``p_i`` (labels ``p[i]``)
    integrating its own delay error; ``p_i`` replaces the normalized
    queue excess in the Eq. 29 rate law.  The delay error is measured
    through the same state-dependent feedback path the host's RTT
    samples traverse (Eq. 24).
    """

    def __init__(self, patched: PatchedTimelyParams, pi: PIParams,
                 initial_rates: Optional[Sequence[float]] = None,
                 initial_queue: float = 0.0,
                 line_rate: Optional[float] = None,
                 feedback_jitter: Callable[[float], float] = no_jitter,
                 initial_p: Optional[Sequence[float]] = None,
                 start_times: Optional[Sequence[float]] = None):
        super().__init__(patched, initial_rates=initial_rates,
                         initial_queue=initial_queue, line_rate=line_rate,
                         feedback_jitter=feedback_jitter,
                         start_times=start_times)
        self.pi = pi
        if initial_p is None:
            self._initial_p = np.zeros(self.n)
        else:
            p0 = np.asarray(initial_p, dtype=float)
            if p0.shape != (self.n,):
                raise ValueError(
                    f"initial_p must have shape ({self.n},), got {p0.shape}")
            self._initial_p = p0

    def p_slice(self) -> slice:
        """Columns holding the per-host PI variables ``p_i``."""
        return slice(1 + 2 * self.n, 1 + 3 * self.n)

    def initial_state(self) -> np.ndarray:
        base = super().initial_state()
        return np.concatenate([base, self._initial_p])

    def state_labels(self) -> List[str]:
        return super().state_labels() + [f"p[{i}]" for i in range(self.n)]

    def rate_derivative_pi(self, gradients: np.ndarray, rates: np.ndarray,
                           p_values: np.ndarray,
                           tau_star: np.ndarray) -> np.ndarray:
        """Eq. 29's middle branch with ``p_i`` as the feedback term."""
        p = self.params
        w = self.weights(gradients)
        return ((1.0 - w) * p.delta
                - w * self.patched.beta_band * rates * p_values) / tau_star

    def derivatives(self, t: float, state: np.ndarray,
                    history: UniformHistory) -> np.ndarray:
        p = self.params
        queue = state[self.queue_index]
        gradients = state[self.gradient_slice()]
        rates = state[self.rate_slice()]
        p_values = state[self.p_slice()]
        active = self.active_flows(t)

        tau_star = self.update_intervals(rates)
        tau_fb = self.feedback_delay(queue, t)
        delayed_queue = history.component(t - tau_fb, self.queue_index)

        dq = float(np.sum(rates[active])) - p.capacity
        if queue <= 0.0 and dq < 0.0:
            dq = 0.0

        older = np.array([
            history.component(t - tau_fb - tau_star[i], self.queue_index)
            for i in range(self.n)
        ])
        normalized_diff = (delayed_queue - older) / (p.capacity * p.min_rtt)
        dg = (p.ewma_alpha / tau_star) * (normalized_diff - gradients)

        # The host's delay-error signal and its finite-difference slope,
        # both normalized by the reference (delay and queue are
        # interchangeable through the factor C).
        # Unlike the switch marker, the host-side "p" is an *internal*
        # variable (Section 5.2), not a probability: it is free to go
        # negative (which simply means "increase"), so no clamp -- and
        # therefore no mechanism to forget inter-host asymmetry.
        error = (delayed_queue - self.pi.q_ref) / self.pi.q_ref
        error_slope = (delayed_queue - older) / tau_star / self.pi.q_ref
        dp = self.pi.k1 * error_slope + self.pi.k2 * error

        dr = self.rate_derivative_pi(gradients, rates, p_values, tau_star)
        # Outer threshold branches retain Algorithm 2 semantics, but the
        # T_high brake uses the gentle band gain: an 0.8-strength cut
        # fighting the integral controller produces a crash/ramp limit
        # cycle that buries the fairness question Fig. 19 isolates.
        if delayed_queue < p.q_low:
            dr = p.delta / tau_star
        elif delayed_queue > p.q_high:
            scale = 1.0 - p.q_high / delayed_queue
            dr = -(self.patched.beta_band / tau_star) * scale * rates

        out = np.empty_like(state)
        out[self.queue_index] = dq
        out[self.gradient_slice()] = np.where(active, dg, 0.0)
        out[self.rate_slice()] = np.where(active, dr, 0.0)
        out[self.p_slice()] = np.where(active, dp, 0.0)
        return out

    def clamp(self, state: np.ndarray) -> np.ndarray:
        state[self.queue_index] = max(state[self.queue_index], 0.0)
        np.clip(state[self.rate_slice()], 1.0, self.line_rate,
                out=state[self.rate_slice()])
        return state
