"""DCTCP fluid model -- the window-based system of [3].

The paper leans on Alizadeh et al.'s DCTCP analysis ("Analysis of
DCTCP: stability, convergence and fairness", [3]) in two places: the
fluid-modelling methodology itself, and footnote 9's remark that
"some window-based protocols have limit cycles" -- which is DCTCP:
with step marking at threshold ``K`` the queue orbits ``K`` in a
sawtooth rather than settling.  This module implements that classic
model so the claim is checkable next to the rate-based systems:

    dW_i/dt = 1/R(t) - W_i alpha_i / (2 R(t)) * p(t - R*)
    dalpha_i/dt = g / R(t) * (p(t - R*) - alpha_i)
    dq/dt = sum_i W_i / R(t) - C
    R(t) = d + q(t)/C                  (RTT: propagation + queuing)
    p(q) = 1 if q > K else 0           (step marking)

Windows are in packets, ``C`` in packets/second.  Unlike DCQCN (unique
stable fixed point) and patched TIMELY (unique fixed point, stability
conditional on N), this system's marking discontinuity makes every
trajectory a limit cycle around ``q = K`` -- the third behaviour class
in the paper's taxonomy.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.fluid.base import FluidModel
from repro.core.fluid.history import UniformHistory

#: Windows below one packet stall the model; clamp like the protocols do.
MIN_WINDOW = 1.0


class DCTCPFluidModel(FluidModel):
    """The [3] delay-ODE system for ``N`` window-based flows.

    State layout: ``[q, alpha_1..alpha_N, w_1..w_N]``.

    Parameters
    ----------
    capacity:
        Bottleneck rate, packets/s.
    num_flows:
        N.
    marking_threshold:
        Step threshold K, packets.
    prop_delay:
        Base RTT d (two-way propagation), seconds.
    g:
        DCTCP's estimation gain (1/16).
    initial_windows:
        Per-flow starting windows, packets (defaults to the
        bandwidth-delay product share).
    """

    def __init__(self, capacity: float, num_flows: int,
                 marking_threshold: float,
                 prop_delay: float,
                 g: float = 1.0 / 16.0,
                 initial_windows: Optional[Sequence[float]] = None,
                 initial_queue: float = 0.0):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if num_flows < 1:
            raise ValueError(f"need at least one flow, got {num_flows}")
        if marking_threshold <= 0:
            raise ValueError(
                f"marking threshold must be positive, got "
                f"{marking_threshold}")
        if prop_delay <= 0:
            raise ValueError(
                f"prop_delay must be positive, got {prop_delay}")
        if not 0.0 < g <= 1.0:
            raise ValueError(f"g must be in (0, 1], got {g}")
        self.capacity = capacity
        self.n = num_flows
        self.threshold = marking_threshold
        self.prop_delay = prop_delay
        self.g = g
        if initial_windows is None:
            bdp_share = capacity * prop_delay / num_flows
            self._initial_windows = np.full(num_flows,
                                            max(bdp_share, MIN_WINDOW))
        else:
            windows = np.asarray(initial_windows, dtype=float)
            if windows.shape != (num_flows,):
                raise ValueError(
                    f"initial_windows must have shape ({num_flows},), "
                    f"got {windows.shape}")
            if np.any(windows < MIN_WINDOW):
                raise ValueError(
                    f"windows must be >= {MIN_WINDOW} packet")
            self._initial_windows = windows
        if initial_queue < 0:
            raise ValueError(
                f"initial_queue must be >= 0, got {initial_queue}")
        self._initial_queue = float(initial_queue)

    # -- state layout ---------------------------------------------------------

    @property
    def queue_index(self) -> int:
        return 0

    def alpha_slice(self) -> slice:
        return slice(1, 1 + self.n)

    def window_slice(self) -> slice:
        return slice(1 + self.n, 1 + 2 * self.n)

    def initial_state(self) -> np.ndarray:
        state = np.empty(1 + 2 * self.n)
        state[self.queue_index] = self._initial_queue
        state[self.alpha_slice()] = 0.0
        state[self.window_slice()] = self._initial_windows
        return state

    def state_labels(self) -> List[str]:
        labels = ["q"]
        labels += [f"alpha[{i}]" for i in range(self.n)]
        labels += [f"w[{i}]" for i in range(self.n)]
        return labels

    # -- dynamics -------------------------------------------------------------

    def rtt(self, queue: float) -> float:
        """R(t) = d + q/C."""
        return self.prop_delay + queue / self.capacity

    def marking(self, queue: float) -> float:
        """Step marking: everything above K is marked."""
        return 1.0 if queue > self.threshold else 0.0

    def derivatives(self, t: float, state: np.ndarray,
                    history: UniformHistory) -> np.ndarray:
        queue = state[self.queue_index]
        alphas = state[self.alpha_slice()]
        windows = state[self.window_slice()]

        rtt_now = self.rtt(queue)
        delayed_queue = history.component(t - rtt_now, self.queue_index)
        p_delayed = self.marking(delayed_queue)

        dq = float(np.sum(windows)) / rtt_now - self.capacity
        if queue <= 0.0 and dq < 0.0:
            dq = 0.0

        dalpha = self.g / rtt_now * (p_delayed - alphas)
        dw = (1.0 / rtt_now
              - windows * alphas / (2.0 * rtt_now) * p_delayed)

        out = np.empty_like(state)
        out[self.queue_index] = dq
        out[self.alpha_slice()] = dalpha
        out[self.window_slice()] = dw
        return out

    def clamp(self, state: np.ndarray) -> np.ndarray:
        state[self.queue_index] = max(state[self.queue_index], 0.0)
        np.clip(state[self.alpha_slice()], 0.0, 1.0,
                out=state[self.alpha_slice()])
        np.clip(state[self.window_slice()], MIN_WINDOW, None,
                out=state[self.window_slice()])
        return state
