"""Fluid (delay-ODE) models and the fixed-step DDE integrator.

Models: :class:`~repro.core.fluid.dcqcn.DCQCNFluidModel` (Fig. 1),
:class:`~repro.core.fluid.timely.TimelyFluidModel` (Fig. 7),
:class:`~repro.core.fluid.patched_timely.PatchedTimelyFluidModel`
(Eq. 29), the PI variants in :mod:`repro.core.fluid.pi` (Eq. 32), and
the window-based baseline :class:`~repro.core.fluid.dctcp.DCTCPFluidModel`.
Integrate any of them with :func:`repro.core.fluid.dde.integrate`.
"""
