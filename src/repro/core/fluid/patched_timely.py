"""Patched TIMELY fluid model -- Algorithm 2 / Equations 29-30.

Section 4.3's two-line fix to TIMELY:

1. In the gradient band the rate decrease is driven by the *absolute*
   queue excess over a reference ``q' = C * T_low`` instead of by the
   RTT gradient, giving every flow shared knowledge of the bottleneck
   queue -- this collapses the infinite fixed-point family of Theorem 4
   into the unique point of Theorem 5 (Eq. 31).
2. The hard ``g <= 0 / g > 0`` switch becomes a continuous weight
   ``w(g)`` (Eq. 30), removing the on-off chatter.

Everything else (thresholds, gradient EWMA, update intervals, the
state-dependent feedback delay) is inherited from
:class:`~repro.core.fluid.timely.TimelyFluidModel`.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.fluid.jitter import no_jitter
from repro.core.fluid.timely import TimelyFluidModel
from repro.core.params import PatchedTimelyParams


class PatchedTimelyFluidModel(TimelyFluidModel):
    """Eq. 29 dynamics with the Eq. 30 weight function.

    Parameters mirror :class:`TimelyFluidModel`, but take a
    :class:`~repro.core.params.PatchedTimelyParams` whose embedded base
    carries the Section 4.3 overrides (``beta = 0.008``,
    ``Seg = 16KB``).
    """

    def __init__(self, patched: PatchedTimelyParams,
                 initial_rates: Optional[Sequence[float]] = None,
                 initial_queue: float = 0.0,
                 line_rate: Optional[float] = None,
                 feedback_jitter: Callable[[float], float] = no_jitter,
                 mtu_packets: float = 1.0,
                 start_times: Optional[Sequence[float]] = None):
        super().__init__(patched.base,
                         initial_rates=initial_rates,
                         initial_queue=initial_queue,
                         line_rate=line_rate,
                         feedback_jitter=feedback_jitter,
                         mtu_packets=mtu_packets,
                         start_times=start_times)
        self.patched = patched

    def weights(self, gradients: np.ndarray) -> np.ndarray:
        """Vectorized Eq. 30: linear ramp from 0 to 1 over g in [-1/4, 1/4]."""
        half = self.patched.weight_slope_halfwidth
        return np.clip(gradients / (2.0 * half) + 0.5, 0.0, 1.0)

    def rate_derivative(self, delayed_queue: float, gradients: np.ndarray,
                        rates: np.ndarray,
                        tau_star: np.ndarray) -> np.ndarray:
        p = self.params
        if delayed_queue < p.q_low:
            return p.delta / tau_star
        if delayed_queue > p.q_high:
            scale = 1.0 - p.q_high / delayed_queue
            return -(p.beta / tau_star) * scale * rates
        w = self.weights(gradients)
        q_ref = self.patched.q_ref
        error = (delayed_queue - q_ref) / q_ref
        beta = self.patched.beta_band
        return ((1.0 - w) * p.delta - w * beta * rates * error) / tau_star
