"""Random feedback-delay jitter for the fluid models (Fig. 20).

Section 5.2 of the paper injects uniform random jitter into the
feedback delay of both models -- ``tau*`` for DCQCN and ``tau'`` for
TIMELY -- to show that ECN tolerates a noisy reverse path (the signal
is merely late) while delay-based feedback is corrupted by it (the
noise lands *inside* the measured RTT).

A :class:`JitterProcess` is a deterministic, seedable piecewise-constant
random signal: the delay offset is redrawn from ``Uniform[0, amplitude]``
every ``resample_interval`` seconds.  Piecewise constancy keeps the DDE
right-hand side well defined between integrator steps, and determinism
(values derived from the interval index, not from call order) makes
integrations reproducible regardless of how many times the stepper
evaluates the RHS.
"""

from __future__ import annotations

import numpy as np


class JitterProcess:
    """Deterministic piecewise-constant ``Uniform[0, amplitude]`` delay.

    Parameters
    ----------
    amplitude:
        Maximum extra delay, seconds (the paper uses 100 us).
    resample_interval:
        How often a fresh uniform sample takes effect, seconds.
    seed:
        Seed for the underlying generator.

    The process is callable: ``jitter(t)`` returns the extra feedback
    delay at time ``t``.  Negative times reuse the ``t = 0`` sample.
    """

    #: Number of samples drawn per batch when extending the table.
    _BATCH = 4096

    def __init__(self, amplitude: float, resample_interval: float = 10e-6,
                 seed: int = 0):
        if amplitude < 0:
            raise ValueError(f"amplitude must be >= 0, got {amplitude}")
        if resample_interval <= 0:
            raise ValueError(
                f"resample_interval must be positive, got "
                f"{resample_interval}")
        self.amplitude = float(amplitude)
        self.resample_interval = float(resample_interval)
        self._rng = np.random.default_rng(seed)
        self._samples = self._rng.uniform(0.0, self.amplitude, self._BATCH) \
            if amplitude > 0 else np.zeros(self._BATCH)

    def _extend_to(self, index: int) -> None:
        while index >= self._samples.shape[0]:
            if self.amplitude > 0:
                fresh = self._rng.uniform(0.0, self.amplitude, self._BATCH)
            else:
                fresh = np.zeros(self._BATCH)
            self._samples = np.concatenate([self._samples, fresh])

    def __call__(self, t: float) -> float:
        index = max(int(t / self.resample_interval), 0)
        self._extend_to(index)
        return float(self._samples[index])


def no_jitter(t: float) -> float:
    """The trivial jitter process: zero extra delay at all times."""
    return 0.0
