"""TIMELY fluid model -- Figure 7 / Equations 20-24 of the paper.

State layout for ``N`` flows: ``[q, g_1..g_N, r_1..r_N]`` where ``g`` is
the (normalized, EWMA-filtered) RTT gradient and ``r`` the sending
rate.

The distinguishing features, faithfully reproduced:

* The feedback delay ``tau' = q/C + MTU/C + D_prop`` (Eq. 24) is
  *state dependent*: queue buildup lengthens the control loop, the very
  coupling Section 5.2 identifies as delay-based control's handicap.
* The per-flow update interval ``tau*_i = max(Seg/R_i, D_minRTT)``
  (Eq. 23): one RTT sample per transmitted segment, with the update
  frequency capped by ``D_minRTT``.
* The gradient ODE (Eq. 22) differences two delayed queue observations,
  ``q(t - tau')`` and ``q(t - tau' - tau*_i)``.
* The rate law (Eq. 21) follows Algorithm 1's branch order: the
  ``T_low`` additive-increase and ``T_high`` multiplicative-decrease
  guards are checked on the *delayed* queue, and only between them does
  the gradient decide.

``gradient_zero_increases`` selects between the paper's two variants:
``True`` is Algorithm 1 / Eq. 21 (``g <= 0`` increases -- Theorem 3: no
fixed point at all); ``False`` is the Eq. 28 modification (``g >= 0``
decreases -- Theorem 4: infinitely many fixed points).  The fluid
trajectories of the two are indistinguishable in practice (an exactly
zero gradient has measure zero); both are provided because the paper's
fixed-point taxonomy hinges on the distinction.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.fluid.base import FluidModel
from repro.core.fluid.history import UniformHistory
from repro.core.fluid.jitter import no_jitter
from repro.core.params import TimelyParams

#: Floor on flow rates (packets/s); keeps ``Seg / R`` finite.
MIN_RATE = 1.0


class TimelyFluidModel(FluidModel):
    """The Fig. 7 delay-ODE system for ``N`` individually-tracked flows.

    Parameters
    ----------
    params:
        TIMELY configuration.
    initial_rates:
        Per-flow starting rates, packets/s.  Defaults to ``C/N`` each
        (TIMELY starts a new flow at ``C/(N+1)`` of the NIC rate with
        ``N`` already active; the paper's validation uses ``1/N`` of
        link bandwidth).
    initial_queue:
        Starting queue depth, packets.
    line_rate:
        Cap on per-flow rate, packets/s (defaults to capacity).
    feedback_jitter:
        Callable ``t -> extra delay (s)`` added to the feedback delay
        ``tau'`` -- the Fig. 20 experiment.  Because TIMELY's signal *is*
        the delay, jitter shifts the observation time of the queue it
        reacts to, corrupting the gradient.
    mtu_packets:
        The MTU term of Eq. 24 in packets (1.0 by construction).
    start_times:
        Per-flow activation times, seconds.  Before its start time a
        flow contributes nothing to the queue and its state is frozen;
        at activation it enters at its configured initial rate.  Used
        by the Fig. 9(b) "one flow starts 10 ms late" experiment.
    """

    def __init__(self, params: TimelyParams,
                 initial_rates: Optional[Sequence[float]] = None,
                 initial_queue: float = 0.0,
                 line_rate: Optional[float] = None,
                 feedback_jitter: Callable[[float], float] = no_jitter,
                 mtu_packets: float = 1.0,
                 start_times: Optional[Sequence[float]] = None):
        self.params = params
        self.n = params.num_flows
        self.line_rate = params.capacity if line_rate is None else line_rate
        if initial_rates is None:
            self._initial_rates = np.full(self.n, params.fair_share)
        else:
            rates = np.asarray(initial_rates, dtype=float)
            if rates.shape != (self.n,):
                raise ValueError(
                    f"initial_rates must have shape ({self.n},), "
                    f"got {rates.shape}")
            if np.any(rates <= 0):
                raise ValueError("initial rates must be positive")
            self._initial_rates = rates
        if initial_queue < 0:
            raise ValueError(
                f"initial_queue must be >= 0, got {initial_queue}")
        self._initial_queue = float(initial_queue)
        self.feedback_jitter = feedback_jitter
        self.mtu_packets = float(mtu_packets)
        if start_times is None:
            self.start_times = np.zeros(self.n)
        else:
            starts = np.asarray(start_times, dtype=float)
            if starts.shape != (self.n,):
                raise ValueError(
                    f"start_times must have shape ({self.n},), "
                    f"got {starts.shape}")
            if np.any(starts < 0):
                raise ValueError("start times must be >= 0")
            self.start_times = starts
        # Built once: consulted on every derivative evaluation.
        self._gradient_sl = slice(1, 1 + self.n)
        self._rate_sl = slice(1 + self.n, 1 + 2 * self.n)
        self._always_active = not np.any(self.start_times > 0.0)

    # -- state vector layout -------------------------------------------------

    @property
    def queue_index(self) -> int:
        """Column index of the queue in the state vector."""
        return 0

    def gradient_slice(self) -> slice:
        """Columns holding the per-flow RTT gradients ``g_i``."""
        return self._gradient_sl

    def rate_slice(self) -> slice:
        """Columns holding the per-flow rates ``R_i``."""
        return self._rate_sl

    def initial_state(self) -> np.ndarray:
        state = np.empty(1 + 2 * self.n)
        state[self.queue_index] = self._initial_queue
        state[self.gradient_slice()] = 0.0
        state[self.rate_slice()] = self._initial_rates
        return state

    def state_labels(self) -> List[str]:
        labels = ["q"]
        labels += [f"g[{i}]" for i in range(self.n)]
        labels += [f"r[{i}]" for i in range(self.n)]
        return labels

    # -- dynamics ------------------------------------------------------------

    def update_intervals(self, rates: np.ndarray) -> np.ndarray:
        """Eq. 23: ``tau*_i = max(Seg / R_i, D_minRTT)`` per flow."""
        rates = np.maximum(rates, MIN_RATE)
        return np.maximum(self.params.segment / rates, self.params.min_rtt)

    def feedback_delay(self, queue: float, t: float) -> float:
        """Eq. 24: ``tau' = q/C + MTU/C + D_prop`` plus any jitter."""
        p = self.params
        base = queue / p.capacity + self.mtu_packets / p.capacity \
            + p.prop_delay
        return base + self.feedback_jitter(t)

    def rate_derivative(self, delayed_queue: float, gradients: np.ndarray,
                        rates: np.ndarray,
                        tau_star: np.ndarray) -> np.ndarray:
        """Eq. 21 following Algorithm 1's branch precedence."""
        p = self.params
        if delayed_queue < p.q_low:
            return self.params.delta / tau_star
        if delayed_queue > p.q_high:
            scale = 1.0 - p.q_high / delayed_queue
            return -(p.beta / tau_star) * scale * rates
        increase = self.params.delta / tau_star
        decrease = -(gradients * p.beta / tau_star) * rates
        if self.gradient_zero_increases:
            decreasing = gradients > 0.0
        else:
            decreasing = gradients >= 0.0
        return np.where(decreasing, decrease, increase)

    #: Algorithm 1 semantics (``g <= 0`` -> additive increase).  Set to
    #: False for the Eq. 28 variant (``g >= 0`` -> decrease).
    gradient_zero_increases: bool = True

    def active_flows(self, t: float) -> np.ndarray:
        """Boolean mask of flows whose start time has passed."""
        return t >= self.start_times

    def derivatives(self, t: float, state: np.ndarray,
                    history: UniformHistory) -> np.ndarray:
        p = self.params
        queue = state[self.queue_index]
        gradients = state[self._gradient_sl]
        rates = state[self._rate_sl]

        tau_star = self.update_intervals(rates)
        tau_fb = self.feedback_delay(queue, t)
        component = history.component
        delayed_queue = component(t - tau_fb, 0)

        # Eq. 20: queue integrates the rate excess of the *active*
        # flows, and cannot go negative.
        if self._always_active:
            active = None
            dq = float(np.sum(rates)) - p.capacity
        else:
            active = self.active_flows(t)
            dq = float(np.sum(rates[active])) - p.capacity
        if queue <= 0.0 and dq < 0.0:
            dq = 0.0

        # Eq. 22: EWMA'd normalized difference of two successive
        # (delayed) queue observations, one update interval apart.
        base = t - tau_fb
        older = np.array([component(base - tau_star[i], 0)
                          for i in range(self.n)])
        normalized_diff = (delayed_queue - older) / (p.capacity * p.min_rtt)
        dg = (p.ewma_alpha / tau_star) * (normalized_diff - gradients)

        dr = self.rate_derivative(delayed_queue, gradients, rates, tau_star)

        out = np.empty_like(state)
        out[self.queue_index] = dq
        if active is None:
            out[self._gradient_sl] = dg
            out[self._rate_sl] = dr
        else:
            out[self._gradient_sl] = np.where(active, dg, 0.0)
            out[self._rate_sl] = np.where(active, dr, 0.0)
        return out

    def clamp(self, state: np.ndarray) -> np.ndarray:
        state[self.queue_index] = max(state[self.queue_index], 0.0)
        np.clip(state[self.rate_slice()], MIN_RATE, self.line_rate,
                out=state[self.rate_slice()])
        return state


class ModifiedTimelyFluidModel(TimelyFluidModel):
    """The Eq. 28 variant: ``g >= 0`` decreases (Theorem 4's system).

    Identical trajectories in practice; exists so the fixed-point
    analysis (none vs. infinitely many) can target the exact system the
    corresponding theorem describes.
    """

    gradient_zero_increases = False
