"""Fixed-step integrator for the delay-differential fluid models.

scipy offers no delay-ODE solver, so we integrate the models with a
fixed-step method that records every accepted step into a
:class:`~repro.core.fluid.history.UniformHistory`; delayed terms are
linearly interpolated from that record.  This is the standard "method
of steps" construction for DDEs with delays larger than the step size.

Three stepping schemes are provided:

``euler``
    First order.  Robust for the non-smooth TIMELY right-hand side,
    whose rate law switches between four regimes (Eq. 21).
``heun``
    Second-order predictor/corrector; the default.  A good accuracy /
    cost balance given that the models' switching surfaces limit the
    attainable order anyway.
``rk4``
    Classic fourth order, for smooth regions and convergence testing.

The step size must be well below the smallest delay and time constant:
the paper's fastest dynamics are the 20-55 us update intervals, so the
default ``dt`` of 1 us resolves them comfortably.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.core.fluid.base import FluidModel, FluidTrace
from repro.core.fluid.history import UniformHistory
from repro.obs import metrics as _metrics
from repro.obs import spans as _spans

#: Default integration step, seconds.
DEFAULT_DT = 1e-6

#: State magnitude beyond which the integration counts as diverged
#: even while still finite.  The models' states are packets and
#: packets/second -- physically bounded around 1e7 -- so 1e12 only
#: trips on genuine blow-ups, well before float overflow turns them
#: into a late, uninformative ``inf``.
DEFAULT_DIVERGENCE_LIMIT = 1e12


@dataclass(frozen=True)
class IntegrationFailure:
    """Where and why an integration attempt diverged.

    Carried by :class:`IntegrationError` so callers (experiments,
    sweeps over unstable configurations) can triage programmatically
    instead of parsing an exception string.
    """

    step: int
    time: float
    state: np.ndarray
    cause: str
    method: str
    dt: float
    retries: int

    def __str__(self) -> str:
        return (f"integration diverged at t={self.time:.6g}s "
                f"(step {self.step}, method={self.method}, "
                f"dt={self.dt:g}, after {self.retries} halved-step "
                f"retries): {self.cause}; state={self.state}")


class IntegrationError(FloatingPointError):
    """Integration diverged even after halved-step retries.

    Subclasses ``FloatingPointError`` for compatibility with callers
    that guarded the old bare-exception behaviour; :attr:`failure`
    holds the structured :class:`IntegrationFailure`.
    """

    def __init__(self, failure: IntegrationFailure):
        self.failure = failure
        super().__init__(str(failure))

_STEPPERS = {}


def _register(name: str) -> Callable:
    def decorator(fn: Callable) -> Callable:
        _STEPPERS[name] = fn
        return fn
    return decorator


@_register("euler")
def _euler_step(model: FluidModel, t: float, y: np.ndarray, dt: float,
                history: UniformHistory) -> np.ndarray:
    return y + dt * model.derivatives(t, y, history)


@_register("heun")
def _heun_step(model: FluidModel, t: float, y: np.ndarray, dt: float,
               history: UniformHistory) -> np.ndarray:
    k1 = model.derivatives(t, y, history)
    predictor = model.clamp(y + dt * k1)
    k2 = model.derivatives(t + dt, predictor, history)
    return y + 0.5 * dt * (k1 + k2)


@_register("rk4")
def _rk4_step(model: FluidModel, t: float, y: np.ndarray, dt: float,
              history: UniformHistory) -> np.ndarray:
    half = 0.5 * dt
    k1 = model.derivatives(t, y, history)
    k2 = model.derivatives(t + half, model.clamp(y + half * k1), history)
    k3 = model.derivatives(t + half, model.clamp(y + half * k2), history)
    k4 = model.derivatives(t + dt, model.clamp(y + dt * k3), history)
    return y + (dt / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)


def available_methods() -> "list[str]":
    """Names accepted by :func:`integrate`'s ``method`` argument."""
    return sorted(_STEPPERS)


def integrate(model: FluidModel,
              t_end: float,
              dt: float = DEFAULT_DT,
              method: str = "heun",
              record_stride: int = 1,
              t_start: float = 0.0,
              initial_state: Optional[np.ndarray] = None,
              max_retries: int = 1,
              divergence_limit: Optional[float] =
              DEFAULT_DIVERGENCE_LIMIT,
              observer: Optional[Callable[[float, np.ndarray],
                                          None]] = None,
              observer_stride: Optional[int] = None,
              ) -> FluidTrace:
    """Integrate ``model`` from ``t_start`` to ``t_end``.

    Parameters
    ----------
    model:
        The fluid model to integrate.
    t_end:
        Final time, seconds.
    dt:
        Fixed step size, seconds.  Must be positive and smaller than
        the horizon.
    method:
        One of :func:`available_methods`.
    record_stride:
        Keep every n-th sample in the returned trace.  The internal
        history always records every step (the delayed lookups need
        it); this only thins the caller-facing output.
    t_start:
        Start time; the pre-history for ``t < t_start`` is the constant
        initial state.
    initial_state:
        Override for ``model.initial_state()`` -- used by experiments
        that restart a model from a perturbed fixed point.
    max_retries:
        On divergence (NaN/inf or ``divergence_limit`` exceeded), retry
        the whole integration with the step halved, this many times.
        Rescues fixed-step runs whose dt was marginally too coarse for
        a stiff transient; a genuinely unstable model still fails, as
        :class:`IntegrationError` carrying the structured
        :class:`IntegrationFailure` of the final attempt.  0 disables
        retrying.
    divergence_limit:
        Any state component exceeding this magnitude counts as
        divergence even while finite (catches blow-ups hundreds of
        steps before float overflow).  None checks finiteness only.
    observer:
        In-run snapshot hook: ``observer(t, state)`` is called with
        the accepted (clamped) state every ``observer_stride`` steps
        -- the fluid-model twin of the packet simulator's
        ``Simulator.sample_every``.  Health detectors stream from it
        while the integration runs, so a live ``watch`` sees
        pathologies as they develop instead of after the trace
        returns.  ``state`` is the integrator's working array; treat
        it as read-only and copy if retained.  None (the default)
        skips the hook entirely.  On a halved-step retry the observer
        is re-fed from ``t_start`` -- resettable consumers should
        clear their buffers in that case (``t`` going backwards is
        the signal).
    observer_stride:
        Steps between observer calls; defaults to ``record_stride``.

    Returns
    -------
    FluidTrace
        Sampled state trajectory, including the initial state.
    """
    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt}")
    if t_end <= t_start:
        raise ValueError(
            f"t_end ({t_end}) must exceed t_start ({t_start})")
    if record_stride < 1:
        raise ValueError(f"record_stride must be >= 1, got {record_stride}")
    if max_retries < 0:
        raise ValueError(f"max_retries must be >= 0, got {max_retries}")
    if observer_stride is None:
        observer_stride = record_stride
    if observer_stride < 1:
        raise ValueError(
            f"observer_stride must be >= 1, got {observer_stride}")
    try:
        stepper = _STEPPERS[method]
    except KeyError:
        raise ValueError(
            f"unknown method {method!r}; choose from {available_methods()}")

    if initial_state is None:
        initial = np.array(model.initial_state(), dtype=float)
    else:
        initial = np.array(initial_state, dtype=float)
    labels = model.state_labels()
    if initial.shape != (len(labels),):
        raise ValueError(
            f"initial state has shape {initial.shape}, expected "
            f"({len(labels)},) to match state_labels()")

    # Telemetry publishes once per integrate() call / retry / abort
    # -- aggregation points, never inside the stepping loop.  With
    # telemetry off these hit the inert null registry.
    registry = _metrics.get_registry()
    registry.counter("fluid.dde.integrations_total").inc()
    attempt_dt = dt
    with _spans.span("fluid.integrate"):
        for attempt in range(max_retries + 1):
            try:
                return _integrate_once(model, stepper, t_start, t_end,
                                       attempt_dt, record_stride,
                                       initial, labels, method,
                                       divergence_limit,
                                       retries=attempt,
                                       observer=observer,
                                       observer_stride=observer_stride)
            except IntegrationError as error:
                if attempt == max_retries:
                    registry.counter(
                        "fluid.dde.divergence_aborts_total").inc()
                    raise
                registry.counter("fluid.dde.step_retries").inc()
                # The run log (when telemetry is active) records
                # *where* the attempt diverged, not just that one
                # did -- crash capsules embed these events so a
                # replayed cell shows which t the fluid integration
                # struggled at.
                _emit_retry_event(error.failure, attempt_dt)
                attempt_dt *= 0.5
    raise AssertionError("unreachable")  # pragma: no cover


def _emit_retry_event(failure: IntegrationFailure,
                      attempt_dt: float) -> None:
    """Append a ``retry`` event for a halved-step re-attempt."""
    from repro.obs import telemetry as _telemetry

    bundle = _telemetry.current()
    if bundle is None:
        return
    try:
        bundle.run_log.retry(
            component="fluid.dde",
            t=failure.time, step=failure.step, dt=attempt_dt,
            next_dt=attempt_dt * 0.5, method=failure.method,
            cause=failure.cause, attempt=failure.retries + 1)
    except ValueError:
        pass  # run log already finished/closed


def _integrate_once(model: FluidModel, stepper: Callable, t_start: float,
                    t_end: float, dt: float, record_stride: int,
                    initial: np.ndarray, labels, method: str,
                    divergence_limit: Optional[float],
                    retries: int,
                    observer: Optional[Callable[[float, np.ndarray],
                                                None]] = None,
                    observer_stride: int = 1) -> FluidTrace:
    """One fixed-step pass; raises :class:`IntegrationError` on blow-up.

    The history buffer is preallocated for the whole horizon (the step
    count is known up front), and the returned trace is a strided copy
    of that same buffer -- stepping never re-records states it has
    already written into the history.
    """
    state = initial.copy()
    n_steps = int(round((t_end - t_start) / dt))
    history = UniformHistory(t_start, dt, state,
                             capacity=n_steps + 1)
    # A single abs-max distinguishes all divergence modes: NaN
    # propagates through max (numpy's max returns NaN if any entry
    # is), inf exceeds any finite limit, and a finite blow-up exceeds
    # the configured limit.  One reduction per step instead of two.
    limit = np.inf if divergence_limit is None else divergence_limit
    clamp = model.clamp
    append = history.append
    t = t_start
    for step in range(1, n_steps + 1):
        state = stepper(model, t, state, dt, history)
        state = clamp(state)
        magnitude = float(np.max(np.abs(state)))
        # NaN fails every comparison (so `> limit` won't catch it) and
        # inf must trip even when the limit itself is inf.
        if magnitude > limit or magnitude != magnitude \
                or magnitude == np.inf:
            if magnitude != magnitude or magnitude == np.inf:
                cause = "non-finite state (NaN or inf)"
            else:
                cause = (f"state magnitude {magnitude:.3g} exceeded "
                         f"divergence limit {limit:.3g}")
            _metrics.get_registry().counter(
                "fluid.dde.steps_total").inc(step)
            raise IntegrationError(IntegrationFailure(
                step=step, time=t + dt, state=state, cause=cause,
                method=method, dt=dt, retries=retries))
        append(state)
        t = t_start + step * dt
        if observer is not None and step % observer_stride == 0:
            observer(t, state)

    _metrics.get_registry().counter(
        "fluid.dde.steps_total").inc(n_steps)
    times, states = history.strided_view(record_stride)
    return FluidTrace(times, states, labels)
