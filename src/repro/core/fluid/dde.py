"""Fixed-step integrator for the delay-differential fluid models.

scipy offers no delay-ODE solver, so we integrate the models with a
fixed-step method that records every accepted step into a
:class:`~repro.core.fluid.history.UniformHistory`; delayed terms are
linearly interpolated from that record.  This is the standard "method
of steps" construction for DDEs with delays larger than the step size.

Three stepping schemes are provided:

``euler``
    First order.  Robust for the non-smooth TIMELY right-hand side,
    whose rate law switches between four regimes (Eq. 21).
``heun``
    Second-order predictor/corrector; the default.  A good accuracy /
    cost balance given that the models' switching surfaces limit the
    attainable order anyway.
``rk4``
    Classic fourth order, for smooth regions and convergence testing.

The step size must be well below the smallest delay and time constant:
the paper's fastest dynamics are the 20-55 us update intervals, so the
default ``dt`` of 1 us resolves them comfortably.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.core.fluid.base import FluidModel, FluidTrace
from repro.core.fluid.history import UniformHistory

#: Default integration step, seconds.
DEFAULT_DT = 1e-6

_STEPPERS = {}


def _register(name: str) -> Callable:
    def decorator(fn: Callable) -> Callable:
        _STEPPERS[name] = fn
        return fn
    return decorator


@_register("euler")
def _euler_step(model: FluidModel, t: float, y: np.ndarray, dt: float,
                history: UniformHistory) -> np.ndarray:
    return y + dt * model.derivatives(t, y, history)


@_register("heun")
def _heun_step(model: FluidModel, t: float, y: np.ndarray, dt: float,
               history: UniformHistory) -> np.ndarray:
    k1 = model.derivatives(t, y, history)
    predictor = model.clamp(y + dt * k1)
    k2 = model.derivatives(t + dt, predictor, history)
    return y + 0.5 * dt * (k1 + k2)


@_register("rk4")
def _rk4_step(model: FluidModel, t: float, y: np.ndarray, dt: float,
              history: UniformHistory) -> np.ndarray:
    half = 0.5 * dt
    k1 = model.derivatives(t, y, history)
    k2 = model.derivatives(t + half, model.clamp(y + half * k1), history)
    k3 = model.derivatives(t + half, model.clamp(y + half * k2), history)
    k4 = model.derivatives(t + dt, model.clamp(y + dt * k3), history)
    return y + (dt / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)


def available_methods() -> "list[str]":
    """Names accepted by :func:`integrate`'s ``method`` argument."""
    return sorted(_STEPPERS)


def integrate(model: FluidModel,
              t_end: float,
              dt: float = DEFAULT_DT,
              method: str = "heun",
              record_stride: int = 1,
              t_start: float = 0.0,
              initial_state: Optional[np.ndarray] = None,
              ) -> FluidTrace:
    """Integrate ``model`` from ``t_start`` to ``t_end``.

    Parameters
    ----------
    model:
        The fluid model to integrate.
    t_end:
        Final time, seconds.
    dt:
        Fixed step size, seconds.  Must be positive and smaller than
        the horizon.
    method:
        One of :func:`available_methods`.
    record_stride:
        Keep every n-th sample in the returned trace.  The internal
        history always records every step (the delayed lookups need
        it); this only thins the caller-facing output.
    t_start:
        Start time; the pre-history for ``t < t_start`` is the constant
        initial state.
    initial_state:
        Override for ``model.initial_state()`` -- used by experiments
        that restart a model from a perturbed fixed point.

    Returns
    -------
    FluidTrace
        Sampled state trajectory, including the initial state.
    """
    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt}")
    if t_end <= t_start:
        raise ValueError(
            f"t_end ({t_end}) must exceed t_start ({t_start})")
    if record_stride < 1:
        raise ValueError(f"record_stride must be >= 1, got {record_stride}")
    try:
        stepper = _STEPPERS[method]
    except KeyError:
        raise ValueError(
            f"unknown method {method!r}; choose from {available_methods()}")

    if initial_state is None:
        state = np.array(model.initial_state(), dtype=float)
    else:
        state = np.array(initial_state, dtype=float)
    labels = model.state_labels()
    if state.shape != (len(labels),):
        raise ValueError(
            f"initial state has shape {state.shape}, expected "
            f"({len(labels)},) to match state_labels()")

    history = UniformHistory(t_start, dt, state)
    n_steps = int(round((t_end - t_start) / dt))

    recorded_times = [t_start]
    recorded_states = [state.copy()]
    t = t_start
    for step in range(1, n_steps + 1):
        state = stepper(model, t, state, dt, history)
        state = model.clamp(state)
        if not np.all(np.isfinite(state)):
            raise FloatingPointError(
                f"integration diverged at t={t + dt:.6g}s "
                f"(method={method}, dt={dt:g}); state={state}")
        history.append(state)
        t = t_start + step * dt
        if step % record_stride == 0:
            recorded_times.append(t)
            recorded_states.append(state.copy())

    return FluidTrace(np.array(recorded_times),
                      np.array(recorded_states), labels)
