"""DCQCN fluid model -- Figure 1 / Equations 3-7 of the paper.

The model tracks, for each of ``N`` flows, the DCTCP-style reduction
factor ``alpha``, the target rate ``R_T`` and the current rate ``R_C``,
plus the shared bottleneck queue ``q``.  All rate-update terms are
driven by state delayed by the control-loop latency ``tau*``: the
marking probability ``p(t - tau*)`` (computed from the delayed queue via
the RED profile, Eq. 3) and the delayed rate ``R_C(t - tau*)``.

The QCN-style event-rate algebra (the paper's ``a, b, c, d, e`` factors
from Eq. 12) is implemented in :func:`qcn_event_rates` with numerically
safe limits:

* byte-counter events fire at rate ``R*b -> R/B`` as ``p -> 0``;
* timer events fire at rate ``R*d -> 1/T`` as ``p -> 0``;
* events past the ``F`` fast-recovery stages carry the extra
  ``(1-p)^{F B}`` / ``(1-p)^{F T R}`` survival factors (``c``, ``e``).

Every rate-increase event performs the QCN averaging step
``R_C <- (R_C + R_T)/2`` (hence the ``(R_T - R_C)/2`` terms in Eq. 7),
and only post-fast-recovery events add ``R_AI`` to the target rate
(Eq. 6).
"""

from __future__ import annotations

from typing import Callable, List, NamedTuple, Optional, Sequence

import numpy as np

from repro.core.fluid.base import FluidModel
from repro.core.fluid.history import UniformHistory
from repro.core.fluid.jitter import no_jitter
from repro.core.params import DCQCNParams

#: Floor on flow rates (packets/s) to keep the event-rate algebra finite.
MIN_RATE = 1.0

#: Marking probabilities are clamped below 1 so ``log1p(-p)`` stays finite.
_P_CEIL = 1.0 - 1e-12


class QCNEventRates(NamedTuple):
    """Per-flow event rates derived from the paper's a-e factors.

    Attributes
    ----------
    mark_fraction:
        ``a = 1 - (1-p)^{tau R}``: probability that at least one packet
        is marked in a CNP window, i.e. the fraction of windows that
        deliver a CNP.
    byte_rate:
        Rate of byte-counter expirations, ``R * b`` (events/s).
    byte_ai_rate:
        Byte-counter expirations past fast recovery, ``R * c``.
    timer_rate:
        Rate of timer expirations, ``R * d`` (events/s).
    timer_ai_rate:
        Timer expirations past fast recovery, ``R * e``.
    """

    mark_fraction: np.ndarray
    byte_rate: np.ndarray
    byte_ai_rate: np.ndarray
    timer_rate: np.ndarray
    timer_ai_rate: np.ndarray


def survival_exponent(p: float, count: "np.ndarray | float") -> np.ndarray:
    """``(1-p)^count`` computed stably for large counts.

    ``count`` is a number of packets (possibly huge, e.g. ``F*B`` with a
    10 MB byte counter); the direct power underflows gracefully via the
    exp/log form.
    """
    if p <= 0.0:
        return np.ones_like(np.asarray(count, dtype=float))
    p = min(p, _P_CEIL)
    return np.exp(np.asarray(count, dtype=float) * np.log1p(-p))


def _event_rate(p: float, rate: np.ndarray, window_packets: np.ndarray,
                zero_p_rate: np.ndarray) -> np.ndarray:
    """``rate * p / ((1-p)^{-window} - 1)`` with its ``p -> 0`` limit.

    ``window_packets`` is the inter-event packet count (``B`` for the
    byte counter, ``T*R`` for the timer); ``zero_p_rate`` is the exact
    limit of the expression as ``p -> 0`` (``R/B`` resp. ``1/T``).
    """
    if p <= 0.0:
        return np.asarray(zero_p_rate, dtype=float).copy()
    p = min(p, _P_CEIL)
    exponent = -np.asarray(window_packets, dtype=float) * np.log1p(-p)
    out = np.empty_like(exponent)
    tiny = exponent < 1e-12
    with np.errstate(over="ignore"):
        # Overflow to +inf is the intended limit: a huge inter-event
        # exponent means the event (an unmarked window of that many
        # packets) essentially never happens, so the rate is ~0.
        denominator = np.expm1(exponent[~tiny])
        out[~tiny] = p * np.asarray(rate, dtype=float)[~tiny] / denominator
    out[tiny] = np.asarray(zero_p_rate, dtype=float)[tiny]
    return out


def qcn_event_rates(p: float, delayed_rate: np.ndarray,
                    params: DCQCNParams) -> QCNEventRates:
    """Evaluate the Eq. 12 factors as event rates for each flow.

    Parameters
    ----------
    p:
        Marking probability observed ``tau*`` ago (scalar, shared).
    delayed_rate:
        Per-flow ``R_C(t - tau*)`` in packets/s.
    params:
        DCQCN parameter set supplying ``B``, ``T``, ``F``, ``tau``.
    """
    rate = np.maximum(np.asarray(delayed_rate, dtype=float), MIN_RATE)
    f_steps = float(params.fast_recovery_steps)

    mark_fraction = -np.expm1(
        params.tau * rate * np.log1p(-min(max(p, 0.0), _P_CEIL))
    ) if p > 0.0 else np.zeros_like(rate)

    byte_window = np.full_like(rate, params.byte_counter)
    byte_rate = _event_rate(p, rate, byte_window, rate / params.byte_counter)
    byte_ai_rate = byte_rate * survival_exponent(
        p, f_steps * params.byte_counter)

    timer_window = params.timer * rate
    timer_rate = _event_rate(p, rate, timer_window,
                             np.full_like(rate, 1.0 / params.timer))
    timer_ai_rate = timer_rate * survival_exponent(
        p, f_steps * params.timer * rate)

    return QCNEventRates(mark_fraction, byte_rate, byte_ai_rate,
                         timer_rate, timer_ai_rate)


class DCQCNFluidModel(FluidModel):
    """The Fig. 1 delay-ODE system for ``N`` individually-tracked flows.

    State layout: ``[q, alpha_1..alpha_N, rt_1..rt_N, rc_1..rc_N]``.

    Parameters
    ----------
    params:
        DCQCN configuration (capacity, RED profile, timers...).
    initial_rates:
        Optional per-flow starting rates, packets/s.  Defaults to line
        rate for every flow -- "DCQCN flows always start at line rate"
        (Section 3.1).
    initial_queue:
        Starting queue depth, packets (default empty).
    line_rate:
        Sender NIC speed, packets/s; rates are clamped to it.  Defaults
        to the bottleneck capacity, matching the paper's single-switch
        validation topology.
    marking_delay:
        Extra delay (seconds) between the queue and the marking
        decision.  Zero reproduces egress marking, where the mark
        reflects the queue at packet departure; setting it to a mean
        queuing delay emulates ingress marking (Fig. 17).
    feedback_jitter:
        Callable ``t -> extra delay (s)`` added to the control-loop
        delay ``tau*`` -- the Fig. 20 experiment.  For ECN the jitter
        only makes the (still correct) mark arrive later.
    start_times:
        Per-flow activation times, seconds.  Before its start a flow
        contributes nothing to the queue and its state is frozen; at
        activation it enters at its configured initial rate (line
        rate by default -- how DCQCN flows arrive).
    extend_red:
        Use the smooth-RED idealization: the marking ramp continues
        past ``pmax`` (clipped at 1) instead of jumping to 1 at
        ``kmax``.  Configurations whose Eq. 11 fixed point has
        ``p* > pmax`` (large N) sit exactly on the physical profile's
        cliff and chatter against it regardless of delay; the paper's
        fluid stability results (Fig. 4) presume the smooth profile
        the linearized analysis uses.
    """

    def __init__(self, params: DCQCNParams,
                 initial_rates: Optional[Sequence[float]] = None,
                 initial_queue: float = 0.0,
                 line_rate: Optional[float] = None,
                 marking_delay: float = 0.0,
                 feedback_jitter: Callable[[float], float] = no_jitter,
                 extend_red: bool = False,
                 start_times: Optional[Sequence[float]] = None):
        self.params = params
        self.n = params.num_flows
        self.line_rate = params.capacity if line_rate is None else line_rate
        if initial_rates is None:
            self._initial_rates = np.full(self.n, self.line_rate)
        else:
            rates = np.asarray(initial_rates, dtype=float)
            if rates.shape != (self.n,):
                raise ValueError(
                    f"initial_rates must have shape ({self.n},), "
                    f"got {rates.shape}")
            if np.any(rates <= 0):
                raise ValueError("initial rates must be positive")
            self._initial_rates = rates
        if initial_queue < 0:
            raise ValueError(
                f"initial_queue must be >= 0, got {initial_queue}")
        self._initial_queue = float(initial_queue)
        if marking_delay < 0:
            raise ValueError(
                f"marking_delay must be >= 0, got {marking_delay}")
        self.marking_delay = float(marking_delay)
        self.feedback_jitter = feedback_jitter
        self.extend_red = extend_red
        if start_times is None:
            self.start_times = np.zeros(self.n)
        else:
            starts = np.asarray(start_times, dtype=float)
            if starts.shape != (self.n,):
                raise ValueError(
                    f"start_times must have shape ({self.n},), "
                    f"got {starts.shape}")
            if np.any(starts < 0):
                raise ValueError("start times must be >= 0")
            self.start_times = starts
        # The slices and the all-flows-active flag are consulted on
        # every derivative evaluation (four per RK4 step); build them
        # once here instead of re-deriving them per call.
        self._alpha_sl = slice(1, 1 + self.n)
        self._rt_sl = slice(1 + self.n, 1 + 2 * self.n)
        self._rc_sl = slice(1 + 2 * self.n, 1 + 3 * self.n)
        self._always_active = not np.any(self.start_times > 0.0)

    # -- state vector layout -------------------------------------------------

    @property
    def queue_index(self) -> int:
        """Column index of the queue in the state vector."""
        return 0

    def alpha_slice(self) -> slice:
        """Columns holding the per-flow ``alpha`` values."""
        return self._alpha_sl

    def rt_slice(self) -> slice:
        """Columns holding the per-flow target rates ``R_T``."""
        return self._rt_sl

    def rc_slice(self) -> slice:
        """Columns holding the per-flow current rates ``R_C``."""
        return self._rc_sl

    def initial_state(self) -> np.ndarray:
        state = np.empty(1 + 3 * self.n)
        state[self.queue_index] = self._initial_queue
        state[self.alpha_slice()] = 1.0  # DCQCN initializes alpha to 1
        state[self.rt_slice()] = self._initial_rates
        state[self.rc_slice()] = self._initial_rates
        return state

    def state_labels(self) -> List[str]:
        labels = ["q"]
        labels += [f"alpha[{i}]" for i in range(self.n)]
        labels += [f"rt[{i}]" for i in range(self.n)]
        labels += [f"rc[{i}]" for i in range(self.n)]
        return labels

    # -- dynamics ------------------------------------------------------------

    def marking_probability(self, t: float,
                            history: UniformHistory) -> float:
        """``p`` as seen by senders at time ``t``: RED of the delayed queue.

        With egress marking the mark reflects the queue ``tau*`` ago
        (propagation only); ingress-style marking adds
        ``marking_delay`` of queue staleness on top (Section 5.2).
        """
        lag = (self.params.tau_star + self.marking_delay
               + self.feedback_jitter(t))
        delayed_queue = history.component(t - lag, self.queue_index)
        red = self.params.red
        if self.extend_red:
            return min(max((delayed_queue - red.kmin) * red.slope, 0.0),
                       1.0)
        return red.marking_probability(delayed_queue)

    def derivatives(self, t: float, state: np.ndarray,
                    history: UniformHistory) -> np.ndarray:
        p = self.params
        rc_sl = self._rc_sl
        queue = state[self.queue_index]
        alpha = state[self._alpha_sl]
        rt = state[self._rt_sl]
        rc = state[rc_sl]

        mark_p = self.marking_probability(t, history)
        # The delayed rate shares the (possibly jittered) feedback path:
        # the CNP describes packets sent one control-loop delay ago.
        # Only the R_C block of the delayed state is needed, so the
        # interpolation is restricted to those columns.
        delayed_rc = history.interpolate(
            t - p.tau_star - self.feedback_jitter(t), rc_sl)
        delayed_rc = np.maximum(delayed_rc, MIN_RATE)

        events = qcn_event_rates(mark_p, delayed_rc, p)

        # Eq. 4: queue integrates the active flows' excess arrival
        # rate; it cannot drain below empty.
        if self._always_active:
            active = None
            dq = float(np.sum(rc)) - p.capacity
        else:
            active = t >= self.start_times
            dq = float(np.sum(rc[active])) - p.capacity
        if queue <= 0.0 and dq < 0.0:
            dq = 0.0

        # Eq. 5: alpha chases the delayed marked-window fraction for the
        # tau'-long CNP observation window.
        alpha_target = -np.expm1(
            p.tau_prime * delayed_rc * np.log1p(-min(mark_p, _P_CEIL))
        ) if mark_p > 0.0 else np.zeros(self.n)
        dalpha = (p.g / p.tau_prime) * (alpha_target - alpha)

        # Eq. 6: target rate forgets toward R_C on CNPs, gains R_AI on
        # post-fast-recovery byte/timer events.
        drt = (-(rt - rc) / p.tau * events.mark_fraction
               + p.rate_ai * (events.byte_ai_rate + events.timer_ai_rate))

        # Eq. 7: multiplicative decrease on CNPs plus the QCN averaging
        # (R_C + R_T)/2 on every byte/timer event.
        drc = (-(rc * alpha) / (2.0 * p.tau) * events.mark_fraction
               + (rt - rc) / 2.0 * (events.byte_rate + events.timer_rate))

        out = np.empty_like(state)
        out[self.queue_index] = dq
        if active is None:
            out[self._alpha_sl] = dalpha
            out[self._rt_sl] = drt
            out[rc_sl] = drc
        else:
            out[self._alpha_sl] = np.where(active, dalpha, 0.0)
            out[self._rt_sl] = np.where(active, drt, 0.0)
            out[rc_sl] = np.where(active, drc, 0.0)
        return out

    def clamp(self, state: np.ndarray) -> np.ndarray:
        state[self.queue_index] = max(state[self.queue_index], 0.0)
        np.clip(state[self.alpha_slice()], 0.0, 1.0,
                out=state[self.alpha_slice()])
        np.clip(state[self.rt_slice()], MIN_RATE, self.line_rate,
                out=state[self.rt_slice()])
        np.clip(state[self.rc_slice()], MIN_RATE, self.line_rate,
                out=state[self.rc_slice()])
        return state
