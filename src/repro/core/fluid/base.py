"""Common interface for the fluid models and their integration traces.

Every fluid model in this package (DCQCN, TIMELY, patched TIMELY, and
the PI variants) implements :class:`FluidModel`: it owns a parameter
set, defines an initial state vector, and evaluates the delayed
right-hand side given a :class:`~repro.core.fluid.history.UniformHistory`
of past states.  The integrator in :mod:`repro.core.fluid.dde` drives
any such model and returns a :class:`FluidTrace`.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.fluid.history import UniformHistory


class FluidModel:
    """Delay-ODE system ``dy/dt = f(t, y, history)``.

    Subclasses must implement :meth:`initial_state`,
    :meth:`derivatives`, and :meth:`state_labels`.  ``clamp`` may be
    overridden to enforce physical constraints (non-negative queues and
    rates) after each step; the default is the identity.
    """

    def initial_state(self) -> np.ndarray:
        """State vector at t=0 (also the constant pre-history)."""
        raise NotImplementedError

    def derivatives(self, t: float, state: np.ndarray,
                    history: UniformHistory) -> np.ndarray:
        """Evaluate the right-hand side at time ``t``.

        ``history`` resolves delayed terms such as ``p(t - tau*)``;
        implementations must not mutate ``state``.
        """
        raise NotImplementedError

    def state_labels(self) -> List[str]:
        """Human-readable name for each state component, in order."""
        raise NotImplementedError

    def clamp(self, state: np.ndarray) -> np.ndarray:
        """Project the state back into its physical domain (in place ok)."""
        return state


class FluidTrace:
    """Time series produced by integrating a :class:`FluidModel`.

    Attributes
    ----------
    times:
        1-D array of sample times (seconds).
    states:
        2-D array, one row per sample, one column per state component.
    labels:
        Column names matching :meth:`FluidModel.state_labels`.
    """

    def __init__(self, times: np.ndarray, states: np.ndarray,
                 labels: Sequence[str]):
        times = np.asarray(times, dtype=float)
        states = np.asarray(states, dtype=float)
        if states.shape[0] != times.shape[0]:
            raise ValueError(
                f"times ({times.shape[0]}) and states ({states.shape[0]}) "
                "row counts differ")
        if states.shape[1] != len(labels):
            raise ValueError(
                f"states has {states.shape[1]} columns but "
                f"{len(labels)} labels were given")
        self.times = times
        self.states = states
        self.labels = list(labels)
        self._index = {label: i for i, label in enumerate(self.labels)}
        if len(self._index) != len(self.labels):
            raise ValueError("state labels must be unique")

    def __len__(self) -> int:
        return self.times.shape[0]

    def column(self, label: str) -> np.ndarray:
        """The full time series of one state component."""
        try:
            idx = self._index[label]
        except KeyError:
            raise KeyError(
                f"unknown state label {label!r}; have {self.labels}")
        return self.states[:, idx]

    def final(self, label: str) -> float:
        """The last recorded value of one component."""
        return float(self.column(label)[-1])

    def tail(self, label: str, window: float) -> np.ndarray:
        """Samples of ``label`` within the final ``window`` seconds."""
        cutoff = self.times[-1] - window
        mask = self.times >= cutoff
        return self.column(label)[mask]

    def tail_mean(self, label: str, window: float) -> float:
        """Mean of a component over the final ``window`` seconds."""
        values = self.tail(label, window)
        return float(np.mean(values))

    def tail_std(self, label: str, window: float) -> float:
        """Standard deviation over the final ``window`` seconds.

        Used by the stability experiments: an unstable (limit-cycling)
        system keeps a large tail standard deviation, a stable one
        decays toward zero.
        """
        values = self.tail(label, window)
        return float(np.std(values))

    def subsample(self, stride: int) -> "FluidTrace":
        """A decimated copy keeping every ``stride``-th sample."""
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        return FluidTrace(self.times[::stride], self.states[::stride],
                          self.labels)

    def save(self, path) -> None:
        """Persist the trace as a compressed ``.npz`` archive.

        Long integrations (the 0.5 s PI runs take minutes) are worth
        keeping; reload with :meth:`load`.
        """
        np.savez_compressed(path, times=self.times, states=self.states,
                            labels=np.array(self.labels, dtype=object))

    @classmethod
    def load(cls, path) -> "FluidTrace":
        """Reload a trace written by :meth:`save`."""
        with np.load(path, allow_pickle=True) as archive:
            return cls(archive["times"], archive["states"],
                       [str(label) for label in archive["labels"]])
