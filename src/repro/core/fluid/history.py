"""Dense state history for delay-differential equations.

The fluid models of the paper are *delay* differential equations: the
DCQCN right-hand side reads marking probability ``p(t - tau*)`` and rate
``R_C(t - tau*)`` (Fig. 1), and TIMELY reads queue lengths at
``t - tau'`` and ``t - tau' - tau*`` where ``tau'`` itself depends on
the current queue (Eq. 24).  The integrator therefore records every
accepted step, and models look up past state through a
:class:`UniformHistory`.

The history exploits the integrator's uniform step size: lookup is an
O(1) index computation plus linear interpolation, instead of a binary
search.  Queries earlier than the start time return the initial state
(constant pre-history), which matches the paper's simulations where
flows start with fixed initial rates and an empty queue.
"""

from __future__ import annotations

import numpy as np


class UniformHistory:
    """Record of state vectors on a uniform time grid, linearly interpolated.

    Parameters
    ----------
    t0:
        Time of the first sample.
    dt:
        Grid spacing; every appended sample is assumed to be ``dt``
        after the previous one.
    initial_state:
        State vector at ``t0``; also used as the constant pre-history
        for queries at ``t < t0``.
    """

    def __init__(self, t0: float, dt: float, initial_state: np.ndarray):
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        self._t0 = float(t0)
        self._dt = float(dt)
        state = np.asarray(initial_state, dtype=float)
        if state.ndim != 1:
            raise ValueError("initial_state must be a 1-D vector")
        self._dim = state.shape[0]
        self._capacity = 1024
        self._data = np.empty((self._capacity, self._dim), dtype=float)
        self._data[0] = state
        self._count = 1

    @property
    def t0(self) -> float:
        """Time of the first recorded sample."""
        return self._t0

    @property
    def dt(self) -> float:
        """Uniform spacing between recorded samples."""
        return self._dt

    @property
    def dim(self) -> int:
        """Dimension of the state vector."""
        return self._dim

    @property
    def latest_time(self) -> float:
        """Time of the most recently appended sample."""
        return self._t0 + (self._count - 1) * self._dt

    def __len__(self) -> int:
        return self._count

    def append(self, state: np.ndarray) -> None:
        """Record the state at the next grid point."""
        if self._count == self._capacity:
            # Grow geometrically; copy only when capacity is exhausted.
            self._capacity *= 2
            grown = np.empty((self._capacity, self._dim), dtype=float)
            grown[:self._count] = self._data[:self._count]
            self._data = grown
        self._data[self._count] = state
        self._count += 1

    def __call__(self, t: float) -> np.ndarray:
        """State at time ``t``; constant before ``t0``, clamped after the end.

        Values between grid points are linearly interpolated.  Clamping
        at the newest sample lets Runge-Kutta stages evaluate delayed
        terms that land (by at most one step) past the recorded history;
        with delays >= dt this clamp is exact to first order.
        """
        offset = (t - self._t0) / self._dt
        if offset <= 0.0:
            return self._data[0].copy()
        last = self._count - 1
        if offset >= last:
            return self._data[last].copy()
        lo = int(offset)
        frac = offset - lo
        if frac == 0.0:
            return self._data[lo].copy()
        return (1.0 - frac) * self._data[lo] + frac * self._data[lo + 1]

    def component(self, t: float, index: int) -> float:
        """Scalar lookup of one state component at time ``t``.

        Cheaper than ``self(t)[index]`` because it avoids building the
        full interpolated vector; the DCQCN model calls this in its
        inner loop for the delayed queue value.
        """
        offset = (t - self._t0) / self._dt
        if offset <= 0.0:
            return float(self._data[0, index])
        last = self._count - 1
        if offset >= last:
            return float(self._data[last, index])
        lo = int(offset)
        frac = offset - lo
        column = self._data[:, index]
        if frac == 0.0:
            return float(column[lo])
        return float((1.0 - frac) * column[lo] + frac * column[lo + 1])

    def as_arrays(self) -> "tuple[np.ndarray, np.ndarray]":
        """Return ``(times, states)`` copies of the full recorded history."""
        times = self._t0 + self._dt * np.arange(self._count)
        return times, self._data[:self._count].copy()
