"""Dense state history for delay-differential equations.

The fluid models of the paper are *delay* differential equations: the
DCQCN right-hand side reads marking probability ``p(t - tau*)`` and rate
``R_C(t - tau*)`` (Fig. 1), and TIMELY reads queue lengths at
``t - tau'`` and ``t - tau' - tau*`` where ``tau'`` itself depends on
the current queue (Eq. 24).  The integrator therefore records every
accepted step, and models look up past state through a
:class:`UniformHistory`.

The history exploits the integrator's uniform step size: lookup is an
O(1) index computation plus linear interpolation, instead of a binary
search.  Queries earlier than the start time return the initial state
(constant pre-history), which matches the paper's simulations where
flows start with fixed initial rates and an empty queue.

Storage is a single preallocated 2-D ring of rows.  The integrator
knows its step count up front and passes ``capacity`` so the buffer is
sized exactly once; an unsized history still grows geometrically.  The
lookup paths index the buffer directly -- they run up to four times
per RK4 step, every step, and are the hottest lines of the fluid
experiments.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

#: Default initial buffer size (rows) when no capacity hint is given.
_DEFAULT_CAPACITY = 1024


class UniformHistory:
    """Record of state vectors on a uniform time grid, linearly interpolated.

    Parameters
    ----------
    t0:
        Time of the first sample.
    dt:
        Grid spacing; every appended sample is assumed to be ``dt``
        after the previous one.
    initial_state:
        State vector at ``t0``; also used as the constant pre-history
        for queries at ``t < t0``.
    capacity:
        Optional total row count to preallocate (including the initial
        sample).  Fixed-step integrators know this exactly
        (``n_steps + 1``); sizing the buffer once removes every
        grow-and-copy from the stepping loop.
    """

    __slots__ = ("_t0", "_dt", "_dim", "_capacity", "_data",
                 "_count")

    def __init__(self, t0: float, dt: float, initial_state: np.ndarray,
                 capacity: Optional[int] = None):
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        self._t0 = float(t0)
        self._dt = float(dt)
        state = np.asarray(initial_state, dtype=float)
        if state.ndim != 1:
            raise ValueError("initial_state must be a 1-D vector")
        self._dim = state.shape[0]
        if capacity is None:
            capacity = _DEFAULT_CAPACITY
        elif capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = int(capacity)
        self._data = np.empty((self._capacity, self._dim), dtype=float)
        self._data[0] = state
        self._count = 1

    @property
    def t0(self) -> float:
        """Time of the first recorded sample."""
        return self._t0

    @property
    def dt(self) -> float:
        """Uniform spacing between recorded samples."""
        return self._dt

    @property
    def dim(self) -> int:
        """Dimension of the state vector."""
        return self._dim

    @property
    def latest_time(self) -> float:
        """Time of the most recently appended sample."""
        return self._t0 + (self._count - 1) * self._dt

    def __len__(self) -> int:
        return self._count

    def append(self, state: np.ndarray) -> None:
        """Record the state at the next grid point."""
        count = self._count
        if count == self._capacity:
            # Grow geometrically; only reached when the caller gave no
            # (or too small a) capacity hint.
            self._capacity *= 2
            grown = np.empty((self._capacity, self._dim), dtype=float)
            grown[:count] = self._data[:count]
            self._data = grown
        self._data[count] = state
        self._count = count + 1

    def __call__(self, t: float) -> np.ndarray:
        """State at time ``t``; constant before ``t0``, clamped after the end.

        Values between grid points are linearly interpolated.  Clamping
        at the newest sample lets Runge-Kutta stages evaluate delayed
        terms that land (by at most one step) past the recorded history;
        with delays >= dt this clamp is exact to first order.
        """
        data = self._data
        offset = (t - self._t0) / self._dt
        if offset <= 0.0:
            return data[0].copy()
        last = self._count - 1
        if offset >= last:
            return data[last].copy()
        lo = int(offset)
        frac = offset - lo
        if frac == 0.0:
            return data[lo].copy()
        return (1.0 - frac) * data[lo] + frac * data[lo + 1]

    def interpolate(self, t: float, columns: slice) -> np.ndarray:
        """Interpolated lookup restricted to a column slice.

        The multi-flow models only need a few components of the
        delayed state (e.g. the ``R_C`` block); interpolating just
        those columns skips work proportional to the untouched part of
        the state vector.  Semantics match ``self(t)[columns]``
        exactly, including the pre-history and end clamps.
        """
        data = self._data
        offset = (t - self._t0) / self._dt
        if offset <= 0.0:
            return data[0, columns].copy()
        last = self._count - 1
        if offset >= last:
            return data[last, columns].copy()
        lo = int(offset)
        frac = offset - lo
        if frac == 0.0:
            return data[lo, columns].copy()
        return ((1.0 - frac) * data[lo, columns]
                + frac * data[lo + 1, columns])

    def component(self, t: float, index: int) -> float:
        """Scalar lookup of one state component at time ``t``.

        Cheaper than ``self(t)[index]`` because it avoids building the
        full interpolated vector; the DCQCN model calls this in its
        inner loop for the delayed queue value.
        """
        data = self._data
        offset = (t - self._t0) / self._dt
        if offset <= 0.0:
            return float(data[0, index])
        last = self._count - 1
        if offset >= last:
            return float(data[last, index])
        lo = int(offset)
        frac = offset - lo
        if frac == 0.0:
            return float(data[lo, index])
        return float((1.0 - frac) * data[lo, index]
                     + frac * data[lo + 1, index])

    def as_arrays(self) -> "tuple[np.ndarray, np.ndarray]":
        """Return ``(times, states)`` copies of the full recorded history."""
        times = self._t0 + self._dt * np.arange(self._count)
        return times, self._data[:self._count].copy()

    def strided_view(self, stride: int) -> "tuple[np.ndarray, np.ndarray]":
        """``(times, states)`` of every ``stride``-th sample, as copies.

        Lets the integrator hand a thinned trace to the caller without
        having re-recorded anything during stepping: the history *is*
        the trace.
        """
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        indices = np.arange(0, self._count, stride)
        times = self._t0 + self._dt * indices
        return times, self._data[indices].copy()
