"""TIMELY with measurement noise -- the paper's burst-pacing conjecture.

Section 4.2: per-burst pacing "introduces enough 'noise' to
de-correlate the flows, and this appears to lead the system to a
relatively stable fixed point.  We attempted to mathematically prove
that per-burst pacing would lead to a unique fixed point, but were
unable to do so."

This model isolates the conjectured mechanism: take the plain TIMELY
fluid model (whose gradient-only feedback freezes any rate asymmetry,
Theorem 4) and inject independent zero-mean per-flow noise into each
flow's RTT *measurement* -- exactly what colliding bursts do to real
RTT samples.  The noise enters the gradient dynamics (Eq. 22) the way
a queue-measurement error would.

The ``ext_noise_decorrelation`` experiment shows the effect the paper
observed in Fig. 10(a): without noise the 7/3 Gbps asymmetry persists
indefinitely; with burst-scale noise the flows random-walk toward
(and around) the fair share.  This is evidence for, not a proof of,
the conjecture -- matching the paper's epistemic state.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.fluid.history import UniformHistory
from repro.core.fluid.jitter import JitterProcess
from repro.core.fluid.timely import TimelyFluidModel
from repro.core.params import TimelyParams


class NoisyTimelyFluidModel(TimelyFluidModel):
    """TIMELY fluid model with per-flow RTT measurement noise.

    Parameters
    ----------
    params:
        TIMELY configuration.
    noise_amplitude_packets:
        Half-width of the zero-mean uniform measurement noise, in
        packets of apparent queue (a colliding Seg-sized burst
        perturbs the sampled RTT by up to ~Seg packets of queueing).
    noise_interval:
        How often each flow's noise re-draws -- roughly one RTT
        sample period.
    seed:
        Base seed; each flow gets an independent stream.
    """

    def __init__(self, params: TimelyParams,
                 noise_amplitude_packets: float,
                 noise_interval: float = 30e-6,
                 seed: int = 0,
                 initial_rates: Optional[Sequence[float]] = None,
                 **kwargs):
        super().__init__(params, initial_rates=initial_rates, **kwargs)
        if noise_amplitude_packets < 0:
            raise ValueError(
                f"noise amplitude must be >= 0, got "
                f"{noise_amplitude_packets}")
        self.noise_amplitude = float(noise_amplitude_packets)
        # Uniform[0, 2A] shifted to zero-mean Uniform[-A, A].
        self._noise = [
            JitterProcess(2.0 * self.noise_amplitude,
                          resample_interval=noise_interval,
                          seed=seed + i)
            for i in range(self.n)
        ]

    def measurement_noise(self, t: float) -> np.ndarray:
        """Zero-mean apparent-queue error per flow, packets."""
        return np.array([process(t) - self.noise_amplitude
                         for process in self._noise])

    def derivatives(self, t: float, state: np.ndarray,
                    history: UniformHistory) -> np.ndarray:
        out = super().derivatives(t, state, history)
        if self.noise_amplitude == 0.0:
            return out
        p = self.params
        rates = state[self.rate_slice()]
        tau_star = self.update_intervals(rates)
        # The noise perturbs the sampled queue difference in Eq. 22.
        perturbation = (p.ewma_alpha / tau_star) \
            * self.measurement_noise(t) / (p.capacity * p.min_rtt)
        active = self.active_flows(t)
        out[self.gradient_slice()] += np.where(active, perturbation,
                                               0.0)
        return out
