"""The paper's analytic core.

* :mod:`repro.core.params` -- protocol parameter sets with the paper's
  defaults.
* :mod:`repro.core.fluid` -- delay-ODE fluid models and their
  integrator.
* :mod:`repro.core.fixedpoint` -- Theorems 1 and 3-5 as solvers.
* :mod:`repro.core.stability` -- linearization and Bode margins
  (Figs. 3, 11; Appendix A).
* :mod:`repro.core.convergence` -- Theorem 2's discrete AIMD model and
  fairness metrics.
"""
