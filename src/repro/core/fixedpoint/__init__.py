"""Fixed-point analysis: Theorem 1 (DCQCN) and Theorems 3-5 (TIMELY)."""
