"""DCQCN fixed-point analysis -- Theorem 1 and Equation 14.

Theorem 1 of the paper shows DCQCN has a unique fixed point: the flows
share the capacity equally (``R_C = C/N``) and the steady marking
probability ``p*`` solves

    a^2 * alpha / ((b + d)(c + e)) = tau^2 * R_AI * R_C        (Eq. 11)

where ``a..e`` are the QCN event factors of Eq. 12 and
``alpha* = 1 - (1-p*)^{tau' R_C}`` (Eq. 10).  The queue fixed point
follows from inverting the RED profile (Eq. 9).

This module solves Eq. 11 exactly with a bracketing root finder,
provides the paper's closed-form small-p approximation (Eq. 14), and
offers a numeric uniqueness check (the LHS of Eq. 11 is monotone in
``p``, which is the crux of the theorem's proof).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import brentq

from repro.core.fluid.dcqcn import qcn_event_rates
from repro.core.params import DCQCNParams


@dataclass(frozen=True)
class DCQCNFixedPoint:
    """Steady state of the DCQCN fluid model.

    All quantities are in internal units (packets, packets/s, seconds).
    """

    p: float          #: marking probability p*
    queue: float      #: queue depth q* (Eq. 9)
    alpha: float      #: reduction factor alpha* (Eq. 10)
    rate: float       #: per-flow rate R_C* = C/N
    target_rate: float  #: per-flow target rate R_T*

    def as_vector(self, params: DCQCNParams) -> np.ndarray:
        """The fixed point as a fluid-model state vector.

        Layout matches
        :class:`repro.core.fluid.dcqcn.DCQCNFluidModel.state_labels`.
        """
        n = params.num_flows
        state = np.empty(1 + 3 * n)
        state[0] = self.queue
        state[1:1 + n] = self.alpha
        state[1 + n:1 + 2 * n] = self.target_rate
        state[1 + 2 * n:] = self.rate
        return state


def fixed_point_mismatch(p: float, params: DCQCNParams) -> float:
    """LHS - RHS of Eq. 11 at marking probability ``p``.

    Negative below the fixed point, positive above (the theorem's
    monotonicity argument); zero exactly at ``p*``.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    rate = params.fair_share
    rate_arr = np.array([rate])
    events = qcn_event_rates(p, rate_arr, params)
    alpha_star = -math.expm1(params.tau_prime * rate * math.log1p(-p))
    mark_fraction = float(events.mark_fraction[0])
    # Convert event *rates* back to the per-packet factors b,c,d,e of
    # Eq. 12 by dividing out the delayed rate R.
    b_plus_d = float(events.byte_rate[0] + events.timer_rate[0]) / rate
    c_plus_e = float(events.byte_ai_rate[0] + events.timer_ai_rate[0]) / rate
    rhs = params.tau ** 2 * params.rate_ai * rate
    if b_plus_d * c_plus_e == 0.0:
        # Near p=1 the event factors underflow to zero and the LHS of
        # Eq. 11 diverges to +infinity, so the mismatch is positive.
        return math.inf
    lhs = mark_fraction ** 2 * alpha_star / (b_plus_d * c_plus_e)
    return lhs - rhs


def approximate_p_star(params: DCQCNParams) -> float:
    """The paper's Eq. 14 closed form for ``p*`` (Taylor around p=0)::

        p* ~ cbrt( R_AI N^2 / (tau' C^2) * (1/B + N/(T C))^2 )

    Note the published formula carries ``tau'`` where the Eq. 11 algebra
    produces the CNP window ``tau`` (both are ~50 us so the numerical
    difference is negligible); we follow the printed formula.
    """
    n = params.num_flows
    c = params.capacity
    inner = 1.0 / params.byte_counter + n / (params.timer * c)
    return ((params.rate_ai * n ** 2) / (params.tau_prime * c ** 2)
            * inner ** 2) ** (1.0 / 3.0)


def solve_fixed_point(params: DCQCNParams,
                      p_lo: float = 1e-10,
                      extend_red: bool = False,
                      ) -> DCQCNFixedPoint:
    """Solve Eq. 11 for ``p*`` and assemble the full fixed point.

    The upper bracket is found by walking up a probability ladder until
    the mismatch turns positive and finite (near p=1 the event-rate
    factors underflow and the mismatch is +inf, which brentq rejects).

    ``extend_red`` controls how ``q*`` is derived when ``p* > pmax``;
    see :func:`_queue_for_probability`.

    Raises
    ------
    ValueError
        If the mismatch does not bracket a root, which for sane
        parameters cannot happen (Theorem 1).
    """
    f_lo = fixed_point_mismatch(p_lo, params)
    if f_lo > 0:
        raise ValueError(
            f"Eq. 11 mismatch already positive at p={p_lo}: {f_lo:.3g}")
    p_hi = None
    for candidate in (1e-3, 1e-2, 0.05, 0.1, 0.3, 0.6, 0.9, 0.99):
        value = fixed_point_mismatch(candidate, params)
        if value > 0 and math.isfinite(value):
            p_hi = candidate
            break
    if p_hi is None:
        raise ValueError(
            "Eq. 11 mismatch never becomes positive and finite below "
            "p=0.99; cannot bracket the fixed point")
    p_star = brentq(fixed_point_mismatch, p_lo, p_hi, args=(params,),
                    xtol=1e-15, rtol=1e-12)

    rate = params.fair_share
    alpha_star = -math.expm1(params.tau_prime * rate * math.log1p(-p_star))
    queue = _queue_for_probability(p_star, params, extend_red)
    events = qcn_event_rates(p_star, np.array([rate]), params)
    ai_event_rate = float(events.byte_ai_rate[0] + events.timer_ai_rate[0])
    mark_fraction = float(events.mark_fraction[0])
    # From dR_T/dt = 0 (Eq. 6): R_T - R_C = tau * R_AI * ai_rate / a.
    target = rate + params.tau * params.rate_ai * ai_event_rate / mark_fraction
    return DCQCNFixedPoint(p=p_star, queue=queue, alpha=alpha_star,
                           rate=rate, target_rate=target)


def _queue_for_probability(p: float, params: DCQCNParams,
                           extend_red: bool) -> float:
    """Eq. 9, saturated at ``kmax`` unless the smooth extension is asked.

    The physical RED profile jumps to p=1 above ``kmax``, so an Eq. 11
    solution with ``p* > pmax`` has no realizable queue on the linear
    segment; time-domain simulations then oscillate across ``kmax``.
    The stability analysis instead linearizes an idealized RED whose
    ramp continues past ``pmax`` (``extend_red=True``).
    """
    red = params.red
    if p >= red.pmax and not extend_red:
        return red.kmax
    return red.queue_for_probability(p, extend=True)


def mismatch_is_monotone(params: DCQCNParams,
                         grid_size: int = 200,
                         p_lo: float = 1e-8,
                         p_hi: float = 0.99) -> bool:
    """Numerically check the monotonicity underpinning Theorem 1.

    Evaluates the Eq. 11 LHS on a log-spaced grid and verifies it is
    nondecreasing, which implies a unique crossing with the constant
    RHS.
    """
    grid = np.logspace(math.log10(p_lo), math.log10(p_hi), grid_size)
    values = np.array([fixed_point_mismatch(p, params) for p in grid])
    # Once the LHS overflows to +inf (event factors underflow near p=1)
    # the ordering is trivially satisfied; compare the finite prefix and
    # require any non-finite values to sit at the top of the grid.
    finite = np.isfinite(values)
    if not finite.all() and not finite[:int(np.argmin(finite))].all():
        return False
    finite_values = values[finite]
    return bool(np.all(np.diff(finite_values) >= 0))
