"""TIMELY fixed-point taxonomy -- Theorems 3, 4 and 5 of the paper.

* **Theorem 3 (no fixed point).**  In the Algorithm-1 system (Eq. 21,
  where ``g <= 0`` triggers additive increase), no state zeroes every
  derivative: a zero gradient forces ``dR/dt = delta/tau* != 0``.
  :func:`original_residual` evaluates exactly that obstruction.

* **Theorem 4 (infinitely many fixed points).**  Flip the equality to
  the decrease side (Eq. 28) and *any* rate vector summing to ``C``
  with zero gradients and a queue anywhere strictly between
  ``C*T_low`` and ``C*T_high`` is a fixed point.
  :func:`is_modified_fixed_point` recognizes the whole family;
  :func:`sample_fixed_points` enumerates arbitrarily unfair members.

* **Theorem 5 (patched TIMELY's unique fixed point).**  Eq. 29's
  fixed point has equal rates ``C/N`` and queue
  ``q* = N*delta*q'/(beta*C) + q'`` (Eq. 31);
  :func:`patched_fixed_point` constructs it, and
  :func:`patched_residual` verifies it actually zeroes the patched
  dynamics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.core.params import PatchedTimelyParams, TimelyParams


def original_residual(params: TimelyParams, rates: Sequence[float],
                      queue: float) -> float:
    """Magnitude of the unavoidable drift in the Algorithm-1 system.

    Given a candidate fixed point (zero gradients, ``sum(rates) = C``,
    queue in the gradient band), Theorem 3 says ``dR/dt`` cannot vanish:
    with ``g = 0`` the rate law sits on its additive-increase branch.
    Returns the residual ``max_i |dR_i/dt|``, which is strictly positive
    for any admissible candidate.
    """
    rates = np.asarray(rates, dtype=float)
    if rates.shape != (params.num_flows,):
        raise ValueError(
            f"need {params.num_flows} rates, got shape {rates.shape}")
    tau_star = np.maximum(params.segment / np.maximum(rates, 1.0),
                          params.min_rtt)
    if queue < params.q_low or queue > params.q_high:
        raise ValueError(
            "candidate queue must lie in the gradient band "
            f"({params.q_low:.1f}, {params.q_high:.1f}), got {queue}")
    # g = 0 -> additive-increase branch: dR/dt = delta / tau*.
    residual = params.delta / tau_star
    return float(np.max(np.abs(residual)))


def is_modified_fixed_point(params: TimelyParams, rates: Sequence[float],
                            queue: float, gradients: Sequence[float],
                            tolerance: float = 1e-9) -> bool:
    """Membership test for Theorem 4's infinite fixed-point family.

    True iff all gradients are zero, the rates sum to capacity, and the
    queue lies strictly between ``C*T_low`` and ``C*T_high``.
    """
    rates = np.asarray(rates, dtype=float)
    gradients = np.asarray(gradients, dtype=float)
    if rates.shape != (params.num_flows,):
        return False
    if gradients.shape != (params.num_flows,):
        return False
    if np.any(np.abs(gradients) > tolerance):
        return False
    if np.any(rates <= 0):
        return False
    if abs(float(np.sum(rates)) - params.capacity) > \
            tolerance * params.capacity:
        return False
    return params.q_low < queue < params.q_high


def sample_fixed_points(params: TimelyParams, count: int,
                        seed: int = 0) -> Iterator["TimelyFixedPoint"]:
    """Yield ``count`` members of the Theorem-4 family.

    Rate splits are drawn from a Dirichlet distribution (so they are
    positive and sum to ``C``) and queues uniformly from the open
    gradient band -- demonstrating that the family includes arbitrarily
    unfair operating points.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    rng = np.random.default_rng(seed)
    margin = 1e-3 * (params.q_high - params.q_low)
    for _ in range(count):
        split = rng.dirichlet(np.ones(params.num_flows))
        queue = rng.uniform(params.q_low + margin, params.q_high - margin)
        yield TimelyFixedPoint(rates=split * params.capacity, queue=queue)


@dataclass(frozen=True)
class TimelyFixedPoint:
    """One operating point of a TIMELY-family model."""

    rates: np.ndarray   #: per-flow rates, packets/s
    queue: float        #: queue depth, packets

    @property
    def fairness_ratio(self) -> float:
        """``max(rate) / min(rate)`` -- unbounded across Theorem 4's family."""
        return float(np.max(self.rates) / np.min(self.rates))


def patched_fixed_point(params: PatchedTimelyParams) -> TimelyFixedPoint:
    """Theorem 5's unique fixed point for patched TIMELY.

    Equal rates ``C/N``; queue from Eq. 31.  Requires the queue to fall
    inside the gradient band, which holds for the paper's settings
    (``q' = C*T_low`` and small ``N*delta/(beta*C)``).
    """
    base = params.base
    queue = params.fixed_point_queue
    if not base.q_low <= queue <= base.q_high:
        raise ValueError(
            f"Eq. 31 queue {queue:.1f} falls outside the gradient band "
            f"[{base.q_low:.1f}, {base.q_high:.1f}]; the patched model "
            "would sit on a threshold branch instead")
    rates = np.full(base.num_flows, base.fair_share)
    return TimelyFixedPoint(rates=rates, queue=queue)


def patched_residual(params: PatchedTimelyParams,
                     point: TimelyFixedPoint) -> float:
    """``max |dR_i/dt|`` of Eq. 29 at a candidate point with ``g = 0``.

    Zero (to rounding) exactly at Theorem 5's fixed point; strictly
    positive elsewhere in the gradient band -- uniqueness in action.
    """
    base = params.base
    rates = np.asarray(point.rates, dtype=float)
    tau_star = np.maximum(base.segment / np.maximum(rates, 1.0),
                          base.min_rtt)
    w = params.weight(0.0)
    error = (point.queue - params.q_ref) / params.q_ref
    drdt = ((1.0 - w) * base.delta
            - w * params.beta_band * rates * error) / tau_star
    return float(np.max(np.abs(drdt)))
