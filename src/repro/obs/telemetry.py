"""The Telemetry bundle: registry + run log + span recorder.

One :class:`Telemetry` instance corresponds to one experiment run and
owns three artifacts under its directory:

* ``<run_id>.jsonl`` -- the structured run log (streamed live),
* ``<run_id>.prom`` -- final metrics in Prometheus text format,
* ``<run_id>.metrics.csv`` -- the same snapshot as CSV rows.

:meth:`Telemetry.activate` is the integration point: it installs the
bundle's registry as the process-wide active registry, installs the
span recorder, captures Python warnings into the run log, opens the
root span, and -- however the block exits -- drains spans and the
final metrics snapshot into the run log, stamps ``run_end``, and
writes the exporters.  The experiment registry wraps every run with
it when ``telemetry=`` is given, so

    python -m repro run fig04 --telemetry obs/

needs no per-experiment wiring.

While a Telemetry is active, :func:`current` returns it; rare-event
emitters (the fault injector's link transitions) use that to append
run-log events without any plumbed-through handle, and are inert
otherwise.
"""

from __future__ import annotations

import os
import time
import tracemalloc
import warnings as _warnings
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Optional, Union

from repro.obs import forensics as _forensics
from repro.obs import health as _health
from repro.obs import spans as _spans
from repro.obs.export import write_exports
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.runlog import RunLog
from repro.obs.spans import SpanRecorder

_current: Optional["Telemetry"] = None


def current() -> Optional["Telemetry"]:
    """The active Telemetry, or None when telemetry is off."""
    return _current


class Telemetry:
    """Per-run telemetry: metrics registry, run log, span recorder.

    Parameters
    ----------
    directory:
        Where the run's artifacts are written (created if missing).
    experiment:
        Experiment id, used in the run id and the run log.
    run_id:
        Override the generated ``<experiment>-<timestamp>-<pid>`` id.
    trace_allocations:
        Start ``tracemalloc`` for the duration of :meth:`activate`
        so spans record allocation deltas.  Costs 2-4x on allocation
        -heavy code; off by default.
    fsync:
        Force every run-log event through to the OS (see
        :class:`~repro.obs.runlog.RunLog`).  Turn on for live
        ``repro watch`` tails; off by default.
    """

    def __init__(self, directory: Union[str, Path],
                 experiment: str = "run",
                 run_id: Optional[str] = None,
                 trace_allocations: bool = False,
                 fsync: bool = False):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.experiment = experiment
        if run_id is None:
            stamp = time.strftime("%Y%m%dT%H%M%S")
            run_id = f"{experiment}-{stamp}-{os.getpid()}"
        self.run_id = run_id
        self.trace_allocations = trace_allocations
        self.registry = MetricsRegistry()
        self.spans = SpanRecorder()
        self.run_log = RunLog(self.directory / f"{run_id}.jsonl",
                              run_id, fsync=fsync)
        self.health = _health.HealthSession(run_log=self.run_log,
                                            registry=self.registry)
        self.export_paths: "list[Path]" = []
        self.verdict: Optional[str] = None
        #: Attach a started :class:`repro.obs.profile.SamplingProfiler`
        #: here and finalization stops it, publishes its gauges into
        #: this bundle's registry, and logs the ``profile`` event
        #: before the run log closes.
        self.profiler = None
        #: Attach a :class:`repro.obs.forensics.FlowLedger` here (the
        #: experiment registry does when ``--forensics`` requested it)
        #: and :meth:`activate` installs it as the ambient ledger;
        #: finalization computes the FCT attributions, emits one
        #: ``flow`` event per flow, publishes aggregate
        #: ``obs.forensics.*`` metrics, and cross-links the worst
        #: pause-hit flows into the health verdict.
        self.forensics = None

    @classmethod
    def ensure(cls, value: "Union[Telemetry, str, Path]",
               experiment: str) -> "Telemetry":
        """Coerce a ``telemetry=`` argument: instance or directory."""
        if isinstance(value, Telemetry):
            return value
        return cls(value, experiment=experiment)

    @property
    def runlog_path(self) -> Path:
        return self.run_log.path

    @contextmanager
    def activate(self, params: Any = None,
                 seed: Optional[int] = None) -> Iterator["Telemetry"]:
        """Run a block with this bundle installed process-wide."""
        global _current
        from repro.perf.cache import canonicalize, params_key

        self.run_log.start(
            experiment=self.experiment,
            params_hash=params_key(self.experiment, params or {}),
            params=canonicalize(params) if params is not None
            else None,
            seed=seed)

        started_tracing = False
        if self.trace_allocations and not tracemalloc.is_tracing():
            tracemalloc.start()
            started_tracing = True

        previous_telemetry = _current
        _current = self
        previous_recorder = _spans.set_recorder(self.spans)
        previous_session = _health.set_session(self.health)
        previous_ledger = _forensics.set_ledger(self.forensics) \
            if self.forensics is not None else None
        previous_show = _warnings.showwarning

        def capture(message, category, filename, lineno, file=None,
                    line=None):
            try:
                self.run_log.warning(str(message),
                                     category=category.__name__)
            except ValueError:
                pass  # log already finished/closed
            previous_show(message, category, filename, lineno,
                          file, line)

        _warnings.showwarning = capture
        status, error = "ok", None
        try:
            with use_registry(self.registry):
                with self.spans.span(f"experiment:{self.experiment}"):
                    yield self
        except BaseException as exc:
            status, error = "error", repr(exc)
            raise
        finally:
            _warnings.showwarning = previous_show
            _spans.set_recorder(previous_recorder)
            _health.set_session(previous_session)
            if self.forensics is not None:
                _forensics.set_ledger(previous_ledger)
            _current = previous_telemetry
            if started_tracing:
                tracemalloc.stop()
            self._finalize(status, error)

    def _finalize(self, status: str, error: Optional[str]) -> None:
        if self.profiler is not None:
            self.profiler.stop()
            self.profiler.publish(self.registry)
            self.run_log.profile(**self.profiler.report())
        if self.forensics is not None:
            self.forensics.finalize()
            for event in self.forensics.flow_events():
                self.run_log.flow(**event)
            self.forensics.publish(self.registry)
            # Before emit_verdict() below, so a pathological pause
            # verdict can name the worst-hit flows.
            self.health.flow_context = self.forensics.worst_paused(3)
        for record in self.spans.records:
            self.run_log.span(record)
        # Verdict before the final snapshot so the finding counters
        # it bumps are included in the metrics the exporters see.
        self.verdict = self.health.emit_verdict()
        snapshot = self.registry.snapshot()
        self.run_log.metrics(snapshot)
        self.run_log.finish(status=status, error=error)
        self.run_log.close()
        self.export_paths = write_exports(
            snapshot, self.directory / self.run_id)
