"""Metric snapshot exporters: Prometheus text format and CSV.

Both exporters consume the JSON-ready form
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` produces (also
embedded in run logs as ``metrics`` events), so a snapshot can be
re-exported later from the run log alone.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Dict, Union


def _prom_name(name: str) -> str:
    """Dotted hierarchy -> Prometheus underscore convention."""
    return name.replace(".", "_")


def _prom_value(value) -> str:
    if value is None:
        return "NaN"
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def _series(metric: str, labels: "Dict[str, str]") -> str:
    """``metric{k="v",...}`` -- or the bare name with no labels."""
    if not labels:
        return metric
    inner = ",".join(f'{key}="{value}"'
                     for key, value in labels.items())
    return f"{metric}{{{inner}}}"


def prometheus_lines(snapshot: "Dict[str, dict]",
                     labels: "Dict[str, str]" = None,
                     type_lines: bool = True) -> "list[str]":
    """The exposition lines for one snapshot, optionally labelled.

    ``labels`` (e.g. ``{"worker": "host-1234"}``) is attached to
    every series -- the fleet observability plane uses this to keep
    per-worker gauges and histograms distinguishable after merging
    many registries into one scrape.  ``type_lines=False`` suppresses
    the ``# TYPE`` comments so a merger can emit them exactly once
    per metric across sources.
    """
    labels = labels or {}
    lines = []
    for name, data in snapshot.items():
        kind = data.get("type")
        metric = _prom_name(name)
        if kind == "counter":
            if type_lines:
                lines.append(f"# TYPE {metric} counter")
            lines.append(f"{_series(metric, labels)} "
                         f"{_prom_value(data['value'])}")
        elif kind == "gauge":
            if type_lines:
                lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{_series(metric, labels)} "
                         f"{_prom_value(data['value'])}")
        elif kind == "histogram":
            if type_lines:
                lines.append(f"# TYPE {metric} summary")
            for q, value in sorted(data.get("quantiles", {}).items(),
                                   key=lambda kv: float(kv[0])):
                q_labels = dict(labels)
                q_labels["quantile"] = q
                lines.append(f"{_series(metric, q_labels)} "
                             f"{_prom_value(value)}")
            lines.append(f"{_series(metric + '_count', labels)} "
                         f"{data['count']}")
            lines.append(f"{_series(metric + '_sum', labels)} "
                         f"{_prom_value(data['sum'])}")
    return lines


def to_prometheus(snapshot: "Dict[str, dict]",
                  labels: "Dict[str, str]" = None) -> str:
    """Render a snapshot in the Prometheus text exposition format.

    Counters and gauges map directly; histograms are exposed in the
    summary style -- ``name{quantile="0.9"}`` series plus ``_count``
    and ``_sum`` -- since P-squared tracks quantiles, not buckets.
    """
    lines = prometheus_lines(snapshot, labels=labels)
    return "\n".join(lines) + ("\n" if lines else "")


def to_csv(snapshot: "Dict[str, dict]") -> str:
    """Flatten a snapshot to ``metric,type,field,value`` rows."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["metric", "type", "field", "value"])
    for name, data in snapshot.items():
        kind = data.get("type")
        if kind in ("counter", "gauge"):
            writer.writerow([name, kind, "value", data["value"]])
        elif kind == "histogram":
            for field in ("count", "sum", "min", "max", "mean"):
                writer.writerow([name, kind, field, data[field]])
            for q, value in sorted(data.get("quantiles", {}).items(),
                                   key=lambda kv: float(kv[0])):
                writer.writerow([name, kind, f"p{q}", value])
    return buffer.getvalue()


def write_exports(snapshot: "Dict[str, dict]",
                  base_path: Union[str, Path]) -> "list[Path]":
    """Write ``<base>.prom`` and ``<base>.metrics.csv``; return paths."""
    base = Path(base_path)
    base.parent.mkdir(parents=True, exist_ok=True)
    prom = base.with_suffix(".prom")
    prom.write_text(to_prometheus(snapshot), encoding="utf-8")
    csv_path = base.with_suffix(".metrics.csv")
    csv_path.write_text(to_csv(snapshot), encoding="utf-8")
    return [prom, csv_path]
