"""The live fleet observability plane behind ``python -m repro serve``.

A stdlib :class:`~http.server.ThreadingHTTPServer` that sits *next
to* a queue directory (see :mod:`repro.perf.backend`) and/or a
telemetry directory of run-log shards, and aggregates whatever the
fleet is doing right now.  It holds no state of its own: every
request re-reads the same atomically-written files the queue
protocol already maintains, so the server can be started, killed and
restarted at any point of a sweep without coordination.

Endpoints
---------

``/metrics``
    Prometheus text exposition merging every live source: the
    serving process's own registry, the per-worker registry
    snapshots workers piggyback onto their heartbeat registrations
    (``workers/<id>.json``), and the latest ``metrics`` event of
    each run-log shard.  Counters are folded into one fleet-wide
    sum plus per-source ``{worker="..."}`` series; gauges and
    histograms stay per-source (a merged quantile would be a lie).
    Snapshots from registrations older than the worker TTL are
    dropped -- a dead worker's last gauge readings are not "live".
``/events`` and ``/events.json``
    The merged run-log event stream.  ``/events.json?offset=N``
    long-polls incrementally (the JSON body carries the next
    offset); ``/events`` is a Server-Sent-Events stream of the same
    events (``id:`` = stream offset, ``data:`` = the event JSON).
    Per-shard order is the writer's ``seq`` order; shards interleave
    by arrival.
``/fleet``
    Queue-level fleet state as JSON: worker registrations with
    liveness ages, queued/claimed/parked counts, per-claim lease
    ages and steal counts, and quarantined (``worker-lost``)
    results.
``/trace``
    The stitched cross-host trace tree (see
    :func:`repro.obs.spans.build_fleet_tree`) as plain text.

``python -m repro watch --serve URL`` consumes ``/events.json``, so
a dashboard can follow a sweep on a host that does not mount the
queue filesystem at all.
"""

from __future__ import annotations

import json
import os
import socketserver
import threading
import time
from http.server import BaseHTTPRequestHandler, HTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union
from urllib.parse import parse_qs, urlparse

from repro.obs import metrics as _metrics
from repro.obs import spans as _spans
from repro.obs.export import (_prom_name, _prom_value,
                              prometheus_lines)
from repro.obs.live import RunLogTailer

#: Default seconds before a worker registration (and its piggybacked
#: metrics snapshot) is considered stale.  Deliberately looser than
#: the queue's lease TTL: a scrape plane should keep showing a
#: briefly-stalled worker rather than flap.
DEFAULT_WORKER_TTL = 30.0

#: SSE keepalive / long-poll cadence, seconds.
DEFAULT_POLL_S = 0.5


def _read_json(path: Path) -> Optional[dict]:
    """Best-effort read (the queue's skip-don't-crash discipline)."""
    try:
        with open(path, "r", encoding="utf-8") as stream:
            return json.load(stream)
    except (OSError, json.JSONDecodeError):
        return None


def _mtime_age(path: Path, now: Optional[float] = None
               ) -> Optional[float]:
    try:
        mtime = path.stat().st_mtime
    except OSError:
        return None
    return (now if now is not None else time.time()) - mtime


class FleetAggregator:
    """Read-side aggregation over a queue dir and/or telemetry dir.

    Parameters
    ----------
    root:
        Convenience: a directory that is a queue dir (has a
        ``workers/`` subdirectory), a telemetry dir (holds ``.jsonl``
        run logs), or both at once.  ``queue_dir``/``telemetry_dir``
        override the auto-detection when the two live apart.
    worker_ttl:
        Seconds before a worker registration stops counting as live.
    """

    def __init__(self, root: Optional[Union[str, Path]] = None,
                 queue_dir: Optional[Union[str, Path]] = None,
                 telemetry_dir: Optional[Union[str, Path]] = None,
                 worker_ttl: float = DEFAULT_WORKER_TTL):
        if root is None and queue_dir is None \
                and telemetry_dir is None:
            raise ValueError("FleetAggregator needs a root, "
                             "queue_dir or telemetry_dir")
        root = Path(root) if root is not None else None
        self.queue_dir = Path(queue_dir) if queue_dir is not None \
            else root if root is not None \
            and (root / "workers").is_dir() else None
        if telemetry_dir is not None:
            self.telemetry_dir: Optional[Path] = Path(telemetry_dir)
        else:
            self.telemetry_dir = root
        self.worker_ttl = float(worker_ttl)
        self._lock = threading.Lock()
        self._tailers: Dict[Path, RunLogTailer] = {}
        self._shard_experiment: Dict[Path, str] = {}
        self._events: List[dict] = []

    # -- worker registrations ---------------------------------------------

    def _registrations(self) -> List[Tuple[str, float, dict]]:
        """(worker id, heartbeat age, payload) for every file in
        ``workers/``, live or not -- callers filter by age."""
        found: List[Tuple[str, float, dict]] = []
        if self.queue_dir is None:
            return found
        workers = self.queue_dir / "workers"
        try:
            names = sorted(os.listdir(workers))
        except OSError:
            return found
        now = time.time()
        for name in names:
            if not name.endswith(".json"):
                continue
            path = workers / name
            age = _mtime_age(path, now)
            payload = _read_json(path)
            if age is None or payload is None:
                continue
            found.append((name[:-5], age, payload))
        return found

    # -- /metrics ----------------------------------------------------------

    def metrics_sources(self) -> "Dict[str, Dict[str, dict]]":
        """Source label -> registry snapshot, live sources only."""
        sources: Dict[str, Dict[str, dict]] = {}
        local = _metrics.get_registry().snapshot()
        if local:
            sources["coordinator"] = local
        for worker_id, age, payload in self._registrations():
            if age >= self.worker_ttl:
                continue  # stale snapshot: worker presumed dead
            snapshot = payload.get("metrics")
            if isinstance(snapshot, dict) and snapshot:
                sources[worker_id] = snapshot
        for shard, snapshot in self._runlog_snapshots().items():
            sources.setdefault(f"run:{shard}", snapshot)
        return sources

    def _runlog_snapshots(self) -> "Dict[str, Dict[str, dict]]":
        """Latest ``metrics`` event per run-log shard, by stem."""
        latest: Dict[str, Dict[str, dict]] = {}
        self.refresh_events()
        with self._lock:
            events = list(self._events)
        for event in events:
            if event.get("type") != "metrics":
                continue
            snapshot = event.get("snapshot")
            if isinstance(snapshot, dict) and snapshot:
                latest[event.get("_shard", "?")] = snapshot
        return latest

    def metrics_text(self) -> str:
        """The merged Prometheus exposition for every live source."""
        sources = self.metrics_sources()
        union: Dict[str, List[Tuple[str, dict]]] = {}
        for source in sorted(sources):
            for name, data in sources[source].items():
                if data.get("type") not in ("counter", "gauge",
                                            "histogram"):
                    continue
                union.setdefault(name, []).append(
                    (source, data))
        lines: List[str] = []
        for name in sorted(union):
            entries = union[name]
            kind = entries[0][1]["type"]
            metric = _prom_name(name)
            if kind == "counter":
                lines.append(f"# TYPE {metric} counter")
                total = sum(float(data.get("value") or 0.0)
                            for _, data in entries
                            if data.get("type") == "counter")
                lines.append(f"{metric} {_prom_value(total)}")
            else:
                prom_kind = "gauge" if kind == "gauge" else "summary"
                lines.append(f"# TYPE {metric} {prom_kind}")
            for source, data in entries:
                if data.get("type") != kind:
                    continue  # cross-source type clash: skip
                lines.extend(prometheus_lines(
                    {name: data}, labels={"worker": source},
                    type_lines=False))
        return "\n".join(lines) + ("\n" if lines else "")

    # -- /events -----------------------------------------------------------

    def refresh_events(self) -> int:
        """Tail every run-log shard; returns the merged length."""
        with self._lock:
            for path in self._shard_paths():
                tailer = self._tailers.get(path)
                if tailer is None:
                    tailer = RunLogTailer(path)
                    self._tailers[path] = tailer
                for event in tailer.poll():
                    if not isinstance(event, dict):
                        continue
                    if event.get("type") == "run_start":
                        self._shard_experiment[path] = \
                            event.get("experiment", "")
                    event = dict(event)
                    event["_shard"] = path.stem
                    event["_experiment"] = \
                        self._shard_experiment.get(path, "")
                    self._events.append(event)
            return len(self._events)

    def _shard_paths(self) -> List[Path]:
        paths: List[Path] = []
        roots = [self.telemetry_dir]
        if self.queue_dir is not None \
                and self.queue_dir != self.telemetry_dir:
            roots.append(self.queue_dir)
        for root in roots:
            if root is None:
                continue
            try:
                names = sorted(os.listdir(root))
            except OSError:
                continue
            paths.extend(root / name for name in names
                         if name.endswith(".jsonl"))
        return paths

    def events_since(self, offset: int,
                     experiment: Optional[str] = None
                     ) -> Tuple[int, List[dict]]:
        """(next offset, events) after ``offset`` in merged order.

        Offsets index the *unfiltered* merged stream, so a filtered
        consumer can still resume exactly where it left off.
        """
        self.refresh_events()
        with self._lock:
            total = len(self._events)
            window = self._events[max(0, int(offset)):total]
        if experiment:
            window = [event for event in window
                      if event.get("_experiment") == experiment
                      or event.get("experiment") == experiment]
        return total, window

    # -- /fleet ------------------------------------------------------------

    def fleet(self) -> dict:
        """Queue-level fleet state as one JSON-ready dict."""
        now = time.time()
        workers = []
        for worker_id, age, payload in self._registrations():
            workers.append({
                "worker": worker_id,
                "live": age < self.worker_ttl,
                "heartbeat_age_s": round(age, 3),
                "pid": payload.get("pid"),
                "host": payload.get("host"),
                "beats": payload.get("beats"),
                "fingerprint": (payload.get("fingerprint")
                                or "")[:12]})
        state: Dict[str, Any] = {
            "generated_ts": now,
            "queue_dir": (str(self.queue_dir)
                          if self.queue_dir else None),
            "telemetry_dir": (str(self.telemetry_dir)
                              if self.telemetry_dir else None),
            "workers": workers,
            "workers_live": sum(1 for w in workers if w["live"])}
        if self.queue_dir is not None:
            state.update(self._queue_state(now))
        return state

    def _queue_state(self, now: float) -> dict:
        layout = {name: Path(self.queue_dir) / name  # type: ignore
                  for name in ("tasks", "claims", "results")}
        claims = []
        steals = 0
        try:
            names = sorted(os.listdir(layout["claims"]))
        except OSError:
            names = []
        for name in names:
            if not name.endswith(".json"):
                continue
            path = layout["claims"] / name
            payload = _read_json(path) or {}
            age = _mtime_age(path, now)
            steals += int(payload.get("steals", 0) or 0)
            claims.append({"key": name[:-5],
                           "worker": payload.get("worker"),
                           "lease_age_s": (round(age, 3)
                                           if age is not None
                                           else None),
                           "steals": payload.get("steals", 0)})
        quarantined = 0
        results = 0
        try:
            result_names = os.listdir(layout["results"])
        except OSError:
            result_names = []
        for name in result_names:
            if not name.endswith(".json"):
                continue
            results += 1
            payload = _read_json(layout["results"] / name) or {}
            if not payload.get("ok", True) \
                    and payload.get("kind") == "worker-lost":
                quarantined += 1
        try:
            queued = sum(1 for name in os.listdir(layout["tasks"])
                         if name.endswith(".json"))
        except OSError:
            queued = 0
        for name in (os.listdir(layout["tasks"])
                     if layout["tasks"].is_dir() else []):
            if name.endswith(".json"):
                payload = _read_json(layout["tasks"] / name) or {}
                steals += int(payload.get("steals", 0) or 0)
        return {"tasks_queued": queued, "claims": claims,
                "results_parked": results, "steals": steals,
                "quarantined": quarantined}

    # -- /trace ------------------------------------------------------------

    def trace_text(self, trace_id: Optional[str] = None) -> str:
        root = self.queue_dir or self.telemetry_dir
        records = _spans.read_trace_records(root)
        chosen, tree = _spans.build_fleet_tree(records, trace_id)
        if not tree:
            return "(no fleet trace recorded)\n"
        header = f"fleet trace {chosen}\n"
        return header + _spans.format_span_tree(tree) + "\n"


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the server's :class:`FleetAggregator`."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    @property
    def aggregator(self) -> FleetAggregator:
        return self.server.aggregator  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        pass  # quiet by default; errors surface client-side

    def _send_body(self, body: str, content_type: str,
                   status: int = 200) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type",
                         f"{content_type}; charset=utf-8")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urlparse(self.path)
        query = {key: values[-1] for key, values
                 in parse_qs(parsed.query).items()}
        try:
            self._route(parsed.path, query)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream; nothing to clean up

    def _route(self, path: str, query: Dict[str, str]) -> None:
        if path in ("/", "/index.html"):
            self._send_body(
                "repro observability plane\n"
                "endpoints: /metrics /events /events.json "
                "/fleet /trace /healthz\n", "text/plain")
        elif path == "/healthz":
            self._send_body("ok\n", "text/plain")
        elif path == "/metrics":
            self._send_body(self.aggregator.metrics_text(),
                            "text/plain")
        elif path == "/fleet":
            self._send_body(
                json.dumps(self.aggregator.fleet(), indent=2,
                           sort_keys=True, default=str) + "\n",
                "application/json")
        elif path == "/trace":
            self._send_body(
                self.aggregator.trace_text(query.get("trace_id")),
                "text/plain")
        elif path == "/events.json":
            offset, events = self.aggregator.events_since(
                int(query.get("offset", 0)),
                experiment=query.get("experiment"))
            self._send_body(
                json.dumps({"offset": offset, "events": events},
                           default=str) + "\n",
                "application/json")
        elif path == "/events":
            self._stream_events(query)
        else:
            self._send_body(f"unknown path {path}\n",
                            "text/plain", status=404)

    def _stream_events(self, query: Dict[str, str]) -> None:
        """Server-Sent-Events stream of the merged run-log events."""
        max_events = int(query.get("max", 0)) or None
        poll_s = float(query.get("poll", DEFAULT_POLL_S))
        experiment = query.get("experiment")
        offset = int(query.get("offset", 0))
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        # SSE is unbounded: hand the socket over to chunked-free
        # streaming by dropping keep-alive.
        self.send_header("Connection", "close")
        self.end_headers()
        sent = 0
        while True:
            offset, events = self.aggregator.events_since(
                offset, experiment=experiment)
            for index, event in enumerate(events):
                self.wfile.write(
                    f"id: {offset - len(events) + index}\n"
                    f"data: {json.dumps(event, default=str)}\n\n"
                    .encode("utf-8"))
                sent += 1
                if max_events is not None and sent >= max_events:
                    self.wfile.flush()
                    return
            if not events:
                self.wfile.write(b": keepalive\n\n")
            self.wfile.flush()
            time.sleep(poll_s)


class ObservabilityServer:
    """Owns the HTTP server + aggregator pair; test- and CLI-facing.

    ``port=0`` binds an ephemeral port (the default for tests);
    :attr:`url` reports the bound address either way.
    """

    def __init__(self, root: Optional[Union[str, Path]] = None,
                 queue_dir: Optional[Union[str, Path]] = None,
                 telemetry_dir: Optional[Union[str, Path]] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 worker_ttl: float = DEFAULT_WORKER_TTL):
        self.aggregator = FleetAggregator(
            root, queue_dir=queue_dir, telemetry_dir=telemetry_dir,
            worker_ttl=worker_ttl)

        class _Server(socketserver.ThreadingMixIn, HTTPServer):
            daemon_threads = True
            allow_reuse_address = True

        self._httpd = _Server((host, port), _Handler)
        self._httpd.aggregator = self.aggregator  # type: ignore
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "ObservabilityServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-serve", daemon=True)
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Foreground service loop (the CLI path); Ctrl-C returns."""
        try:
            self._httpd.serve_forever()
        except KeyboardInterrupt:
            pass

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ObservabilityServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
