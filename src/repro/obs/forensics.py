"""Per-flow forensics: causal FCT attribution and the explain layer.

Aggregate metrics (PR 3), health verdicts (PR 4) and the fleet plane
(PR 8) answer "is this run healthy?".  This module answers the micro
question those layers cannot: for one individual flow, *why* was its
completion time what it was?

A :class:`FlowLedger` subscribes to cheap hooks in the simulation
layer -- port enqueue/departure (scalar and PR 7 window paths), PFC
pause/resume per port, drops, and protocol rate-state transitions --
and folds them into one record per flow.  On finalization each
completed flow's FCT is decomposed into named components::

    FCT = serialization + queueing + paused + rate_limited
        + propagation + residual

The decomposition follows the flow's *critical path*: the interval
from flow start to the emission of its last packet is split between
line-rate serialization and pacing stalls (``rate_limited`` -- time
the congestion-control algorithm held the sender below line rate),
and the last packet's journey through the network is split per hop
into queue wait (minus pause overlap), PFC pause overlap, wire
serialization and link propagation.  Because those intervals tile
``[start, completion]`` exactly, the residual is float noise on the
scalar engine (and bounded by one coalesced window in batched mode).

Causal annotations ride along: which port marked the flow's packets
CE (and how many), which PFC pause storms sat on its path (and for
how long), and how often congestion control cut its rate (with the
rate floor and the time window of the cuts).

Zero cost when off, following the PR 3 active/null pattern: every
hook site in the simulator guards on ``ledger is None``, the ambient
ledger is installed only by ``Telemetry`` when forensics is
requested (``repro run --forensics``), and a run without it is
bit-identical to one built before this module existed.

Surfaces:

* ``repro run --forensics`` attaches a ledger; per-flow ``flow``
  events land in the run log (RUNLOG_VERSION 6+).
* ``repro explain LOG --flow N | --worst K`` renders attribution
  tables and causal chains from those events.
* :meth:`FlowLedger.publish` feeds component-share histograms into
  the metrics registry so ``repro report`` and ``repro compare``
  consume the breakdown without new plumbing.
* A pathological pause-storm health verdict names the worst-hit
  flows (see :class:`repro.obs.health.HealthSession`).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: Component keys of the FCT decomposition, in presentation order.
COMPONENTS = ("serialization_s", "queueing_s", "paused_s",
              "rate_limited_s", "propagation_s", "residual_s")


class _PauseLog:
    """Closed (and one optionally open) pause intervals of one port."""

    __slots__ = ("starts", "ends", "open_start", "pauses")

    def __init__(self):
        self.starts: List[float] = []
        self.ends: List[float] = []
        self.open_start: Optional[float] = None
        self.pauses = 0

    def on_pause(self, now: float) -> None:
        if self.open_start is None:
            self.open_start = now
            self.pauses += 1

    def on_resume(self, now: float) -> None:
        if self.open_start is not None:
            self.starts.append(self.open_start)
            self.ends.append(now)
            self.open_start = None

    def overlap(self, a: float, b: float) -> float:
        """Seconds of ``[a, b]`` spent inside pause intervals."""
        if b <= a:
            return 0.0
        total = 0.0
        # Intervals are appended in time order, so binary search finds
        # the window of candidates.
        lo = bisect_right(self.ends, a)
        hi = bisect_left(self.starts, b)
        for i in range(lo, hi):
            total += min(b, self.ends[i]) - max(a, self.starts[i])
        if self.open_start is not None and self.open_start < b:
            total += b - max(a, self.open_start)
        return total

    def count_overlapping(self, a: float, b: float) -> int:
        """Pause intervals intersecting ``[a, b]``."""
        count = sum(1 for i in range(len(self.starts))
                    if self.starts[i] < b and self.ends[i] > a)
        if self.open_start is not None and self.open_start < b:
            count += 1
        return count


class HopRecord:
    """One flow's footprint on one egress port."""

    __slots__ = ("port", "rate", "delay", "packets", "bytes", "marks",
                 "drops", "last_enqueue", "last_wait_enqueue",
                 "last_start", "last_finish", "last_serialization")

    def __init__(self, port: str, rate: float, delay: float):
        self.port = port
        self.rate = rate
        self.delay = delay
        self.packets = 0
        self.bytes = 0
        #: Departures seen carrying a CE mark at this port.
        self.marks = 0
        self.drops = 0
        #: Most recent data-packet residence timestamps; at flow
        #: completion these belong to the completing packet (FIFO
        #: order per hop), which is what the attribution needs.
        self.last_enqueue: Optional[float] = None
        self.last_wait_enqueue: Optional[float] = None
        self.last_start: Optional[float] = None
        self.last_finish: Optional[float] = None
        self.last_serialization = 0.0


class FlowRecord:
    """Everything the ledger knows about one flow."""

    __slots__ = ("context", "flow_id", "src", "dst", "protocol",
                 "flow", "sender", "hops", "emitted", "first_emit",
                 "last_emit", "prev_size", "pacing_serialization_s",
                 "rate_limited_s", "cnps", "acks", "marked_windows",
                 "rate_cuts", "rate_raises", "min_rate",
                 "first_cut", "last_cut", "drops",
                 "components", "fct_s", "completed", "causes")

    def __init__(self, context: Optional[str], flow_id: int,
                 src: Optional[str] = None, dst: Optional[str] = None):
        self.context = context
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.protocol: Optional[str] = None
        self.flow = None
        self.sender = None
        self.hops: "Dict[str, HopRecord]" = {}
        self.emitted = 0
        self.first_emit: Optional[float] = None
        self.last_emit: Optional[float] = None
        self.prev_size = 0
        #: Sender-side pacing split: line-rate share vs pacing stall.
        self.pacing_serialization_s = 0.0
        self.rate_limited_s = 0.0
        self.cnps = 0
        self.acks = 0
        self.marked_windows = 0
        self.rate_cuts = 0
        self.rate_raises = 0
        self.min_rate: Optional[float] = None
        self.first_cut: Optional[float] = None
        self.last_cut: Optional[float] = None
        self.drops = 0
        # Filled by FlowLedger.finalize():
        self.components: Optional[Dict[str, float]] = None
        self.fct_s: Optional[float] = None
        self.completed = False
        self.causes: List[dict] = []


class FlowLedger:
    """Folds simulator hooks into per-flow attribution records.

    One ledger spans one telemetry run; experiments that execute
    several configurations attach per configuration with a distinct
    ``context`` label, which namespaces flow ids and port names.
    """

    def __init__(self):
        self._context: Optional[str] = None
        self._flows: "Dict[Tuple[Optional[str], int], FlowRecord]" = {}
        self._pauses: "Dict[Tuple[Optional[str], str], _PauseLog]" = {}
        self._nic_of: "Dict[Tuple[Optional[str], str], str]" = {}
        self._batch_accepts: "Dict[Tuple[Optional[str], str], deque]" \
            = {}
        self._finalized = False

    # -- wiring ---------------------------------------------------------------

    def attach(self, net, context: Optional[str] = None) -> None:
        """Hook every port of ``net``; later flows inherit ``context``.

        Call before :func:`repro.sim.topology.install_flow` so flow
        registrations land in the right context.
        """
        self._context = context
        for host in net.hosts.values():
            port = getattr(host, "port", None)
            if port is not None:
                port.ledger = self
                self._nic_of[(context, port.name)] = host.name
        for switch in net.switches.values():
            for port in switch.ports.values():
                port.ledger = self

    def register_flow(self, flow, protocol: Optional[str] = None,
                      sender=None) -> None:
        """Associate a :class:`~repro.sim.flows.Flow` (and its agents)."""
        record = self._flow(flow.flow_id, flow.src, flow.dst)
        record.flow = flow
        record.protocol = protocol
        record.sender = sender

    def _flow(self, flow_id: int, src: Optional[str] = None,
              dst: Optional[str] = None) -> FlowRecord:
        key = (self._context, flow_id)
        record = self._flows.get(key)
        if record is None:
            record = FlowRecord(self._context, flow_id, src, dst)
            self._flows[key] = record
        elif record.src is None and src is not None:
            record.src = src
            record.dst = dst
        return record

    # -- simulator hooks (active only while a run is forensic) ----------------

    def on_enqueue(self, port, packet) -> None:
        """A data packet entered ``port``'s FIFO (scalar path)."""
        if packet.kind != "data":
            return
        now = port.sim.now
        packet.enqueue_time = now
        record = self._flow(packet.flow_id, packet.src, packet.dst)
        if self._nic_of.get((self._context, port.name)) == packet.src:
            self._account_emission(record, now, port.rate, 1,
                                   packet.size_bytes)
        hop = record.hops.get(port.name)
        if hop is None:
            hop = HopRecord(port.name, port.rate, port.link.delay)
            record.hops[port.name] = hop
        hop.packets += 1
        hop.bytes += packet.size_bytes
        hop.last_enqueue = now

    def _account_emission(self, record: FlowRecord, now: float,
                          line_rate: float, count: int,
                          last_size: int) -> None:
        """Split the inter-emission gap at the sender NIC.

        The gap since the previous emission covers (at most) the
        previous packet's line-rate serialization; any excess is time
        the pacer deliberately idled -- the ``rate_limited``
        component.  ``count > 1`` covers batched emissions, whose
        intra-batch gaps are zero by construction.
        """
        previous = record.last_emit
        if previous is None:
            record.first_emit = now
        else:
            gap = now - previous
            ideal = record.prev_size / line_rate
            if gap <= ideal:
                record.pacing_serialization_s += gap
            else:
                record.pacing_serialization_s += ideal
                record.rate_limited_s += gap - ideal
        record.last_emit = now
        record.prev_size = last_size
        record.emitted += count

    def on_departure(self, port, packet,
                     finish: Optional[float] = None) -> None:
        """A data packet finished serialization at ``port``."""
        if packet.kind != "data":
            return
        record = self._flows.get((self._context, packet.flow_id))
        if record is None:
            return
        hop = record.hops.get(port.name)
        if hop is None:
            return
        now = port.sim.now if finish is None else finish
        hop.last_finish = now
        hop.last_serialization = packet.size_bytes / port.rate
        hop.last_start = now - hop.last_serialization
        hop.last_wait_enqueue = packet.enqueue_time
        if packet.ecn_marked:
            hop.marks += 1

    def on_window(self, port, payload, finishes) -> None:
        """A serialized window left ``port`` (PR 7 batched path)."""
        from repro.sim.packet import PacketBatch
        if isinstance(payload, PacketBatch):
            accepts = self._batch_accepts.get(
                (self._context, port.name))
            enqueue = accepts.popleft() if accepts else None
            if payload.kind != "data":
                return
            record = self._flows.get(
                (self._context, payload.flow_id))
            if record is None:
                return
            hop = record.hops.get(port.name)
            if hop is None:
                return
            hop.marks += int(payload.ecn_marked.sum())
            hop.last_finish = float(finishes[-1])
            hop.last_serialization = \
                float(payload.size_bytes[-1]) / port.rate
            hop.last_start = hop.last_finish - hop.last_serialization
            hop.last_wait_enqueue = enqueue
            return
        for i, packet in enumerate(payload):
            self.on_departure(port, packet, finish=float(finishes[i]))

    def on_batch_enqueue(self, port, batch) -> None:
        """A :class:`PacketBatch` was accepted onto the window path."""
        now = port.sim.now
        key = (self._context, port.name)
        accepts = self._batch_accepts.get(key)
        if accepts is None:
            accepts = deque()
            self._batch_accepts[key] = accepts
        accepts.append(now)
        if batch.kind != "data":
            return
        record = self._flow(batch.flow_id, batch.src, batch.dst)
        if self._nic_of.get(key) == batch.src:
            self._account_emission(record, now, port.rate, batch.count,
                                   int(batch.size_bytes[-1]))
        hop = record.hops.get(port.name)
        if hop is None:
            hop = HopRecord(port.name, port.rate, port.link.delay)
            record.hops[port.name] = hop
        hop.packets += batch.count
        hop.bytes += batch.total_bytes
        hop.last_enqueue = now

    def on_drop(self, port, packet) -> None:
        """A data packet was tail-dropped at ``port``'s FIFO."""
        if packet.kind != "data":
            return
        record = self._flow(packet.flow_id, packet.src, packet.dst)
        record.drops += 1
        hop = record.hops.get(port.name)
        if hop is None:
            hop = HopRecord(port.name, port.rate, port.link.delay)
            record.hops[port.name] = hop
        hop.drops += 1

    def on_pause(self, port) -> None:
        self._pause_log(port.name).on_pause(port.sim.now)

    def on_resume(self, port) -> None:
        self._pause_log(port.name).on_resume(port.sim.now)

    def _pause_log(self, port_name: str) -> _PauseLog:
        key = (self._context, port_name)
        log = self._pauses.get(key)
        if log is None:
            log = _PauseLog()
            self._pauses[key] = log
        return log

    # -- protocol hooks -------------------------------------------------------

    def on_rate_change(self, flow_id: int, old: float, new: float,
                       now: float) -> None:
        """A sender's rate (or window) moved; classify cut vs raise."""
        record = self._flows.get((self._context, flow_id))
        if record is None:
            record = self._flow(flow_id)
        if new < old:
            record.rate_cuts += 1
            if record.first_cut is None:
                record.first_cut = now
            record.last_cut = now
            if record.min_rate is None or new < record.min_rate:
                record.min_rate = new
        elif new > old:
            record.rate_raises += 1

    def on_control(self, flow_id: int, kind: str, count: int,
                   now: float) -> None:
        """A control-plane signal arrived at the sender (CNP/ACK)."""
        record = self._flows.get((self._context, flow_id))
        if record is None:
            record = self._flow(flow_id)
        if kind == "cnp":
            record.cnps += count
        elif kind == "ack":
            record.acks += count
        elif kind == "marked_window":
            record.marked_windows += count

    # -- attribution ----------------------------------------------------------

    def finalize(self) -> None:
        """Close open pauses and compute every flow's decomposition."""
        for record in self._flows.values():
            self._attribute(record)
        self._finalized = True

    def _attribute(self, record: FlowRecord) -> None:
        flow = record.flow
        completed = flow is not None and flow.completed
        serialization = record.pacing_serialization_s
        queueing = 0.0
        paused = 0.0
        propagation = 0.0
        path = self._path(record)
        for hop in path:
            if hop.last_finish is None:
                continue
            serialization += hop.last_serialization
            propagation += hop.delay
            if hop.last_wait_enqueue is not None and \
                    hop.last_start is not None:
                wait = max(hop.last_start - hop.last_wait_enqueue, 0.0)
                log = self._pauses.get((record.context, hop.port))
                overlap = 0.0 if log is None else min(
                    log.overlap(hop.last_wait_enqueue, hop.last_start),
                    wait)
                queueing += wait - overlap
                paused += overlap
        components = {
            "serialization_s": serialization,
            "queueing_s": queueing,
            "paused_s": paused,
            "rate_limited_s": record.rate_limited_s,
            "propagation_s": propagation,
            "residual_s": 0.0,
        }
        record.completed = completed
        if completed:
            fct = flow.completion_time - flow.start_time
            record.fct_s = fct
            components["residual_s"] = fct - sum(
                components[k] for k in COMPONENTS
                if k != "residual_s")
        record.components = components
        record.causes = self._causes(record, path)

    def _path(self, record: FlowRecord) -> "List[HopRecord]":
        """Hops in traversal order (dict insertion = first-enqueue)."""
        return list(record.hops.values())

    def _causes(self, record: FlowRecord,
                path: "List[HopRecord]") -> List[dict]:
        causes: List[dict] = []
        for hop in path:
            if hop.marks > 0:
                causes.append({"kind": "ecn", "port": hop.port,
                               "marks": hop.marks})
                break  # marks persist downstream; first hop is origin
        for hop in path:
            if hop.last_wait_enqueue is None or hop.last_start is None:
                continue
            log = self._pauses.get((record.context, hop.port))
            if log is None:
                continue
            a = record.flow.start_time if record.flow is not None \
                else hop.last_wait_enqueue
            b = record.flow.completion_time if record.completed \
                else hop.last_finish
            if b is None:
                continue
            paused_s = log.overlap(a, b)
            if paused_s > 0.0:
                causes.append({
                    "kind": "pfc", "port": hop.port,
                    "paused_s": paused_s,
                    "pauses": log.count_overlapping(a, b)})
        if record.rate_cuts > 0:
            cause = {"kind": "rate", "cuts": record.rate_cuts,
                     "cnps": record.cnps,
                     "min_rate_bytes_per_s": record.min_rate,
                     "first_cut_s": record.first_cut,
                     "last_cut_s": record.last_cut}
            if record.marked_windows:
                cause["marked_windows"] = record.marked_windows
            causes.append(cause)
        if record.drops > 0:
            causes.append({"kind": "drops", "count": record.drops})
        return causes

    # -- output ---------------------------------------------------------------

    def records(self) -> List[FlowRecord]:
        """All flow records (finalize first for attributions)."""
        return list(self._flows.values())

    def flow_events(self) -> List[dict]:
        """One run-log ``flow`` event payload per flow."""
        if not self._finalized:
            self.finalize()
        events = []
        for record in self._flows.values():
            flow = record.flow
            event: Dict[str, Any] = {
                "flow_id": record.flow_id,
                "completed": record.completed,
                "components": dict(record.components or {}),
                "src": record.src,
                "dst": record.dst,
                "protocol": record.protocol,
                "packets": record.emitted,
                "drops": record.drops,
                "cnps": record.cnps,
                "rate_cuts": record.rate_cuts,
                "path": [hop.port for hop in record.hops.values()],
                "causes": record.causes,
            }
            if record.context is not None:
                event["context"] = record.context
            if flow is not None:
                event["size_bytes"] = flow.size_bytes
                event["start_s"] = flow.start_time
            if record.fct_s is not None:
                event["fct_s"] = record.fct_s
                residual = record.components["residual_s"]
                event["attributed_share"] = 1.0 - (
                    abs(residual) / record.fct_s) if record.fct_s > 0 \
                    else 1.0
            events.append(event)
        events.sort(key=lambda e: (e.get("context") or "",
                                   e["flow_id"]))
        return events

    def publish(self, registry) -> None:
        """Aggregate the breakdown into the metrics registry.

        Called once at finalization (never per packet): component
        *shares* of completed flows land in histograms under
        ``obs.forensics.*`` so report quantile tables and
        ``repro compare`` pick the breakdown up without new plumbing.
        """
        if not self._finalized:
            self.finalize()
        completed = [r for r in self._flows.values() if r.completed]
        registry.counter("obs.forensics.flows_total").inc(
            len(self._flows))
        registry.counter("obs.forensics.flows_completed_total").inc(
            len(completed))
        registry.counter("obs.forensics.drops_total").inc(
            sum(r.drops for r in self._flows.values()))
        for record in completed:
            registry.histogram("obs.forensics.fct_s").observe(
                record.fct_s)
            fct = record.fct_s
            if fct <= 0:
                continue
            for key in COMPONENTS:
                share = record.components[key] / fct
                if key == "residual_s":
                    share = abs(share)
                registry.histogram(
                    f"obs.forensics.{key[:-2]}_share").observe(share)

    def worst(self, k: int) -> List[FlowRecord]:
        """Completed flows with the largest FCTs, worst first."""
        if not self._finalized:
            self.finalize()
        done = [r for r in self._flows.values() if r.completed]
        done.sort(key=lambda r: r.fct_s, reverse=True)
        return done[:k]

    def worst_paused(self, k: int) -> List[dict]:
        """Flows most throttled by PFC pause, for verdict cross-links."""
        if not self._finalized:
            self.finalize()
        hit = [r for r in self._flows.values()
               if r.components is not None
               and r.components["paused_s"] > 0.0]
        hit.sort(key=lambda r: r.components["paused_s"], reverse=True)
        out = []
        for record in hit[:k]:
            entry = {"flow_id": record.flow_id,
                     "paused_s": record.components["paused_s"]}
            if record.context is not None:
                entry["context"] = record.context
            if record.fct_s is not None:
                entry["fct_s"] = record.fct_s
            ports = [c["port"] for c in record.causes
                     if c.get("kind") == "pfc"]
            if ports:
                entry["ports"] = ports
            out.append(entry)
        return out


# -- ambient ledger (the PR 3 active/null pattern) ----------------------------

_ledger: Optional[FlowLedger] = None
_requested = False


def active_ledger() -> Optional[FlowLedger]:
    """The installed ledger, or None when forensics is off."""
    return _ledger


def set_ledger(ledger: Optional[FlowLedger]
               ) -> Optional[FlowLedger]:
    """Install ``ledger`` (None disables); returns the previous one."""
    global _ledger
    previous = _ledger
    _ledger = ledger
    return previous


@contextmanager
def use_ledger(ledger: Optional[FlowLedger]
               ) -> Iterator[Optional[FlowLedger]]:
    """Scoped :func:`set_ledger`; always restores the previous one."""
    previous = set_ledger(ledger)
    try:
        yield ledger
    finally:
        set_ledger(previous)


def set_requested(flag: bool) -> None:
    """CLI switch: make ``Telemetry`` bundles create a ledger."""
    global _requested
    _requested = bool(flag)


def requested() -> bool:
    return _requested


def attach_flow_forensics(net, context: Optional[str] = None
                          ) -> Optional[FlowLedger]:
    """Wire the ambient ledger onto ``net`` (no-op when off).

    The experiment-side integration point, mirroring
    :func:`repro.obs.health.attach_packet_health`: experiments call it
    unconditionally after building a network (and before installing
    flows), and it costs nothing unless ``repro run --forensics``
    installed a ledger.
    """
    ledger = active_ledger()
    if ledger is None:
        return None
    ledger.attach(net, context=context)
    return ledger


# -- rendering (the `repro explain` layer) ------------------------------------

def _fmt_time(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    if abs(seconds) >= 1.0:
        return f"{seconds:.3f}s"
    if abs(seconds) >= 1e-3:
        return f"{seconds * 1e3:.3f}ms"
    return f"{seconds * 1e6:.2f}us"


def _fmt_rate(rate: Optional[float]) -> str:
    if rate is None:
        return "-"
    return f"{rate * 8 / 1e9:.3g}Gb/s"


def _describe_cause(cause: dict) -> str:
    kind = cause.get("kind")
    if kind == "ecn":
        return (f"{cause['port']} marked {cause['marks']} of this "
                f"flow's packets CE")
    if kind == "pfc":
        return (f"PFC paused {cause['port']} for "
                f"{_fmt_time(cause['paused_s'])} across "
                f"{cause['pauses']} pause interval(s) during the flow")
    if kind == "rate":
        window = ""
        if cause.get("first_cut_s") is not None:
            window = (f" between {_fmt_time(cause['first_cut_s'])} and "
                      f"{_fmt_time(cause['last_cut_s'])}")
        feedback = ""
        if cause.get("cnps"):
            feedback = f", {cause['cnps']} CNP(s)"
        elif cause.get("marked_windows"):
            feedback = f", {cause['marked_windows']} marked window(s)"
        return (f"congestion control cut the rate {cause['cuts']} "
                f"time(s){window} (floor "
                f"{_fmt_rate(cause.get('min_rate_bytes_per_s'))}"
                f"{feedback})")
    if kind == "drops":
        return f"{cause['count']} packet(s) tail-dropped"
    return str(cause)


def render_flow(event: dict) -> str:
    """Attribution table + causal chain for one ``flow`` event."""
    lines = []
    context = f" [{event['context']}]" if event.get("context") else ""
    route = ""
    if event.get("src"):
        route = f"  {event['src']} -> {event['dst']}"
    size = ""
    if event.get("size_bytes") is not None:
        size = f"  {event['size_bytes']}B"
    status = "completed" if event["completed"] else "INCOMPLETE"
    fct = event.get("fct_s")
    fct_text = f"  FCT {_fmt_time(fct)}" if fct is not None else ""
    lines.append(f"flow {event['flow_id']}{context}{route}{size}"
                 f"{fct_text}  ({status})")
    components = event.get("components") or {}
    if components:
        lines.append(f"  {'component':<16} {'time':>12} {'share':>8}")
        for key in COMPONENTS:
            if key not in components:
                continue
            value = components[key]
            share = f"{value / fct * 100:6.1f}%" if fct else "     -"
            lines.append(f"  {key[:-2]:<16} "
                         f"{_fmt_time(value):>12} {share:>8}")
    if event.get("attributed_share") is not None:
        lines.append(f"  attributed: "
                     f"{event['attributed_share'] * 100:.2f}% of FCT")
    causes = event.get("causes") or []
    if causes:
        lines.append("  causal chain:")
        for cause in causes:
            lines.append(f"    - {_describe_cause(cause)}")
    path = event.get("path") or []
    if path:
        lines.append(f"  path: {' -> '.join(path)}")
    return "\n".join(lines)


def render_explain(events: List[dict], flow_id: Optional[int] = None,
                   worst: int = 5,
                   context: Optional[str] = None) -> str:
    """The ``repro explain`` output over a run's ``flow`` events."""
    flows = [e for e in events if e.get("type") == "flow"
             or "components" in e]
    if context is not None:
        flows = [e for e in flows if e.get("context") == context]
    if not flows:
        return ("no flow events found -- was the run made with "
                "`repro run --forensics`?")
    if flow_id is not None:
        selected = [e for e in flows if e["flow_id"] == flow_id]
        if not selected:
            known = sorted({e["flow_id"] for e in flows})
            return (f"flow {flow_id} not in this log; known flow ids: "
                    f"{known}")
        return "\n\n".join(render_flow(e) for e in selected)
    done = [e for e in flows if e.get("fct_s") is not None]
    done.sort(key=lambda e: e["fct_s"], reverse=True)
    chosen = done[:worst]
    header = (f"{len(flows)} flow(s), {len(done)} completed; "
              f"showing the {len(chosen)} worst by FCT")
    body = "\n\n".join(render_flow(e) for e in chosen)
    incomplete = len(flows) - len(done)
    tail = f"\n\n({incomplete} flow(s) did not complete)" \
        if incomplete else ""
    return f"{header}\n\n{body}{tail}"
