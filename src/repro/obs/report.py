"""Text dashboard rendered from a run log.

``python -m repro report <run.jsonl>`` validates the log and prints:

* a run header (id, experiment, params hash, seed, status, wall),
* the span tree (flame-style aggregation of every recorded span),
* top counters/gauges by magnitude,
* quantile tables for every histogram,
* the per-flow FCT breakdown when the run was made with
  ``--forensics`` (completion-time CDF plus the component-share
  distribution across flows), and
* any warnings and fault events the run recorded.

Everything is derived from the JSONL alone -- the dashboard works on
logs copied off another machine or from a crashed run (a truncated
log still renders; it just fails validation).

``python -m repro report --fleet <queue_dir>`` instead stitches the
cross-host trace shards under ``<queue_dir>/traces/`` into one
coordinator -> workers -> cells tree (:func:`render_fleet`).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.analysis.reporting import format_table
from repro.obs.metrics import top_metrics
from repro.obs.runlog import read_events
from repro.obs.spans import (build_fleet_tree, format_span_tree,
                             read_trace_records)


def _header(events: List[dict]) -> str:
    start = next((e for e in events if e["type"] == "run_start"), {})
    end = next((e for e in reversed(events)
                if e["type"] == "run_end"), {})
    lines = [f"run         {start.get('run_id', '?')}",
             f"experiment  {start.get('experiment', '?')}",
             f"params      {str(start.get('params_hash', '?'))[:16]}"]
    if start.get("seed") is not None:
        lines.append(f"seed        {start['seed']}")
    status = end.get("status", "(no run_end -- truncated?)")
    lines.append(f"status      {status}")
    if end.get("error"):
        lines.append(f"error       {end['error']}")
    if end.get("wall_s") is not None:
        lines.append(f"wall        {end['wall_s']:.3f}s")
    return "\n".join(lines)


def _metrics_sections(snapshot: Dict[str, dict]) -> List[str]:
    sections = []
    scalars = top_metrics(snapshot, limit=25)
    if scalars:
        sections.append(format_table(
            ["metric", "type", "value"],
            [[name, data["type"], data["value"]]
             for name, data in scalars],
            title="top metrics"))
    histograms = [(name, data) for name, data in snapshot.items()
                  if data.get("type") == "histogram"
                  and data.get("count")]
    if histograms:
        quantile_keys: List[str] = sorted(
            {q for _, data in histograms
             for q in data.get("quantiles", {})},
            key=float)
        headers = (["histogram", "count", "mean", "min"]
                   + [f"p{q}" for q in quantile_keys] + ["max"])
        rows = []
        for name, data in histograms:
            quantiles = data.get("quantiles", {})
            rows.append([name, data["count"], data["mean"],
                         data["min"]]
                        + [quantiles.get(q) for q in quantile_keys]
                        + [data["max"]])
        sections.append(format_table(headers, rows,
                                     title="histogram quantiles"))
    return sections


#: Quantile grid for the forensics CDF tables.
_FLOW_QUANTILES = (0.0, 0.5, 0.9, 0.99, 1.0)


def _quantile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank quantile of an already-sorted list."""
    index = min(int(q * (len(sorted_values) - 1) + 0.5),
                len(sorted_values) - 1)
    return sorted_values[index]


def _forensics_section(flows: List[dict]) -> Optional[str]:
    """FCT CDF + component-share distribution over ``flow`` events."""
    from repro.obs.forensics import COMPONENTS
    done = [e for e in flows if e.get("fct_s") is not None
            and e.get("fct_s") > 0]
    if not done:
        return (f"flow forensics\n  {len(flows)} flow(s) recorded, "
                "none completed")
    headers = ["", "mean"] + [f"p{int(q * 100)}"
                              for q in _FLOW_QUANTILES]
    fcts = sorted(e["fct_s"] for e in done)
    rows = [["fct_ms", sum(fcts) / len(fcts) * 1e3]
            + [_quantile(fcts, q) * 1e3 for q in _FLOW_QUANTILES]]
    for key in COMPONENTS:
        shares = sorted(e["components"].get(key, 0.0) / e["fct_s"]
                        for e in done)
        rows.append([f"{key[:-2]}_share",
                     sum(shares) / len(shares)]
                    + [_quantile(shares, q) for q in _FLOW_QUANTILES])
    incomplete = len(flows) - len(done)
    title = (f"flow forensics -- {len(done)} completed flow(s)"
             + (f", {incomplete} incomplete" if incomplete else "")
             + " (explain with 'python -m repro explain')")
    return format_table(headers, rows, title=title)


def render_events(events: List[dict]) -> str:
    """Render the dashboard for already-parsed run-log events."""
    sections = [_header(events)]

    span_events = [e for e in events if e["type"] == "span"]
    if span_events:
        sections.append("spans\n" + format_span_tree(span_events))

    snapshot: Optional[Dict[str, dict]] = None
    for event in reversed(events):
        if event["type"] == "metrics":
            snapshot = event["snapshot"]
            break
    if snapshot:
        sections.extend(_metrics_sections(snapshot))

    flows = [e for e in events if e["type"] == "flow"]
    if flows:
        forensics = _forensics_section(flows)
        if forensics:
            sections.append(forensics)

    warnings = [e for e in events if e["type"] == "warning"]
    if warnings:
        sections.append("warnings\n" + "\n".join(
            f"  - {w['message']}" for w in warnings))
    faults = [e for e in events if e["type"] == "fault"]
    if faults:
        sections.append("fault events\n" + "\n".join(
            "  - {event}{port}".format(
                event=f["event"],
                port=f" port={f['port']}" if "port" in f else "")
            for f in faults))
    return "\n\n".join(sections)


def render_report(path: Union[str, Path]) -> str:
    """Load one run log and render its dashboard."""
    return render_events(read_events(path))


def render_fleet(root: Union[str, Path],
                 trace_id: Optional[str] = None) -> str:
    """Render one distributed sweep's stitched trace tree.

    ``root`` is a queue directory (or any directory with a
    ``traces/`` subdir of shard files); ``trace_id`` picks a specific
    trace, defaulting to the most recent one.  The tree nests
    coordinator -> ``worker:<id>`` -> ``cell[i]``, with worker levels
    synthesized as envelopes when only cell records survived.
    """
    records = read_trace_records(root)
    chosen, spans = build_fleet_tree(records, trace_id=trace_id)
    if not spans:
        available = sorted({r.get("trace_id") for r in records
                            if r.get("trace_id")})
        if available:
            return ("no records for trace "
                    f"{trace_id!r}; available traces:\n" + "\n".join(
                        f"  {tid}" for tid in available))
        return f"no fleet trace records under {root}"
    return (f"fleet trace {chosen} "
            f"({len(records)} record(s) across shards)\n"
            + format_span_tree(spans))
