"""Unified telemetry: metrics registry, run logs, span profiling.

The observability layer every serving stack grows eventually, scoped
to this reproduction's three execution engines (the packet simulator,
the DDE fluid integrator, and the parallel sweep runner):

:mod:`repro.obs.metrics`
    A hierarchical registry of counters, gauges and streaming
    histograms (P-squared quantile estimation -- no sample storage).
    A process-global *active registry* defaults to a no-op
    :class:`~repro.obs.metrics.NullRegistry`, so instrumented hot
    paths cost nothing unless a run explicitly turns telemetry on.

:mod:`repro.obs.runlog`
    A structured JSONL event stream per experiment run -- run id,
    parameter hash, spans, warnings, fault events, metric snapshots --
    so any run is reconstructable after the fact, plus the schema
    validator the CI smoke job uses.

:mod:`repro.obs.spans`
    Context-manager profiling spans (wall time, CPU time, allocation
    deltas when tracemalloc is tracing) nested experiment ->
    sweep-cell -> integration, aggregated into a flame-style text
    tree.

:mod:`repro.obs.telemetry`
    The :class:`~repro.obs.telemetry.Telemetry` bundle tying the three
    together: ``activate()`` installs the registry, span recorder and
    health session, streams the run log, and exports Prometheus-text
    and CSV metric snapshots on exit.  Every experiment in
    :mod:`repro.experiments.registry` accepts ``telemetry=``, and the
    CLI exposes ``--telemetry DIR`` and ``python -m repro report``.

:mod:`repro.obs.health`
    The live health layer: streaming pathology detectors (queue limit
    cycles vs. the Thm. 1 fixed point, TIMELY unfairness drift, PFC
    pause storms / deadlock precursors, stalled convergence) fed by
    periodic in-run snapshots, emitting ``health`` events into the
    run log and a final per-run verdict.

:mod:`repro.obs.live`
    ``python -m repro watch``: tail a live run log (tolerant of the
    truncated final line an in-flight writer leaves) into a
    refreshing TTY dashboard.

:mod:`repro.obs.diff`
    ``python -m repro compare``: cross-run regression diffing over
    telemetry directories or bench reports, with noise-aware
    thresholds and new/resolved health findings -- the CI gate.

:mod:`repro.obs.serve`
    ``python -m repro serve``: the fleet observability plane -- a
    stdlib HTTP server next to a queue or telemetry directory
    exposing merged Prometheus ``/metrics`` (coordinator registry +
    per-worker heartbeat snapshots), a ``/events`` SSE stream of the
    run-log shards, ``/fleet`` liveness JSON, and the stitched
    cross-host ``/trace`` tree.

:mod:`repro.obs.profile`
    Sampling profiler for the engine hot loops: a sidecar thread
    attributes wall time to scheduler/port/protocol/engine frames
    with zero per-event cost in the profiled thread.

:mod:`repro.obs.forensics`
    Per-flow causal FCT attribution: a
    :class:`~repro.obs.forensics.FlowLedger` folds cheap sim hooks
    into one record per flow, decomposing each completion time into
    serialization / queueing / PFC pause / rate-limited components
    with causal annotations; ``python -m repro run --forensics``
    records ``flow`` events and ``python -m repro explain`` renders
    them.
"""

from repro.obs.health import (Detector, HealthFinding, HealthMonitor,
                              HealthSession, HybridDriftDetector,
                              PauseStormDetector,
                              QueueOscillationDetector,
                              StalledConvergenceDetector,
                              UnfairnessDriftDetector,
                              attach_packet_health, current_session,
                              set_session, use_session, verdict_for)
from repro.obs.forensics import (FlowLedger, active_ledger,
                                 attach_flow_forensics, render_explain,
                                 render_flow, set_ledger, use_ledger)
from repro.obs.metrics import (MetricsRegistry, NullRegistry,
                               NULL_REGISTRY, get_registry,
                               sanitize, set_registry, use_registry)
from repro.obs.profile import (SamplingProfiler, profiled,
                               publish_engine_rates)
from repro.obs.runlog import RunLog, read_events, validate_file
from repro.obs.scrape import scrape_network, scrape_port
from repro.obs.serve import FleetAggregator, ObservabilityServer
from repro.obs.spans import (SpanRecorder, build_fleet_tree,
                             format_span_tree, new_trace_id,
                             read_trace_records, span)
from repro.obs.telemetry import Telemetry, current

__all__ = [
    "MetricsRegistry", "NullRegistry", "NULL_REGISTRY",
    "get_registry", "set_registry", "use_registry", "sanitize",
    "RunLog", "read_events", "validate_file",
    "scrape_network", "scrape_port",
    "SpanRecorder", "format_span_tree", "span",
    "build_fleet_tree", "new_trace_id", "read_trace_records",
    "FleetAggregator", "ObservabilityServer",
    "SamplingProfiler", "profiled", "publish_engine_rates",
    "Telemetry", "current",
    "Detector", "HealthFinding", "HealthMonitor", "HealthSession",
    "QueueOscillationDetector", "UnfairnessDriftDetector",
    "PauseStormDetector", "StalledConvergenceDetector",
    "HybridDriftDetector",
    "attach_packet_health", "current_session", "set_session",
    "use_session", "verdict_for",
    "FlowLedger", "active_ledger", "attach_flow_forensics",
    "render_explain", "render_flow", "set_ledger", "use_ledger",
]
