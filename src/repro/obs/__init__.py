"""Unified telemetry: metrics registry, run logs, span profiling.

The observability layer every serving stack grows eventually, scoped
to this reproduction's three execution engines (the packet simulator,
the DDE fluid integrator, and the parallel sweep runner):

:mod:`repro.obs.metrics`
    A hierarchical registry of counters, gauges and streaming
    histograms (P-squared quantile estimation -- no sample storage).
    A process-global *active registry* defaults to a no-op
    :class:`~repro.obs.metrics.NullRegistry`, so instrumented hot
    paths cost nothing unless a run explicitly turns telemetry on.

:mod:`repro.obs.runlog`
    A structured JSONL event stream per experiment run -- run id,
    parameter hash, spans, warnings, fault events, metric snapshots --
    so any run is reconstructable after the fact, plus the schema
    validator the CI smoke job uses.

:mod:`repro.obs.spans`
    Context-manager profiling spans (wall time, CPU time, allocation
    deltas when tracemalloc is tracing) nested experiment ->
    sweep-cell -> integration, aggregated into a flame-style text
    tree.

:mod:`repro.obs.telemetry`
    The :class:`~repro.obs.telemetry.Telemetry` bundle tying the three
    together: ``activate()`` installs the registry and span recorder,
    streams the run log, and exports Prometheus-text and CSV metric
    snapshots on exit.  Every experiment in
    :mod:`repro.experiments.registry` accepts ``telemetry=``, and the
    CLI exposes ``--telemetry DIR`` and ``python -m repro report``.
"""

from repro.obs.metrics import (MetricsRegistry, NullRegistry,
                               NULL_REGISTRY, get_registry,
                               sanitize, set_registry, use_registry)
from repro.obs.runlog import RunLog, read_events, validate_file
from repro.obs.scrape import scrape_network, scrape_port
from repro.obs.spans import SpanRecorder, format_span_tree, span
from repro.obs.telemetry import Telemetry, current

__all__ = [
    "MetricsRegistry", "NullRegistry", "NULL_REGISTRY",
    "get_registry", "set_registry", "use_registry", "sanitize",
    "RunLog", "read_events", "validate_file",
    "scrape_network", "scrape_port",
    "SpanRecorder", "format_span_tree", "span",
    "Telemetry", "current",
]
