"""In-run pathology detectors -- the live health layer.

The paper's headline results are *pathologies*: DCQCN's queue falls
into a limit cycle once the feedback delay grows (Thm. 2 / Fig. 5),
TIMELY's infinite fixed-point family lets flow rates drift to
arbitrary unfairness (Thm. 4 / Fig. 9), and incast on a lossless
fabric degenerates into PFC pause storms.  The telemetry layer (PR 3)
records what happened; this module *recognizes* those signatures
while a run executes, in the spirit of online stability monitors from
the control-theoretic AQM literature (Ariba et al.; Reynier's RED
stability condition): every pathology leaves a fingerprint in
observable queue/rate statistics, so a streaming detector fed by
periodic snapshots can flag it without storing the full trace.

Architecture, mirroring the active-registry pattern of
:mod:`repro.obs.metrics`:

* :class:`Detector` subclasses consume periodic snapshots
  (``sample(t, signals)``) and yield :class:`HealthFinding` records,
  streaming where the signature allows it and at ``finish()``
  otherwise.
* :class:`HealthMonitor` drives a set of detectors over one
  simulation or integration, deduplicates findings, and forwards
  them to the active session.
* :class:`HealthSession` is the per-run collector
  :class:`~repro.obs.telemetry.Telemetry` installs: findings become
  schema-validated ``health`` events in the run log the moment they
  fire (a live ``repro watch`` shows them), and the session's
  :meth:`~HealthSession.verdict` -- ``clean`` / ``warning`` /
  ``pathological`` -- is stamped into the log as the final
  ``health.verdict`` event.

Zero-cost rule: experiments attach monitors **only when a session is
active** (:func:`current_session` is None while telemetry is off), so
the packet event loop and the DDE stepping loop never see a detector
unless the user asked for one.  The bench guard in
:func:`repro.perf.bench.bench_telemetry_overhead` holds the attached
case to the same throughput as well.

Snapshot signal names (all optional; detectors skip missing ones):

``queue``
    Bottleneck queue depth (bytes for packet sims, packets for fluid
    models -- detectors are scale-free or take ``q_star`` in the same
    unit).
``rates``
    Per-flow sending rates, any common unit.
``pfc_pauses``
    Cumulative PAUSE frames sent by the switch under watch.
``pfc_longest_pause_s``
    Age of the oldest still-asserted PAUSE
    (:meth:`repro.sim.pfc.PFCController.longest_active_pause`).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.analysis.oscillation import dominant_oscillation
from repro.obs import metrics as _metrics

#: Finding severities, mildest first; the run verdict is derived from
#: the worst finding.
SEVERITIES = ("info", "warning", "critical")

#: Verdicts a run can earn.
VERDICTS = ("clean", "warning", "pathological")

_SEVERITY_RANK = {severity: rank
                  for rank, severity in enumerate(SEVERITIES)}


@dataclass(frozen=True)
class HealthFinding:
    """One detector firing (also the shape of a run-log health event)."""

    detector: str           #: detector name, e.g. ``queue_oscillation``
    kind: str               #: specific signature within the detector
    severity: str           #: one of :data:`SEVERITIES`
    message: str            #: human-readable one-liner
    sim_time_s: Optional[float] = None  #: sim clock when it fired
    context: str = ""       #: cell/scenario label, e.g. ``N=10``
    paper_ref: str = ""     #: the result this signature reproduces
    data: Dict[str, float] = field(default_factory=dict)

    def as_event_fields(self) -> dict:
        """Payload for :meth:`repro.obs.runlog.RunLog.health`."""
        fields = {"detector": self.detector, "kind": self.kind,
                  "severity": self.severity, "message": self.message,
                  "data": dict(self.data)}
        if self.sim_time_s is not None:
            fields["sim_time_s"] = self.sim_time_s
        if self.context:
            fields["context"] = self.context
        if self.paper_ref:
            fields["paper_ref"] = self.paper_ref
        return fields


def _jain(rates: np.ndarray) -> float:
    """Jain's index without the input policing of the shared helper
    (streaming samples legitimately hit the all-zero start)."""
    total = float(np.sum(rates))
    if total <= 0.0:
        return float("nan")
    return total ** 2 / (rates.size * float(np.sum(rates ** 2)))


class Detector:
    """Base streaming detector.

    ``sample`` is called once per periodic snapshot and may return
    findings that can be decided online; ``finish`` is called once
    when the run ends and returns whatever needs the full horizon
    (tail windows, settle checks).  Detectors must be deterministic:
    same snapshot series, same findings.
    """

    name = "detector"
    paper_ref = ""

    def sample(self, t: float,
               signals: dict) -> Optional[List[HealthFinding]]:
        return None

    def finish(self) -> List[HealthFinding]:
        return []

    def reset(self) -> None:
        """Drop buffered samples (halved-step retry re-feeds us)."""

    def _finding(self, kind: str, severity: str, message: str,
                 t: Optional[float] = None,
                 **data: float) -> HealthFinding:
        return HealthFinding(detector=self.name, kind=kind,
                             severity=severity, message=message,
                             sim_time_s=t, paper_ref=self.paper_ref,
                             data={key: float(value)
                                   for key, value in data.items()})


class SeriesDetector(Detector):
    """Shared buffering for detectors over a sampled time series."""

    def __init__(self):
        self._times: List[float] = []

    def reset(self) -> None:
        self._times.clear()

    def _rewind_guard(self, t: float) -> None:
        """Reset on time going backwards (integration retry)."""
        if self._times and t < self._times[-1]:
            self.reset()

    def _window_slice(self, times: np.ndarray,
                      window: float) -> np.ndarray:
        return times >= times[-1] - window


class QueueOscillationDetector(SeriesDetector):
    """Queue limit cycle vs. the fluid fixed point (Thm. 2 / Fig. 5).

    Watches the ``queue`` signal.  Two signatures:

    * ``limit_cycle`` (critical): over the trailing ``window`` the
      queue's coefficient of variation exceeds ``cov_threshold`` AND
      the detrended spectrum concentrates more than
      ``power_threshold`` of its power in one line
      (:func:`repro.analysis.oscillation.dominant_oscillation`) --
      the same criterion the paper's Fig. 5 analysis applies, which
      separates a genuine limit cycle from wideband packet noise.
      Checked every ``check_interval`` of sim time, so it fires
      *during* the run, close to where the oscillation sets in.
    * ``fixed_point_deviation`` (warning, at finish): the tail-window
      mean sits more than ``q_star_rtol`` away from the Thm. 1 fixed
      point ``q_star`` supplied by the caller (same unit as the
      samples).
    """

    name = "queue_oscillation"
    paper_ref = "Thm. 2 / Fig. 5"

    def __init__(self, window: float,
                 q_star: Optional[float] = None,
                 cov_threshold: float = 0.15,
                 power_threshold: float = 0.25,
                 q_star_rtol: float = 0.5,
                 check_interval: Optional[float] = None,
                 min_samples: int = 64):
        super().__init__()
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self.q_star = q_star
        self.cov_threshold = cov_threshold
        self.power_threshold = power_threshold
        self.q_star_rtol = q_star_rtol
        self.check_interval = check_interval
        self.min_samples = min_samples
        self._values: List[float] = []
        self._next_check = -np.inf
        self._fired_cycle = False

    def reset(self) -> None:
        super().reset()
        self._values.clear()
        self._next_check = -np.inf
        self._fired_cycle = False

    def sample(self, t: float,
               signals: dict) -> Optional[List[HealthFinding]]:
        queue = signals.get("queue")
        if queue is None:
            return None
        self._rewind_guard(t)
        self._times.append(t)
        self._values.append(float(queue))
        if (self.check_interval is None or self._fired_cycle
                or t < self._next_check
                or len(self._times) < self.min_samples):
            return None
        self._next_check = t + self.check_interval
        return self._check_cycle(t)

    def _tail(self) -> "tuple[np.ndarray, np.ndarray]":
        times = np.asarray(self._times)
        values = np.asarray(self._values)
        mask = self._window_slice(times, self.window)
        return times[mask], values[mask]

    def _check_cycle(self, t: float) -> List[HealthFinding]:
        # Never judge the start-up transient: wait until the trailing
        # window no longer overlaps the first window of samples, so
        # the initial ramp-and-settle of a perfectly stable system
        # (large CoV, ring-down spectrum) is not judged at all.
        if self._times[-1] - self._times[0] < 2 * self.window:
            return []
        times, values = self._tail()
        if times.size < self.min_samples:
            return []
        mean = float(np.mean(values))
        std = float(np.std(values))
        cov = std / mean if mean > 0 else (np.inf if std > 0 else 0.0)
        if cov <= self.cov_threshold:
            return []
        try:
            est = dominant_oscillation(times, values)
        except ValueError:
            return []  # too few / non-uniform samples in the window
        if not (est.frequency_hz > 0
                and est.power_fraction > self.power_threshold):
            return []
        self._fired_cycle = True
        return [self._finding(
            "limit_cycle", "critical",
            f"queue limit cycle: CoV {cov:.2f} over the last "
            f"{self.window * 1e3:.1f} ms, dominant line at "
            f"{est.frequency_hz / 1e3:.1f} kHz carrying "
            f"{est.power_fraction:.0%} of the power",
            t=t, cov=cov, frequency_hz=est.frequency_hz,
            power_fraction=est.power_fraction,
            amplitude=est.amplitude, queue_mean=mean)]

    def finish(self) -> List[HealthFinding]:
        if len(self._times) < self.min_samples:
            return []
        findings = [] if self._fired_cycle else \
            self._check_cycle(self._times[-1])
        if self.q_star and self.q_star > 0:
            _, values = self._tail()
            mean = float(np.mean(values))
            deviation = abs(mean - self.q_star) / self.q_star
            if deviation > self.q_star_rtol:
                findings.append(self._finding(
                    "fixed_point_deviation", "warning",
                    f"tail queue mean {mean:.3g} sits "
                    f"{deviation:.0%} from the Thm. 1 fixed point "
                    f"{self.q_star:.3g}",
                    t=self._times[-1], queue_mean=mean,
                    q_star=self.q_star, deviation=deviation))
        return findings


class UnfairnessDriftDetector(SeriesDetector):
    """Rate divergence / Jain-index trend (Thm. 4 / Fig. 9).

    Watches the ``rates`` signal.  TIMELY's fixed points form a
    continuum, so nothing pulls per-flow rates back together; the
    Jain index either settles visibly below 1 (scenario-dependent
    operating point) or keeps degrading.  Signatures:

    * ``persistent_unfairness`` (critical, at finish): tail-window
      mean Jain index below ``jain_critical``.
    * ``fairness_drift`` (warning, at finish): the index fell by more
      than ``drift_warning`` between the opening and closing windows
      without crossing the critical line -- the slow leak that
      precedes it on longer horizons.
    """

    name = "unfairness_drift"
    paper_ref = "Thm. 4 / Fig. 9"

    def __init__(self, window: float,
                 jain_critical: float = 0.9,
                 drift_warning: float = 0.05):
        super().__init__()
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self.jain_critical = jain_critical
        self.drift_warning = drift_warning
        self._jain: List[float] = []
        self._last_rates: Optional[np.ndarray] = None

    def reset(self) -> None:
        super().reset()
        self._jain.clear()
        self._last_rates = None

    def sample(self, t: float,
               signals: dict) -> Optional[List[HealthFinding]]:
        rates = signals.get("rates")
        if rates is None:
            return None
        self._rewind_guard(t)
        rates = np.asarray(rates, dtype=float)
        if rates.size < 2:
            return None
        index = _jain(rates)
        if index != index:  # all-zero start: nothing to judge yet
            return None
        self._times.append(t)
        self._jain.append(index)
        self._last_rates = rates
        return None

    def finish(self) -> List[HealthFinding]:
        if len(self._times) < 4:
            return []
        times = np.asarray(self._times)
        jain = np.asarray(self._jain)
        tail = jain[self._window_slice(times, self.window)]
        tail_mean = float(np.mean(tail))
        t_end = float(times[-1])
        if tail_mean < self.jain_critical:
            rates_text = "/".join(
                f"{rate:.3g}" for rate in self._last_rates) \
                if self._last_rates is not None else "?"
            return [self._finding(
                "persistent_unfairness", "critical",
                f"Jain index {tail_mean:.3f} < {self.jain_critical} "
                f"over the final window (rates {rates_text}): the "
                "flows settled on an unfair operating point",
                t=t_end, jain=tail_mean)]
        head = jain[times <= times[0] + self.window]
        drop = float(np.mean(head)) - tail_mean
        if drop > self.drift_warning:
            return [self._finding(
                "fairness_drift", "warning",
                f"Jain index drifted down by {drop:.3f} "
                f"({np.mean(head):.3f} -> {tail_mean:.3f}) over the "
                "run", t=t_end, jain=tail_mean, drop=drop)]
        return []


class PauseStormDetector(SeriesDetector):
    """PFC pause storms and deadlock precursors (Section 7 / incast).

    Watches ``pfc_pauses`` (cumulative PAUSE frames) and
    ``pfc_longest_pause_s`` (age of the oldest asserted PAUSE).
    Signatures, both streaming:

    * ``pause_storm`` (warning): PAUSE emission rate over the
      trailing ``window`` exceeds ``pause_rate_threshold`` per
      second -- congestion is being pushed into upstreams faster
      than end-to-end control drains it.
    * ``sustained_pause`` (critical): one PAUSE stayed asserted
      longer than ``sustained_pause_s`` -- the buffer behind it is
      not draining, the precondition for pause propagation trees and
      PFC deadlock.
    """

    name = "pfc_pause_storm"
    paper_ref = "Sec. 2.1 / Sec. 7 (PFC)"

    def __init__(self, window: float,
                 pause_rate_threshold: float = 2000.0,
                 sustained_pause_s: float = 2e-3):
        super().__init__()
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self.pause_rate_threshold = pause_rate_threshold
        self.sustained_pause_s = sustained_pause_s
        self._pauses: List[float] = []
        self._fired: set = set()

    def reset(self) -> None:
        super().reset()
        self._pauses.clear()
        self._fired.clear()

    def sample(self, t: float,
               signals: dict) -> Optional[List[HealthFinding]]:
        pauses = signals.get("pfc_pauses")
        if pauses is None:
            return None
        self._rewind_guard(t)
        self._times.append(t)
        self._pauses.append(float(pauses))
        findings = []
        if "storm" not in self._fired and len(self._times) >= 2:
            times = np.asarray(self._times)
            mask = self._window_slice(times, self.window)
            span = times[-1] - times[mask][0]
            if span > 0:
                first = int(np.argmax(mask))
                rate = (self._pauses[-1] - self._pauses[first]) / span
                if rate > self.pause_rate_threshold:
                    self._fired.add("storm")
                    findings.append(self._finding(
                        "pause_storm", "warning",
                        f"PFC pause storm: {rate:.0f} PAUSE/s over "
                        f"the last {span * 1e3:.1f} ms",
                        t=t, pause_rate=rate,
                        pauses_total=self._pauses[-1]))
        longest = signals.get("pfc_longest_pause_s")
        if longest is not None and "sustained" not in self._fired \
                and longest > self.sustained_pause_s:
            self._fired.add("sustained")
            findings.append(self._finding(
                "sustained_pause", "critical",
                f"PAUSE asserted for {longest * 1e3:.2f} ms "
                f"(> {self.sustained_pause_s * 1e3:.2f} ms): "
                "downstream buffer is not draining (deadlock "
                "precursor)", t=t, longest_pause_s=longest))
        return findings or None


class StalledConvergenceDetector(SeriesDetector):
    """Run ended before the rates settled (convergence stall).

    Watches ``rates``.  Compares the per-flow means of the last two
    ``window``-long segments: if any flow's mean still moved by more
    than ``settle_rtol`` (relative), the system was still in
    transient -- either the horizon is too short or the control loop
    never converges (the re-convergence pathology of Section 4.4).
    Oscillation is *not* flagged here (window means of a limit cycle
    agree); that is :class:`QueueOscillationDetector`'s job.
    """

    name = "stalled_convergence"
    paper_ref = "Sec. 4.4 (convergence)"

    def __init__(self, window: float, settle_rtol: float = 0.05):
        super().__init__()
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self.settle_rtol = settle_rtol
        self._rates: List[np.ndarray] = []

    def reset(self) -> None:
        super().reset()
        self._rates.clear()

    def sample(self, t: float,
               signals: dict) -> Optional[List[HealthFinding]]:
        rates = signals.get("rates")
        if rates is None:
            return None
        self._rewind_guard(t)
        self._times.append(t)
        self._rates.append(np.asarray(rates, dtype=float).copy())
        return None

    def finish(self) -> List[HealthFinding]:
        if len(self._times) < 8:
            return []
        times = np.asarray(self._times)
        rates = np.asarray(self._rates)
        t_end = times[-1]
        last = rates[times >= t_end - self.window]
        prev = rates[(times >= t_end - 2 * self.window)
                     & (times < t_end - self.window)]
        if last.size == 0 or prev.size == 0:
            return []
        last_mean = np.mean(last, axis=0)
        prev_mean = np.mean(prev, axis=0)
        scale = np.maximum(np.abs(last_mean), 1e-12)
        drift = np.abs(last_mean - prev_mean) / scale
        worst = float(np.max(drift))
        if worst <= self.settle_rtol:
            return []
        flow = int(np.argmax(drift))
        return [self._finding(
            "not_settled", "warning",
            f"flow {flow} still moving at run end: window-mean rate "
            f"changed {worst:.0%} between the last two "
            f"{self.window * 1e3:.1f} ms windows",
            t=float(t_end), worst_drift=worst, flow=flow)]


class HybridDriftDetector(SeriesDetector):
    """Fluid-vs-packet divergence in hybrid runs (PR 7 coupler).

    Watches the drift signals
    :class:`repro.sim.hybrid.HybridDCQCNCoupler` publishes each tick
    (``hybrid_backlog_delta_bytes``, ``hybrid_queue_bytes``,
    ``hybrid_rate_residual``).  The hybrid mode is only honest while
    the fluid backlog and the packet queue tell the same story about
    the bottleneck, so sustained disagreement is itself a pathology
    of the *method*, distinct from the protocol pathologies the other
    detectors flag.  Signatures:

    * ``backlog_divergence`` (warning, streaming): over the trailing
      ``window`` the mean |fluid backlog - packet queue| exceeds
      ``delta_rtol`` of the mean total queue -- the two halves of the
      hybrid have stopped agreeing on where the bytes are.  Checked
      every ``check_interval`` (default ``window / 4``).
    * ``mice_starved`` (warning, streaming): the residual-capacity
      fraction granted to the packet mice stays at or below
      ``residual_floor`` for a whole window -- the fluid background
      flows have swallowed the line and the packet half is idling on
      the coupler's clamp, so its statistics are no longer
      informative.
    * ``runaway_divergence`` (critical, at finish): the tail-window
      mean total queue is more than ``growth_critical`` times the
      previous window's mean -- the coupled system is blowing up
      rather than settling, usually a tick/feedback-delay mismatch.
    * ``tail_drift`` (warning, at finish): the tail mean moved more
      than ``drift_rtol`` relative to the previous window without
      crossing the runaway line -- the hybrid has not converged on
      the horizon it was given.
    """

    name = "hybrid_drift"
    paper_ref = "Sec. 3 (fluid-model fidelity)"

    def __init__(self, window: float,
                 delta_rtol: float = 0.5,
                 residual_floor: float = 0.05,
                 drift_rtol: float = 0.25,
                 growth_critical: float = 2.0,
                 check_interval: Optional[float] = None,
                 min_samples: int = 32):
        super().__init__()
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self.delta_rtol = delta_rtol
        self.residual_floor = residual_floor
        self.drift_rtol = drift_rtol
        self.growth_critical = growth_critical
        self.check_interval = check_interval \
            if check_interval is not None else window / 4
        self.min_samples = min_samples
        self._deltas: List[float] = []
        self._queues: List[float] = []
        self._residuals: List[float] = []
        self._next_check = -np.inf
        self._fired_divergence = False
        self._fired_starved = False

    def reset(self) -> None:
        super().reset()
        self._deltas.clear()
        self._queues.clear()
        self._residuals.clear()
        self._next_check = -np.inf
        self._fired_divergence = False
        self._fired_starved = False

    def sample(self, t: float,
               signals: dict) -> Optional[List[HealthFinding]]:
        delta = signals.get("hybrid_backlog_delta_bytes")
        if delta is None:
            return None
        self._rewind_guard(t)
        self._times.append(t)
        self._deltas.append(float(delta))
        self._queues.append(
            float(signals.get("hybrid_queue_bytes", 0.0)))
        self._residuals.append(
            float(signals.get("hybrid_rate_residual", 1.0)))
        if t < self._next_check \
                or len(self._times) < self.min_samples:
            return None
        self._next_check = t + self.check_interval
        return self._check_streaming(t)

    def _tail_mask(self, window: float) -> np.ndarray:
        return self._window_slice(np.asarray(self._times), window)

    def _check_streaming(self, t: float) -> List[HealthFinding]:
        # Skip the start-up transient, same rationale as the queue
        # oscillation detector: the first window legitimately sees
        # the fluid state and packet queue filling at different
        # speeds.
        if self._times[-1] - self._times[0] < 2 * self.window:
            return []
        mask = self._tail_mask(self.window)
        deltas = np.asarray(self._deltas)[mask]
        queues = np.asarray(self._queues)[mask]
        residuals = np.asarray(self._residuals)[mask]
        findings: List[HealthFinding] = []
        queue_mean = float(np.mean(queues))
        delta_mean = float(np.mean(np.abs(deltas)))
        scale = max(queue_mean, 1.0)
        if not self._fired_divergence \
                and delta_mean / scale > self.delta_rtol:
            self._fired_divergence = True
            findings.append(self._finding(
                "backlog_divergence", "warning",
                f"fluid/packet backlog disagreement: mean |delta| "
                f"{delta_mean:.3g} B is {delta_mean / scale:.0%} of "
                f"the {queue_mean:.3g} B mean queue over the last "
                f"{self.window * 1e3:.1f} ms",
                t=t, backlog_delta_bytes=delta_mean,
                queue_mean_bytes=queue_mean,
                delta_fraction=delta_mean / scale))
        if not self._fired_starved and residuals.size \
                and float(np.max(residuals)) <= self.residual_floor:
            self._fired_starved = True
            findings.append(self._finding(
                "mice_starved", "warning",
                f"packet mice pinned at the residual-capacity clamp "
                f"(<= {self.residual_floor:.0%} of line rate) for "
                f"{self.window * 1e3:.1f} ms: fluid background flows "
                "own the bottleneck",
                t=t, residual_max=float(np.max(residuals))))
        return findings

    def finish(self) -> List[HealthFinding]:
        if len(self._times) < self.min_samples:
            return []
        findings = self._check_streaming(self._times[-1])
        times = np.asarray(self._times)
        queues = np.asarray(self._queues)
        t_end = float(times[-1])
        tail = queues[times >= t_end - self.window]
        prev = queues[(times >= t_end - 2 * self.window)
                      & (times < t_end - self.window)]
        if tail.size == 0 or prev.size == 0:
            return findings
        tail_mean = float(np.mean(tail))
        prev_mean = float(np.mean(prev))
        scale = max(abs(prev_mean), 1.0)
        growth = tail_mean / scale
        drift = abs(tail_mean - prev_mean) / scale
        if growth > self.growth_critical:
            findings.append(self._finding(
                "runaway_divergence", "critical",
                f"hybrid queue running away: tail-window mean "
                f"{tail_mean:.3g} B is {growth:.1f}x the previous "
                f"window's {prev_mean:.3g} B -- the coupled system "
                "is not tracking a fixed point",
                t=t_end, tail_mean_bytes=tail_mean,
                prev_mean_bytes=prev_mean, growth=growth))
        elif drift > self.drift_rtol:
            findings.append(self._finding(
                "tail_drift", "warning",
                f"hybrid tail still moving: window-mean queue "
                f"changed {drift:.0%} between the last two "
                f"{self.window * 1e3:.1f} ms windows",
                t=t_end, tail_mean_bytes=tail_mean,
                prev_mean_bytes=prev_mean, drift=drift))
        return findings


class HealthMonitor:
    """Drives detectors over one simulation/integration.

    Forwards every new finding to ``session`` (default: the active
    one) the moment it fires, deduplicating per ``(detector, kind)``
    so a persistent pathology produces one event, not thousands.
    ``context`` labels the findings with the cell/scenario that
    produced them.  ``checkpoint_every`` > 0 additionally asks the
    session to stamp a metrics snapshot into the run log every that
    many samples, giving a live ``watch`` fresh gauges mid-run.
    """

    def __init__(self, detectors: Sequence[Detector],
                 context: str = "",
                 session: Optional["HealthSession"] = None,
                 checkpoint_every: int = 0):
        self.detectors = list(detectors)
        self.context = context
        self.session = session if session is not None \
            else current_session()
        self.checkpoint_every = checkpoint_every
        self.findings: List[HealthFinding] = []
        self._fired: set = set()
        self._samples = 0
        self._finalized = False

    def sample(self, t: float, **signals) -> None:
        """Feed one periodic snapshot to every detector."""
        for detector in self.detectors:
            findings = detector.sample(t, signals)
            if findings:
                for finding in findings:
                    self._record(finding)
        self._samples += 1
        if self.checkpoint_every and self.session is not None \
                and self._samples % self.checkpoint_every == 0:
            self.session.checkpoint()

    def observe_state(self, queue_index: int = 0,
                      rate_slice: Optional[slice] = None):
        """Adapter for :func:`repro.core.fluid.dde.integrate`'s
        ``observer=``: maps a raw state vector onto the ``queue`` /
        ``rates`` signals."""
        def observer(t: float, state: np.ndarray) -> None:
            self.sample(
                t, queue=float(state[queue_index]),
                rates=state[rate_slice]
                if rate_slice is not None else None)
        return observer

    def _record(self, finding: HealthFinding) -> None:
        key = (finding.detector, finding.kind)
        if key in self._fired:
            return
        self._fired.add(key)
        if self.context and not finding.context:
            finding = replace(finding, context=self.context)
        self.findings.append(finding)
        if self.session is not None:
            self.session.add(finding)

    def finalize(self) -> List[HealthFinding]:
        """Collect end-of-run findings; idempotent."""
        if not self._finalized:
            self._finalized = True
            for detector in self.detectors:
                for finding in detector.finish():
                    self._record(finding)
        return self.findings

    @property
    def verdict(self) -> str:
        """Verdict over this monitor's findings alone."""
        return verdict_for(self.findings)


def attach_packet_health(net, detectors: Sequence[Detector],
                         interval: float,
                         context: str = "",
                         stop: Optional[float] = None,
                         checkpoint_every: int = 0,
                         session: Optional["HealthSession"] = None,
                         ) -> Optional[HealthMonitor]:
    """Attach streaming detectors to a built packet-sim topology.

    Samples -- via the engine's :meth:`~repro.sim.engine.Simulator
    .sample_every` hook -- the bottleneck queue depth, every
    installed sender's current rate, and (when a switch carries a
    PFC controller) the cumulative PAUSE count and oldest-pause age.
    Returns None without touching the simulation when no health
    session is active, which is what keeps detectors zero-cost while
    telemetry is off; call ``finalize()`` on the returned monitor
    after ``sim.run``.
    """
    if session is None:
        session = current_session()
    if session is None:
        return None
    monitor = HealthMonitor(detectors, context=context,
                            session=session,
                            checkpoint_every=checkpoint_every)
    pfcs = [switch.pfc for switch in net.switches.values()
            if getattr(switch, "pfc", None) is not None]

    def sample(now: float) -> None:
        signals: dict = {
            "queue": net.bottleneck_port.occupancy_bytes}
        if net.senders:
            signals["rates"] = [sender.rate
                                for sender in net.senders.values()]
        if pfcs:
            signals["pfc_pauses"] = sum(pfc.pauses_sent
                                        for pfc in pfcs)
            signals["pfc_longest_pause_s"] = max(
                pfc.longest_active_pause(now) for pfc in pfcs)
        monitor.sample(now, **signals)

    net.sim.sample_every(interval, sample, stop=stop)
    return monitor


class HealthSession:
    """Per-run finding collector, installed by ``Telemetry.activate``.

    Findings stream into the run log as ``health`` events when one is
    attached; :meth:`emit_verdict` stamps the final
    ``health.verdict`` event.  Counters land in the metrics registry
    (``obs.health.findings_total`` and per-severity variants).
    """

    def __init__(self, run_log=None, registry=None):
        self.run_log = run_log
        self.registry = registry
        self.findings: List[HealthFinding] = []
        #: Forensics cross-link: the worst pause-hit flows (as emitted
        #: by :meth:`repro.obs.forensics.FlowLedger.worst_paused`),
        #: set by telemetry finalization before :meth:`emit_verdict`
        #: so a non-clean verdict can name its victims.
        self.flow_context: Optional[List[dict]] = None

    def add(self, finding: HealthFinding) -> None:
        self.findings.append(finding)
        registry = self.registry if self.registry is not None \
            else _metrics.get_registry()
        registry.counter("obs.health.findings_total").inc()
        registry.counter(
            f"obs.health.findings_{finding.severity}_total").inc()
        if self.run_log is not None:
            try:
                self.run_log.health(**finding.as_event_fields())
            except ValueError:
                pass  # log already finished/closed

    def checkpoint(self) -> None:
        """Stamp a mid-run metrics snapshot into the run log."""
        if self.run_log is None:
            return
        registry = self.registry if self.registry is not None \
            else _metrics.get_registry()
        try:
            self.run_log.metrics(registry.snapshot())
        except ValueError:
            pass

    def verdict(self) -> str:
        return verdict_for(self.findings)

    def emit_verdict(self) -> str:
        """Write the final ``health.verdict`` event; returns verdict."""
        verdict = self.verdict()
        worst = {"clean": "info", "warning": "warning",
                 "pathological": "critical"}[verdict]
        counts = {severity: sum(
            1 for finding in self.findings
            if finding.severity == severity)
            for severity in SEVERITIES}
        extra = {}
        if self.flow_context and verdict != "clean":
            extra["worst_flows"] = self.flow_context
        if self.run_log is not None:
            try:
                self.run_log.health(
                    detector="health.verdict", severity=worst,
                    message=f"run verdict: {verdict} "
                            f"({len(self.findings)} finding(s))",
                    verdict=verdict, findings=len(self.findings),
                    by_severity=counts, **extra)
            except ValueError:
                pass
        return verdict


def verdict_for(findings: Sequence[HealthFinding]) -> str:
    """``clean`` / ``warning`` / ``pathological`` over findings."""
    worst = -1
    for finding in findings:
        worst = max(worst, _SEVERITY_RANK.get(finding.severity, 1))
    if worst >= _SEVERITY_RANK["critical"]:
        return "pathological"
    if worst >= _SEVERITY_RANK["warning"]:
        return "warning"
    return "clean"


_session: Optional[HealthSession] = None


def current_session() -> Optional[HealthSession]:
    """The active per-run session, or None when health is off."""
    return _session


def set_session(session: Optional[HealthSession]
                ) -> Optional[HealthSession]:
    """Install ``session`` (None disables); returns the previous one."""
    global _session
    previous = _session
    _session = session
    return previous


@contextmanager
def use_session(session: Optional[HealthSession]
                ) -> Iterator[Optional[HealthSession]]:
    """Scoped :func:`set_session`; always restores the previous one."""
    previous = set_session(session)
    try:
        yield session
    finally:
        set_session(previous)
