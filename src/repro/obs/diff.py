"""Cross-run regression diffing: ``python -m repro compare A B``.

Compares two *sources* -- each either a ``BENCH_*.json`` performance
report or a telemetry directory of run logs -- and reports, with
noise-aware thresholds:

* **regressions** -- metrics that moved in the bad direction by more
  than the tolerance,
* **improvements** -- moved in the good direction by more than it,
* **new / resolved health findings** -- pathologies present in one
  side only, plus per-experiment verdict transitions,
* **added / removed metrics** -- coverage changes.

Direction and tolerance come from name heuristics
(:func:`metric_direction`, :func:`metric_rtol`): throughput-style
names are higher-is-better, latency/error-style names are
lower-is-better, and wall-clock timings get a wide tolerance because
they are the noisiest thing a shared CI runner measures.  Everything
is overridable via :func:`compare`'s arguments.

The CI bench step runs ``repro compare BENCH_BASELINE.json
BENCH_PR4.json --fail-on-regression`` as its gate; the same command
works on two ``--telemetry`` directories to diff experiment runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.obs.runlog import read_events

#: Default relative tolerance for steady metrics.
DEFAULT_RTOL = 0.02

#: Relative tolerance for wall-clock style metrics (noisy on shared
#: runners; a 25% swing in a timing micro-bench is routine).
NOISY_RTOL = 0.25

#: Name fragments marking a metric as higher-is-better.  The last
#: three cover the boolean gates of the bench report's ``engines`` /
#: ``sweeps`` sections (flattened to 0/1): ``fig05_calendar_
#: identical``, ``hybrid.tail_mean_within_tolerance`` and
#: ``hybrid.cov_ordering_preserved`` flipping True -> False must
#: surface as a regression naming the engine, not as a neutral
#: "changed".
_HIGHER_BETTER = ("per_sec", "per_second", "speedup", "throughput",
                  "hit_rate", "hits", "utilization", "goodput",
                  "jain", "identical", "within_tolerance",
                  "preserved", "flows_completed",
                  "off_over_on_ratio")

#: Name fragments marking a metric as lower-is-better.  The
#: ``*_share`` entries are the forensics FCT-attribution components
#: (:mod:`repro.obs.forensics`): more of a flow's completion time
#: spent paused, queueing, rate-limited -- or unattributed -- is
#: worse; serialization/propagation shares stay neutral (they grow
#: exactly when the bad shares shrink).
_LOWER_BETTER = ("wall_s", "cpu_s", "_seconds", "seconds_total",
                 "latency", "rtt", "misses", "drops", "drop_rate",
                 "aborts", "retries", "pauses", "divergence",
                 "findings", "occupancy", "pending", "_s",
                 "paused_share", "queueing_share",
                 "rate_limited_share", "residual_share")

#: Name fragments marking a metric as timing-noisy (wide tolerance).
_NOISY = ("wall_s", "cpu_s", "_seconds", "per_sec", "per_second",
          "speedup", "_s", "latency", "row_s")


def metric_direction(name: str) -> int:
    """+1 higher-is-better, -1 lower-is-better, 0 neutral.

    Longest-fragment match wins, so ``cache_warm_speedup`` (higher)
    beats the ``_s`` suffix buried in it.
    """
    best_len, best_dir = 0, 0
    lowered = name.lower()
    for fragment in _HIGHER_BETTER:
        if fragment in lowered and len(fragment) > best_len:
            best_len, best_dir = len(fragment), 1
    for fragment in _LOWER_BETTER:
        if lowered.endswith(fragment) or f"{fragment}." in lowered \
                or f"{fragment}_" in lowered:
            if len(fragment) > best_len:
                best_len, best_dir = len(fragment), -1
    return best_dir


def metric_rtol(name: str, default: float = DEFAULT_RTOL) -> float:
    """Noise-aware relative tolerance for ``name``."""
    lowered = name.lower()
    for fragment in _NOISY:
        if lowered.endswith(fragment) or fragment in lowered:
            return NOISY_RTOL
    return default


@dataclass(frozen=True)
class MetricDelta:
    """One metric's movement between the two sides."""

    name: str
    before: float
    after: float
    direction: int  #: +1 higher-better / -1 lower-better / 0 neutral
    rtol: float

    @property
    def rel_change(self) -> float:
        if self.before == 0:
            return float("inf") if self.after != 0 else 0.0
        return (self.after - self.before) / abs(self.before)

    @property
    def classification(self) -> str:
        """``regression`` / ``improvement`` / ``unchanged`` /
        ``changed`` (neutral direction, beyond tolerance)."""
        rel = self.rel_change
        if abs(rel) <= self.rtol:
            return "unchanged"
        if self.direction == 0:
            return "changed"
        good = rel > 0 if self.direction > 0 else rel < 0
        return "improvement" if good else "regression"

    def describe(self) -> str:
        arrow = "+" if self.rel_change >= 0 else ""
        return (f"{self.name}: {self.before:.6g} -> {self.after:.6g} "
                f"({arrow}{self.rel_change:.1%}, tol "
                f"{self.rtol:.0%})")


@dataclass
class RegressionReport:
    """Everything ``repro compare`` found."""

    before: str
    after: str
    regressions: List[MetricDelta] = field(default_factory=list)
    improvements: List[MetricDelta] = field(default_factory=list)
    changed: List[MetricDelta] = field(default_factory=list)
    unchanged: int = 0
    added: List[str] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)
    new_findings: List[str] = field(default_factory=list)
    resolved_findings: List[str] = field(default_factory=list)
    verdict_changes: List[str] = field(default_factory=list)

    @property
    def has_regressions(self) -> bool:
        return bool(self.regressions or self.new_findings)

    def exit_code(self, fail_on_regression: bool) -> int:
        return 1 if fail_on_regression and self.has_regressions else 0


# -- source loading -----------------------------------------------------------


def _flatten(prefix: str, value, out: Dict[str, float]) -> None:
    """Collect numeric leaves of nested dicts as dotted names.

    Booleans flatten to 0/1 so the bench report's gate flags (the
    ``engines`` section's bit-identity and hybrid-tolerance checks,
    the sweep determinism checks) participate in the diff: a True ->
    False flip is a -100% move, far beyond any tolerance, and the
    direction fragments classify it as a regression.
    """
    if isinstance(value, bool):
        out[prefix] = 1.0 if value else 0.0
        return
    if isinstance(value, (int, float)):
        out[prefix] = float(value)
    elif isinstance(value, dict):
        for key, child in value.items():
            _flatten(f"{prefix}.{key}" if prefix else str(key),
                     child, out)


def _load_bench(path: Path) -> Tuple[Dict[str, float],
                                     Dict[str, set],
                                     Dict[str, str]]:
    with open(path, encoding="utf-8") as stream:
        report = json.load(stream)
    metrics: Dict[str, float] = {}
    # Environment descriptors are identity, not performance; diffing
    # them as metrics would flag "python 3.11 -> 3.12" as a change.
    for key in ("platform", "python", "cpu_count", "version",
                "pre_pr_baseline"):
        report.pop(key, None)
    _flatten("", report, metrics)
    return metrics, {}, {}


def _snapshot_metrics(snapshot: Dict[str, dict]) -> Dict[str, float]:
    metrics: Dict[str, float] = {}
    for name, entry in snapshot.items():
        kind = entry.get("type")
        if kind in ("counter", "gauge"):
            value = entry.get("value")
            if isinstance(value, (int, float)) \
                    and not isinstance(value, bool):
                metrics[name] = float(value)
        elif kind == "histogram":
            for stat in ("count", "mean"):
                value = entry.get(stat)
                if isinstance(value, (int, float)) \
                        and not isinstance(value, bool):
                    metrics[f"{name}.{stat}"] = float(value)
    return metrics


def _load_telemetry_dir(directory: Path) -> Tuple[Dict[str, float],
                                                  Dict[str, set],
                                                  Dict[str, str]]:
    """Latest run per experiment -> (metrics, findings, verdicts).

    Metric names are prefixed ``<experiment>.`` so two experiments'
    identically-named gauges don't collide; findings are
    ``(experiment, detector, kind)`` keys.
    """
    latest: Dict[str, Path] = {}
    for path in sorted(directory.glob("*.jsonl"),
                       key=lambda p: p.stat().st_mtime):
        try:
            events = read_events(path)
        except (OSError, json.JSONDecodeError):
            continue
        if not events or events[0].get("type") != "run_start":
            continue
        experiment = events[0].get("experiment", path.stem)
        latest[experiment] = path  # mtime-sorted: last wins
    metrics: Dict[str, float] = {}
    findings: Dict[str, set] = {}
    verdicts: Dict[str, str] = {}
    for experiment, path in latest.items():
        events = read_events(path)
        keys = set()
        for event in events:
            event_type = event.get("type")
            if event_type == "metrics":
                for name, value in _snapshot_metrics(
                        event.get("snapshot", {})).items():
                    metrics[f"{experiment}.{name}"] = value
            elif event_type == "health":
                if event.get("detector") == "health.verdict":
                    verdicts[experiment] = event.get("verdict",
                                                     "unknown")
                else:
                    keys.add((event.get("detector"),
                              event.get("kind", "-")))
            elif event_type == "run_end":
                wall = event.get("wall_s")
                if isinstance(wall, (int, float)):
                    metrics[f"{experiment}.run.wall_s"] = float(wall)
        findings[experiment] = keys
    return metrics, findings, verdicts


def load_source(source: Union[str, Path]) -> Tuple[Dict[str, float],
                                                   Dict[str, set],
                                                   Dict[str, str]]:
    """Load a compare side: bench JSON or telemetry directory.

    Returns ``(metrics, findings_per_experiment,
    verdict_per_experiment)``; the finding/verdict maps are empty for
    bench reports.
    """
    path = Path(source)
    if path.is_dir():
        return _load_telemetry_dir(path)
    if path.is_file():
        return _load_bench(path)
    raise FileNotFoundError(f"no such bench report or telemetry "
                            f"directory: {source}")


# -- comparison ---------------------------------------------------------------


def compare(before: Union[str, Path], after: Union[str, Path],
            rtol: Optional[float] = None,
            default_rtol: float = DEFAULT_RTOL) -> RegressionReport:
    """Diff two sources into a :class:`RegressionReport`.

    ``rtol`` forces one tolerance for every metric; the default lets
    :func:`metric_rtol` pick per metric (wide for timing noise, tight
    for counts).
    """
    metrics_a, findings_a, verdicts_a = load_source(before)
    metrics_b, findings_b, verdicts_b = load_source(after)
    report = RegressionReport(before=str(before), after=str(after))

    report.added = sorted(set(metrics_b) - set(metrics_a))
    report.removed = sorted(set(metrics_a) - set(metrics_b))
    for name in sorted(set(metrics_a) & set(metrics_b)):
        delta = MetricDelta(
            name=name, before=metrics_a[name], after=metrics_b[name],
            direction=metric_direction(name),
            rtol=rtol if rtol is not None
            else metric_rtol(name, default_rtol))
        bucket = delta.classification
        if bucket == "regression":
            report.regressions.append(delta)
        elif bucket == "improvement":
            report.improvements.append(delta)
        elif bucket == "changed":
            report.changed.append(delta)
        else:
            report.unchanged += 1

    for experiment in sorted(set(findings_a) | set(findings_b)):
        before_keys = findings_a.get(experiment, set())
        after_keys = findings_b.get(experiment, set())
        for detector, kind in sorted(after_keys - before_keys):
            report.new_findings.append(
                f"{experiment}: {detector}/{kind}")
        for detector, kind in sorted(before_keys - after_keys):
            report.resolved_findings.append(
                f"{experiment}: {detector}/{kind}")
    for experiment in sorted(set(verdicts_a) & set(verdicts_b)):
        old, new = verdicts_a[experiment], verdicts_b[experiment]
        if old != new:
            report.verdict_changes.append(
                f"{experiment}: {old} -> {new}")
    return report


def render_report(report: RegressionReport) -> str:
    """Human-readable compare output."""
    lines = [f"== repro compare ==",
             f"before: {report.before}",
             f"after:  {report.after}", ""]
    if report.regressions:
        lines.append(f"REGRESSIONS ({len(report.regressions)}):")
        lines += [f"  - {d.describe()}" for d in report.regressions]
        lines.append("")
    if report.new_findings:
        lines.append(f"NEW HEALTH FINDINGS "
                     f"({len(report.new_findings)}):")
        lines += [f"  - {text}" for text in report.new_findings]
        lines.append("")
    if report.verdict_changes:
        lines.append("VERDICT CHANGES:")
        lines += [f"  - {text}" for text in report.verdict_changes]
        lines.append("")
    if report.improvements:
        lines.append(f"improvements ({len(report.improvements)}):")
        lines += [f"  + {d.describe()}" for d in report.improvements]
        lines.append("")
    if report.resolved_findings:
        lines.append(f"resolved health findings "
                     f"({len(report.resolved_findings)}):")
        lines += [f"  + {text}" for text in report.resolved_findings]
        lines.append("")
    if report.changed:
        lines.append(f"changed (no good/bad direction, "
                     f"{len(report.changed)}):")
        lines += [f"  ~ {d.describe()}" for d in report.changed]
        lines.append("")
    if report.added:
        lines.append(f"added metrics: {len(report.added)}")
    if report.removed:
        lines.append(f"removed metrics ({len(report.removed)}):")
        lines += [f"  {name}" for name in report.removed]
    lines.append(f"unchanged within tolerance: {report.unchanged}")
    lines.append("")
    if report.has_regressions:
        lines.append("RESULT: regressions detected")
    else:
        lines.append("RESULT: no regressions")
    return "\n".join(lines)
