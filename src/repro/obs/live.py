"""Watch mode: tail a live run log into a refreshing TTY dashboard.

``python -m repro watch obs/`` follows the newest (or a named) run
log while the experiment writes it from another process, showing run
identity, the latest metrics snapshot, health findings as they fire,
fault events, the slowest forensics-attributed flows (``--forensics``
runs), and finally the run verdict.  Three pieces:

:class:`RunLogTailer`
    Incremental JSONL reader.  Remembers its byte offset between
    polls, buffers a partial final line until the writer completes it
    (the live twin of :func:`repro.obs.runlog.read_events`'s
    truncation tolerance), and detects file replacement/truncation
    (a new run reusing the path) by shrinkage, resetting cleanly.

:class:`WatchState`
    Event-fold accumulator: feed it events in order and it maintains
    the latest-known view a dashboard needs.  Pure and synchronous --
    the unit tests drive it without any filesystem.

:func:`render_dashboard`
    ``WatchState`` -> text.  Pure as well; the only impure parts of
    watch mode are the tailer's reads and the redraw loop.

The default experiment loop buffers run-log writes through the OS in
whatever chunks Python flushes; pass ``--telemetry-fsync`` (or
``Telemetry(fsync=True)``) on the writing side for the promptest
tail.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

#: Dashboard redraw / poll cadence, seconds.
DEFAULT_INTERVAL = 0.5

#: How many of the most recent health/fault/warning lines to show.
TAIL_LINES = 8

_SEVERITY_BADGE = {"info": "i", "warning": "!", "critical": "!!"}


class RunLogTailer:
    """Incrementally read events appended to a JSONL run log.

    Each :meth:`poll` returns the complete events appended since the
    previous poll.  A partial final line (writer mid-``write``) is
    carried in a buffer and completed on a later poll; a file that
    *shrank* means the path was truncated or replaced by a new run,
    so the tailer resets to offset 0 and re-reads from the top.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._offset = 0
        self._buffer = ""

    def poll(self) -> List[dict]:
        try:
            size = self.path.stat().st_size
        except OSError:
            return []  # not created yet (watch started before the run)
        if size < self._offset:
            self._offset = 0
            self._buffer = ""
        if size == self._offset:
            return []
        with open(self.path, "r", encoding="utf-8") as stream:
            stream.seek(self._offset)
            chunk = stream.read()
            self._offset = stream.tell()
        data = self._buffer + chunk
        lines = data.split("\n")
        self._buffer = lines.pop()  # "" after a complete final line
        events = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # torn write; skip rather than kill the watch
        return events


class ServeTailer:
    """The :class:`RunLogTailer` twin over a ``repro serve`` plane.

    Polls ``<base_url>/events.json?offset=N`` and resumes from the
    returned offset, so a dashboard can follow a sweep on a host
    that does not mount the queue filesystem at all.  Network
    hiccups return an empty batch (the offset does not advance) --
    same skip-don't-crash discipline as the file tailer.
    """

    def __init__(self, base_url: str,
                 experiment: Optional[str] = None,
                 timeout: float = 5.0):
        self.base_url = base_url.rstrip("/")
        self.experiment = experiment
        self.timeout = timeout
        self._offset = 0

    def poll(self) -> List[dict]:
        import urllib.parse
        import urllib.request
        query = {"offset": str(self._offset)}
        if self.experiment:
            query["experiment"] = self.experiment
        url = (f"{self.base_url}/events.json?"
               f"{urllib.parse.urlencode(query)}")
        try:
            with urllib.request.urlopen(
                    url, timeout=self.timeout) as response:
                payload = json.loads(
                    response.read().decode("utf-8"))
        except (OSError, ValueError):
            return []
        self._offset = int(payload.get("offset", self._offset))
        return list(payload.get("events", []))


class WatchState:
    """Latest-known view of a run, folded from its events in order."""

    def __init__(self):
        self.run_id: Optional[str] = None
        self.experiment: Optional[str] = None
        self.params_hash: Optional[str] = None
        self.seed = None
        self.started_ts: Optional[float] = None
        self.last_ts: Optional[float] = None
        self.events = 0
        self.metrics: Dict[str, dict] = {}
        self.health: List[dict] = []
        self.verdict: Optional[str] = None
        self.faults: List[dict] = []
        self.warnings: List[dict] = []
        self.status: Optional[str] = None
        self.wall_s: Optional[float] = None
        #: Distributed-queue worker health, folded from ``worker``
        #: events: worker id -> {status, completed, failed, last_ts}.
        self.workers: Dict[str, dict] = {}
        self.cells_stolen = 0
        self.cells_quarantined = 0
        self.backend_fallback: Optional[dict] = None
        #: Flow-forensics fold (``--forensics`` runs): totals plus the
        #: slowest completed flows seen so far, worst first.
        self.flows = 0
        self.flows_completed = 0
        self.worst_flows: List[dict] = []

    @property
    def finished(self) -> bool:
        return self.status is not None

    def apply(self, event: dict) -> None:
        """Fold one run-log event into the view."""
        self.events += 1
        self.last_ts = event.get("ts", self.last_ts)
        event_type = event.get("type")
        if event_type == "run_start":
            self.run_id = event.get("run_id")
            self.experiment = event.get("experiment")
            self.params_hash = event.get("params_hash")
            self.seed = event.get("seed")
            self.started_ts = event.get("ts")
        elif event_type == "metrics":
            self.metrics = event.get("snapshot", {})
        elif event_type == "health":
            if event.get("detector") == "health.verdict":
                self.verdict = event.get("verdict")
            else:
                self.health.append(event)
        elif event_type == "fault":
            self.faults.append(event)
        elif event_type == "warning":
            self.warnings.append(event)
        elif event_type == "worker":
            self._apply_worker(event)
        elif event_type == "flow":
            self._apply_flow(event)
        elif event_type == "run_end":
            self.status = event.get("status")
            self.wall_s = event.get("wall_s")

    def _worker_slot(self, event: dict) -> Optional[dict]:
        worker_id = event.get("worker")
        if not worker_id:
            return None
        return self.workers.setdefault(
            worker_id, {"status": "live", "completed": 0,
                        "failed": 0, "claimed": 0,
                        "first_cell_ts": None, "last_ts": None})

    def _apply_worker(self, event: dict) -> None:
        """Fold one distributed-queue ``worker`` event."""
        kind = event.get("event")
        slot = self._worker_slot(event)
        if slot is not None:
            slot["last_ts"] = event.get("ts")
        if kind in ("worker_started", "worker_seen"):
            if slot is not None:
                slot["status"] = "live"
        elif kind == "worker_lost":
            if slot is not None:
                slot["status"] = "lost"
        elif kind == "worker_stopped":
            if slot is not None:
                slot["status"] = "stopped"
        elif kind == "cell_claimed":
            if slot is not None:
                slot["status"] = "live"
                slot["claimed"] += 1
                if slot["first_cell_ts"] is None:
                    slot["first_cell_ts"] = event.get("ts")
        elif kind == "cell_completed":
            if slot is not None:
                slot["status"] = "live"
                slot["completed"] += 1
                # Late-attaching watcher may have missed the claim.
                if slot["first_cell_ts"] is None:
                    slot["first_cell_ts"] = event.get("ts")
        elif kind == "cell_failed":
            if slot is not None:
                slot["status"] = "live"
                slot["failed"] += 1
        elif kind == "cell_stolen":
            self.cells_stolen += 1
            # The previous holder demonstrably stopped heartbeating
            # -- even one a late-attaching watcher never saw alive.
            previous = event.get("previous_holder")
            if previous:
                self._worker_slot({"worker": previous})["status"] = \
                    "lost"
        elif kind == "cell_quarantined":
            self.cells_quarantined += 1
        elif kind == "backend_fallback":
            self.backend_fallback = event

    def _apply_flow(self, event: dict) -> None:
        """Fold one forensics ``flow`` event (keeps the worst few)."""
        self.flows += 1
        if not event.get("completed"):
            return
        self.flows_completed += 1
        if event.get("fct_s") is None:
            return
        self.worst_flows.append(event)
        self.worst_flows.sort(key=lambda e: -e["fct_s"])
        del self.worst_flows[TAIL_LINES:]

    def worker_rate_per_min(self,
                            worker_id: str) -> Optional[float]:
        """Completed cells per minute of this worker's active span
        (first claim to last event), or None before it can be
        judged."""
        slot = self.workers.get(worker_id)
        if slot is None or not slot["completed"]:
            return None
        start = slot["first_cell_ts"]
        end = slot["last_ts"]
        if start is None or end is None or end <= start:
            return None
        return slot["completed"] / ((end - start) / 60.0)

    def apply_all(self, events: List[dict]) -> None:
        for event in events:
            self.apply(event)


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:,.6g}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def _metric_rows(snapshot: Dict[str, dict],
                 limit: int = 18) -> List[str]:
    """Pick the most dashboard-worthy rows from a metrics snapshot."""
    rows = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry.get("type")
        if kind in ("counter", "gauge"):
            rows.append(f"  {name:<44} {_format_value(entry['value'])}")
        elif kind == "histogram" and entry.get("count"):
            quantiles = entry.get("quantiles", {})
            p50 = quantiles.get("p50")
            p99 = quantiles.get("p99")
            detail = f"n={entry['count']}"
            if p50 is not None:
                detail += f" p50={_format_value(p50)}"
            if p99 is not None:
                detail += f" p99={_format_value(p99)}"
            rows.append(f"  {name:<44} {detail}")
    if len(rows) > limit:
        hidden = len(rows) - limit
        rows = rows[:limit] + [f"  ... {hidden} more "
                               f"(python -m repro report for all)"]
    return rows


def render_dashboard(state: WatchState, now: Optional[float] = None,
                     path: Union[str, Path, None] = None) -> str:
    """Render the current view as a text dashboard (pure)."""
    lines: List[str] = []
    title = state.experiment or "(waiting for run_start)"
    lines.append(f"== repro watch :: {title} ==")
    if path is not None:
        lines.append(f"log: {path}")
    if state.run_id:
        identity = f"run {state.run_id}"
        if state.params_hash:
            identity += f"  params {state.params_hash[:12]}"
        if state.seed is not None:
            identity += f"  seed {state.seed}"
        lines.append(identity)
    if state.started_ts and (state.last_ts or now):
        elapsed = (state.last_ts or now) - state.started_ts
        lines.append(f"{state.events} events, {elapsed:.1f}s of run")
    lines.append("")

    if state.verdict is not None or state.health:
        verdict = state.verdict or "(pending)"
        lines.append(f"health: {verdict} -- "
                     f"{len(state.health)} finding(s)")
        for event in state.health[-TAIL_LINES:]:
            badge = _SEVERITY_BADGE.get(event.get("severity"), "?")
            sim_t = event.get("sim_time_s")
            stamp = f" @t={sim_t:.6g}s" if sim_t is not None else ""
            lines.append(f"  [{badge}] {event.get('detector')}/"
                         f"{event.get('kind', '-')}{stamp}: "
                         f"{event.get('message', '')}")
        lines.append("")

    if state.workers or state.cells_stolen \
            or state.backend_fallback is not None:
        live = sum(1 for slot in state.workers.values()
                   if slot["status"] == "live")
        summary = f"workers: {live}/{len(state.workers)} live"
        if state.cells_stolen:
            summary += f", {state.cells_stolen} cell(s) re-leased"
        if state.cells_quarantined:
            summary += (f", {state.cells_quarantined} "
                        f"quarantined in-queue")
        lines.append(summary)
        for worker_id in sorted(state.workers):
            slot = state.workers[worker_id]
            badge = {"live": "+", "lost": "x",
                     "stopped": "-"}.get(slot["status"], "?")
            row = (f"  [{badge}] {worker_id:<28} "
                   f"{slot['status']:<8} "
                   f"done={slot['completed']} "
                   f"failed={slot['failed']}")
            rate = state.worker_rate_per_min(worker_id)
            if rate is not None:
                row += f" {rate:.1f} cells/min"
            lines.append(row)
        if state.backend_fallback is not None:
            reason = state.backend_fallback.get("cells")
            lines.append(f"  [!] coordinator fell back to local "
                         f"execution ({reason} cell(s))")
        lines.append("")

    if state.metrics:
        lines.append("metrics (latest snapshot):")
        lines.extend(_metric_rows(state.metrics))
        lines.append("")

    if state.flows:
        lines.append(f"flows: {state.flows} attributed, "
                     f"{state.flows_completed} completed "
                     f"(python -m repro explain for detail)")
        for event in state.worst_flows[:4]:
            components = event.get("components", {})
            dominant = max(components, key=components.get) \
                if components else "?"
            where = f" [{event['context']}]" \
                if event.get("context") else ""
            lines.append(f"  flow {event.get('flow_id')}{where}: "
                         f"fct={event['fct_s'] * 1e3:.3f}ms, "
                         f"mostly {dominant.rsplit('_', 1)[0]}")
        lines.append("")

    if state.faults:
        lines.append(f"faults ({len(state.faults)}):")
        envelope = {"run_id", "seq", "ts", "type", "event"}
        for event in state.faults[-TAIL_LINES:]:
            detail = " ".join(f"{key}={value}"
                              for key, value in sorted(event.items())
                              if key not in envelope)
            lines.append(f"  {event.get('event')} {detail}".rstrip())
        lines.append("")

    if state.warnings:
        lines.append(f"warnings ({len(state.warnings)}):")
        for event in state.warnings[-TAIL_LINES:]:
            lines.append(f"  {event.get('message', '')}")
        lines.append("")

    if state.finished:
        wall = f" in {state.wall_s:.2f}s" if state.wall_s is not None \
            else ""
        lines.append(f"run finished: {state.status}{wall}")
        if state.verdict is not None:
            lines.append(f"final verdict: {state.verdict}")
    else:
        lines.append("running... (ctrl-c to stop watching)")
    return "\n".join(lines)


def resolve_target(target: Union[str, Path],
                   experiment: Optional[str] = None) -> Path:
    """Map a watch target onto a run-log path.

    ``target`` may be a ``.jsonl`` file, or a directory -- in which
    case the newest run log inside is picked, optionally filtered to
    those of ``experiment`` (run ids start with the experiment name).
    A directory with no logs yet resolves only if ``experiment`` is
    given (the caller then waits for the file to appear is not
    supported -- we need one concrete path, so this raises instead).
    """
    target = Path(target)
    if target.is_file() or target.suffix == ".jsonl":
        return target
    if not target.is_dir():
        raise FileNotFoundError(f"no such run log or directory: "
                                f"{target}")
    logs = sorted(target.glob("*.jsonl"),
                  key=lambda p: p.stat().st_mtime)
    if experiment is not None:
        logs = [p for p in logs
                if p.name.startswith(f"{experiment}-")]
    if not logs:
        what = f"{experiment} run logs" if experiment else "run logs"
        raise FileNotFoundError(f"no {what} in {target}")
    return logs[-1]


def watch(target: Union[str, Path, None] = None,
          experiment: Optional[str] = None,
          interval: float = DEFAULT_INTERVAL,
          once: bool = False,
          stream=None,
          clock: Callable[[], float] = time.time,
          sleep: Callable[[float], None] = time.sleep,
          max_polls: Optional[int] = None,
          serve_url: Optional[str] = None) -> int:
    """Follow a run log until ``run_end`` (or forever, pre-run).

    ``once`` renders the current state a single time and returns --
    usable in scripts and CI.  ``serve_url`` follows a remote
    ``repro serve`` plane's ``/events.json`` instead of a local
    file.  ``stream``/``clock``/``sleep``/``max_polls`` exist for
    deterministic tests.
    """
    if stream is None:
        stream = sys.stdout
    if serve_url is not None:
        path: Union[str, Path] = serve_url
        tailer: Union[RunLogTailer, ServeTailer] = ServeTailer(
            serve_url, experiment=experiment)
    elif target is not None:
        path = resolve_target(target, experiment)
        tailer = RunLogTailer(path)
    else:
        raise ValueError("watch needs a target path or --serve URL")
    state = WatchState()
    live_tty = (not once) and hasattr(stream, "isatty") \
        and stream.isatty()
    polls = 0
    while True:
        state.apply_all(tailer.poll())
        board = render_dashboard(state, now=clock(), path=path)
        if live_tty:
            stream.write("\x1b[2J\x1b[H" + board + "\n")
        else:
            stream.write(board + "\n")
        stream.flush()
        polls += 1
        if once or state.finished:
            break
        if max_polls is not None and polls >= max_polls:
            break
        if not live_tty and not once:
            # Non-TTY continuous mode would spam full dashboards;
            # separate them visibly.
            stream.write("\n")
        try:
            sleep(interval)
        except KeyboardInterrupt:
            break
    return 0
