"""Nested profiling spans with a flame-style text report.

A :class:`SpanRecorder` tracks a stack of named spans -- experiment ->
sweep-cell -> integration is the canonical nesting -- and records wall
time (``perf_counter``), CPU time (``process_time``) and, when
``tracemalloc`` is already tracing, the net allocation delta of each
span.  The module-level :func:`span` context manager publishes into
the *active recorder* exactly like metrics publish into the active
registry: with no recorder installed it degenerates to a no-op whose
only cost is one None check, preserving the hot-path guarantees.

Spans serialize to plain dicts (the run-log ``span`` event) carrying a
slash-joined ``path``; :func:`format_span_tree` aggregates any list of
such dicts -- live records or ones re-read from a run log -- into the
indented tree report ``python -m repro report`` prints.
"""

from __future__ import annotations

import time
import tracemalloc
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional


class SpanRecord:
    """One finished span (also the shape of a run-log span event)."""

    __slots__ = ("name", "path", "depth", "start_offset", "wall_s",
                 "cpu_s", "alloc_bytes")

    def __init__(self, name: str, path: str, depth: int,
                 start_offset: float, wall_s: float, cpu_s: float,
                 alloc_bytes: Optional[int] = None):
        self.name = name
        self.path = path
        self.depth = depth
        self.start_offset = start_offset
        self.wall_s = wall_s
        self.cpu_s = cpu_s
        self.alloc_bytes = alloc_bytes

    def as_dict(self) -> dict:
        return {"name": self.name, "path": self.path,
                "depth": self.depth,
                "start_offset": self.start_offset,
                "wall_s": self.wall_s, "cpu_s": self.cpu_s,
                "alloc_bytes": self.alloc_bytes}


class SpanRecorder:
    """Collects finished spans; completed children precede parents."""

    def __init__(self):
        self.records: List[SpanRecord] = []
        self._stack: List[str] = []
        self._origin = time.perf_counter()

    @property
    def depth(self) -> int:
        return len(self._stack)

    @contextmanager
    def span(self, name: str) -> Iterator[SpanRecord]:
        """Time a block; the record is finalized when the block exits."""
        self._stack.append(name)
        path = "/".join(self._stack)
        depth = len(self._stack) - 1
        record = SpanRecord(name=name, path=path, depth=depth,
                            start_offset=time.perf_counter()
                            - self._origin,
                            wall_s=0.0, cpu_s=0.0)
        tracing = tracemalloc.is_tracing()
        alloc_start = tracemalloc.get_traced_memory()[0] if tracing \
            else None
        wall_start = time.perf_counter()
        cpu_start = time.process_time()
        try:
            yield record
        finally:
            record.wall_s = time.perf_counter() - wall_start
            record.cpu_s = time.process_time() - cpu_start
            if tracing and tracemalloc.is_tracing():
                record.alloc_bytes = \
                    tracemalloc.get_traced_memory()[0] - alloc_start
            self._stack.pop()
            self.records.append(record)


_active: Optional[SpanRecorder] = None


def get_recorder() -> Optional[SpanRecorder]:
    """The installed recorder, or None when span profiling is off."""
    return _active


def set_recorder(recorder: Optional[SpanRecorder]
                 ) -> Optional[SpanRecorder]:
    """Install ``recorder`` (None disables); returns the previous one."""
    global _active
    previous = _active
    _active = recorder
    return previous


@contextmanager
def span(name: str) -> Iterator[Optional[SpanRecord]]:
    """Record a span on the active recorder; no-op when none is set."""
    recorder = _active
    if recorder is None:
        yield None
        return
    with recorder.span(name) as record:
        yield record


def _format_bytes(n: Optional[float]) -> str:
    if n is None:
        return "-"
    for unit, scale in (("GB", 1e9), ("MB", 1e6), ("KB", 1e3)):
        if abs(n) >= scale:
            return f"{n / scale:+.1f}{unit}"
    return f"{n:+.0f}B"


def format_span_tree(records: "List[dict]") -> str:
    """Aggregate span dicts by path into an indented tree report.

    Repeated spans (the same path executed many times -- every cell of
    a sweep, every integration of a grid) collapse into one line with
    a count, like a flame graph's merged frames.  Accepts live
    :class:`SpanRecord` objects or dicts read back from a run log.
    """
    rows: Dict[str, dict] = {}
    order: List[str] = []
    for record in records:
        data = record.as_dict() if isinstance(record, SpanRecord) \
            else record
        path = data["path"]
        row = rows.get(path)
        if row is None:
            row = {"path": path, "depth": data["depth"],
                   "name": data["name"], "count": 0, "wall_s": 0.0,
                   "cpu_s": 0.0, "alloc_bytes": None,
                   "first_start": data.get("start_offset", 0.0)}
            rows[path] = row
            order.append(path)
        row["count"] += 1
        row["wall_s"] += data["wall_s"]
        row["cpu_s"] += data["cpu_s"]
        alloc = data.get("alloc_bytes")
        if alloc is not None:
            row["alloc_bytes"] = (row["alloc_bytes"] or 0) + alloc
    if not rows:
        return "(no spans recorded)"

    # Depth-first tree order: children sort under their parent by
    # first start time, which completion-ordered records do not give.
    order.sort(key=lambda p: tuple(
        rows["/".join(p.split("/")[:i + 1])]["first_start"]
        for i in range(p.count("/") + 1)))
    root_wall = sum(row["wall_s"] for row in rows.values()
                    if row["depth"] == 0) or float("nan")

    lines = [f"{'span':<44} {'calls':>6} {'wall':>9} {'cpu':>9} "
             f"{'alloc':>9} {'%':>6}"]
    lines.append("-" * len(lines[0]))
    for path in order:
        row = rows[path]
        label = "  " * row["depth"] + row["name"]
        share = 100.0 * row["wall_s"] / root_wall
        lines.append(
            f"{label:<44} {row['count']:>6} "
            f"{row['wall_s']:>8.3f}s {row['cpu_s']:>8.3f}s "
            f"{_format_bytes(row['alloc_bytes']):>9} {share:>5.1f}%")
    return "\n".join(lines)
