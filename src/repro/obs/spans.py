"""Nested profiling spans with a flame-style text report.

A :class:`SpanRecorder` tracks a stack of named spans -- experiment ->
sweep-cell -> integration is the canonical nesting -- and records wall
time (``perf_counter``), CPU time (``process_time``) and, when
``tracemalloc`` is already tracing, the net allocation delta of each
span.  The module-level :func:`span` context manager publishes into
the *active recorder* exactly like metrics publish into the active
registry: with no recorder installed it degenerates to a no-op whose
only cost is one None check, preserving the hot-path guarantees.

Spans serialize to plain dicts (the run-log ``span`` event) carrying a
slash-joined ``path``; :func:`format_span_tree` aggregates any list of
such dicts -- live records or ones re-read from a run log -- into the
indented tree report ``python -m repro report`` prints.

**Fleet traces** extend the same span shape across processes and
hosts: the queue coordinator stamps a ``trace_id`` into every task it
enqueues, workers append cell-span records to per-worker shard files
under ``<queue_dir>/traces/``, and :func:`build_fleet_tree` stitches
the shards back into one tree (synthesizing ``worker:<id>`` envelope
spans) that ``python -m repro report --fleet`` renders with
:func:`format_span_tree`.
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc
import uuid
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union


class SpanRecord:
    """One finished span (also the shape of a run-log span event)."""

    __slots__ = ("name", "path", "depth", "start_offset", "wall_s",
                 "cpu_s", "alloc_bytes")

    def __init__(self, name: str, path: str, depth: int,
                 start_offset: float, wall_s: float, cpu_s: float,
                 alloc_bytes: Optional[int] = None):
        self.name = name
        self.path = path
        self.depth = depth
        self.start_offset = start_offset
        self.wall_s = wall_s
        self.cpu_s = cpu_s
        self.alloc_bytes = alloc_bytes

    def as_dict(self) -> dict:
        return {"name": self.name, "path": self.path,
                "depth": self.depth,
                "start_offset": self.start_offset,
                "wall_s": self.wall_s, "cpu_s": self.cpu_s,
                "alloc_bytes": self.alloc_bytes}


class SpanRecorder:
    """Collects finished spans; completed children precede parents."""

    def __init__(self):
        self.records: List[SpanRecord] = []
        self._stack: List[str] = []
        self._origin = time.perf_counter()

    @property
    def depth(self) -> int:
        return len(self._stack)

    @contextmanager
    def span(self, name: str) -> Iterator[SpanRecord]:
        """Time a block; the record is finalized when the block exits."""
        self._stack.append(name)
        path = "/".join(self._stack)
        depth = len(self._stack) - 1
        record = SpanRecord(name=name, path=path, depth=depth,
                            start_offset=time.perf_counter()
                            - self._origin,
                            wall_s=0.0, cpu_s=0.0)
        tracing = tracemalloc.is_tracing()
        alloc_start = tracemalloc.get_traced_memory()[0] if tracing \
            else None
        wall_start = time.perf_counter()
        cpu_start = time.process_time()
        try:
            yield record
        finally:
            record.wall_s = time.perf_counter() - wall_start
            record.cpu_s = time.process_time() - cpu_start
            if tracing and tracemalloc.is_tracing():
                record.alloc_bytes = \
                    tracemalloc.get_traced_memory()[0] - alloc_start
            self._stack.pop()
            self.records.append(record)


_active: Optional[SpanRecorder] = None


def get_recorder() -> Optional[SpanRecorder]:
    """The installed recorder, or None when span profiling is off."""
    return _active


def set_recorder(recorder: Optional[SpanRecorder]
                 ) -> Optional[SpanRecorder]:
    """Install ``recorder`` (None disables); returns the previous one."""
    global _active
    previous = _active
    _active = recorder
    return previous


@contextmanager
def span(name: str) -> Iterator[Optional[SpanRecord]]:
    """Record a span on the active recorder; no-op when none is set."""
    recorder = _active
    if recorder is None:
        yield None
        return
    with recorder.span(name) as record:
        yield record


def _format_bytes(n: Optional[float]) -> str:
    if n is None:
        return "-"
    for unit, scale in (("GB", 1e9), ("MB", 1e6), ("KB", 1e3)):
        if abs(n) >= scale:
            return f"{n / scale:+.1f}{unit}"
    return f"{n:+.0f}B"


def format_span_tree(records: "List[dict]") -> str:
    """Aggregate span dicts by path into an indented tree report.

    Repeated spans (the same path executed many times -- every cell of
    a sweep, every integration of a grid) collapse into one line with
    a count, like a flame graph's merged frames.  Accepts live
    :class:`SpanRecord` objects or dicts read back from a run log.
    """
    rows: Dict[str, dict] = {}
    order: List[str] = []
    for record in records:
        data = record.as_dict() if isinstance(record, SpanRecord) \
            else record
        path = data["path"]
        row = rows.get(path)
        if row is None:
            row = {"path": path, "depth": data["depth"],
                   "name": data["name"], "count": 0, "wall_s": 0.0,
                   "cpu_s": 0.0, "alloc_bytes": None,
                   "first_start": data.get("start_offset", 0.0)}
            rows[path] = row
            order.append(path)
        row["count"] += 1
        row["wall_s"] += data["wall_s"]
        row["cpu_s"] += data["cpu_s"]
        alloc = data.get("alloc_bytes")
        if alloc is not None:
            row["alloc_bytes"] = (row["alloc_bytes"] or 0) + alloc
    if not rows:
        return "(no spans recorded)"

    # Depth-first tree order: children sort under their parent by
    # first start time, which completion-ordered records do not give.
    order.sort(key=lambda p: tuple(
        rows["/".join(p.split("/")[:i + 1])]["first_start"]
        for i in range(p.count("/") + 1)))
    root_wall = sum(row["wall_s"] for row in rows.values()
                    if row["depth"] == 0) or float("nan")

    lines = [f"{'span':<44} {'calls':>6} {'wall':>9} {'cpu':>9} "
             f"{'alloc':>9} {'%':>6}"]
    lines.append("-" * len(lines[0]))
    for path in order:
        row = rows[path]
        label = "  " * row["depth"] + row["name"]
        share = 100.0 * row["wall_s"] / root_wall
        lines.append(
            f"{label:<44} {row['count']:>6} "
            f"{row['wall_s']:>8.3f}s {row['cpu_s']:>8.3f}s "
            f"{_format_bytes(row['alloc_bytes']):>9} {share:>5.1f}%")
    return "\n".join(lines)


# -- cross-host fleet traces --------------------------------------------------

#: Subdirectory of a queue dir holding per-process trace shards.
TRACE_DIR_NAME = "traces"


def new_trace_id(label: str) -> str:
    """A collision-safe trace id a coordinator stamps into tasks."""
    from repro.obs.metrics import sanitize
    return f"{sanitize(label)}-{uuid.uuid4().hex[:12]}"


def trace_dir(root: Union[str, Path]) -> Path:
    return Path(root) / TRACE_DIR_NAME


def trace_shard_path(root: Union[str, Path], shard: str) -> Path:
    """The append-only shard one process writes trace records to."""
    from repro.obs.metrics import sanitize
    return trace_dir(root) / f"{sanitize(shard)}.jsonl"


def append_trace_record(shard_path: Union[str, Path],
                        record: dict) -> None:
    """Append one trace record (JSON line) to a shard.

    Appends of a line under the pipe-buffer size are atomic enough
    for the single-writer-per-shard discipline the queue uses; a torn
    final line from a crashed writer is skipped on read.
    """
    path = Path(shard_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as stream:
        stream.write(json.dumps(record, sort_keys=True,
                                default=str) + "\n")
        stream.flush()
        os.fsync(stream.fileno())


def read_trace_records(root: Union[str, Path]) -> List[dict]:
    """Every parseable record across all shards under ``root``.

    Tolerates missing directories, torn tails and foreign garbage --
    the shards live on the same shared filesystem as the queue, so
    the reader applies the queue's skip-don't-crash discipline.
    """
    records: List[dict] = []
    directory = trace_dir(root)
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return records
    for name in names:
        if not name.endswith(".jsonl"):
            continue
        try:
            text = (directory / name).read_text(encoding="utf-8")
        except OSError:
            continue
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail of a live/crashed writer
            if isinstance(record, dict) and "path" in record:
                records.append(record)
    return records


def build_fleet_tree(records: List[dict],
                     trace_id: Optional[str] = None
                     ) -> Tuple[Optional[str], List[dict]]:
    """Stitch shard records for one trace into span-tree rows.

    Picks the most recently started trace when ``trace_id`` is None.
    Records carry absolute ``ts`` wall clocks (hosts share NTP-level
    clock agreement at worst); offsets are rebased to the earliest
    record so :func:`format_span_tree` can order children.  Missing
    ancestors -- ``worker:<id>`` levels, or the coordinator root of a
    crashed run -- are synthesized as envelope spans covering their
    children, so a partial fleet still renders as one tree.
    """
    by_trace: Dict[str, List[dict]] = {}
    for record in records:
        tid = record.get("trace_id")
        if tid:
            by_trace.setdefault(tid, []).append(record)
    if trace_id is None and by_trace:
        trace_id = max(by_trace,
                       key=lambda t: max(r.get("ts", 0.0)
                                         for r in by_trace[t]))
    chosen = by_trace.get(trace_id or "", [])
    if not chosen:
        return trace_id, []
    origin = min(r.get("ts", 0.0) for r in chosen)
    rows: Dict[str, dict] = {}
    spans: List[dict] = []
    for record in chosen:
        path = record["path"]
        start = float(record.get("ts", origin)) - origin
        span_dict = {
            "name": record.get("name", path.split("/")[-1]),
            "path": path, "depth": path.count("/"),
            "start_offset": start,
            "wall_s": float(record.get("wall_s", 0.0)),
            "cpu_s": float(record.get("cpu_s", 0.0)),
            "alloc_bytes": record.get("alloc_bytes")}
        spans.append(span_dict)
        rows.setdefault(path, span_dict)
    # Synthesize envelope spans for absent ancestors (format_span_tree
    # sorts children by their ancestors' start offsets, so every
    # prefix of every path must resolve to a row).
    for span_dict in list(spans):
        parts = span_dict["path"].split("/")
        for depth in range(len(parts) - 1):
            prefix = "/".join(parts[:depth + 1])
            if prefix in rows:
                continue
            rows[prefix] = {"name": parts[depth], "path": prefix,
                            "depth": depth, "start_offset":
                            span_dict["start_offset"],
                            "wall_s": 0.0, "cpu_s": 0.0,
                            "alloc_bytes": None, "_synth": True}
            spans.append(rows[prefix])
    # Deepest-first so a synthesized root envelopes synthesized
    # worker envelopes that already cover their cells.
    for span_dict in sorted(spans, key=lambda s: -s["depth"]):
        if not span_dict.get("_synth"):
            continue
        prefix = span_dict["path"] + "/"
        children = [s for s in spans
                    if s["path"].startswith(prefix)
                    and s["path"].count("/")
                    == span_dict["depth"] + 1]
        if children:
            start = min(c["start_offset"] for c in children)
            end = max(c["start_offset"] + c["wall_s"]
                      for c in children)
            span_dict["start_offset"] = start
            span_dict["wall_s"] = end - start
            span_dict["cpu_s"] = sum(c["cpu_s"] for c in children)
    for span_dict in spans:
        span_dict.pop("_synth", None)
    spans.sort(key=lambda s: (s["depth"], s["start_offset"]))
    return trace_id, spans
