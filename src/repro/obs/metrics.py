"""Metric primitives and the hierarchical registry.

Three instrument types cover everything the simulator, fluid models
and perf layer need to report:

* :class:`Counter` -- a monotonically increasing total
  (``sim.engine.events_total``).
* :class:`Gauge` -- a last-write-wins level
  (``perf.sweep.worker_utilization``).
* :class:`Histogram` -- a streaming distribution with P-squared
  quantile estimators (Jain & Chlamtac 1985): constant memory per
  tracked quantile, no sample storage, so a million-observation
  distribution costs the same as a ten-observation one.

Names are hierarchical dotted paths (``sim.port.sw_recv.bytes_total``)
built from ``[A-Za-z0-9_.]``; :func:`sanitize` maps free-form labels
(port names like ``"sw->recv"``) onto that alphabet.

The *active registry* pattern keeps instrumentation zero-cost when
telemetry is off: module-level :func:`get_registry` returns the
installed :class:`MetricsRegistry` or, by default, the shared
:data:`NULL_REGISTRY` whose instruments are inert singletons.
Instrumented code publishes unconditionally; whether anything is
recorded is decided by whoever (the :class:`~repro.obs.telemetry
.Telemetry` context) installed a real registry.  Hot loops follow one
rule, enforced by a bench guard in the test suite: **publish at
aggregation points (end of run, end of attempt), never per event**.
"""

from __future__ import annotations

import math
import re
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: Characters legal in a metric name.
_NAME_RE = re.compile(r"^[A-Za-z0-9_.]+$")

#: Replacement pattern for free-form name parts.
_SANITIZE_RE = re.compile(r"[^A-Za-z0-9_]+")

#: Default quantiles tracked by new histograms.
DEFAULT_QUANTILES = (0.5, 0.9, 0.99)


def sanitize(part: str) -> str:
    """Map a free-form label onto the metric-name alphabet.

    ``"sw->recv"`` becomes ``"sw_recv"``; runs of illegal characters
    collapse to one underscore so distinct labels stay distinct in
    the common cases.
    """
    cleaned = _SANITIZE_RE.sub("_", str(part)).strip("_")
    return cleaned or "unnamed"


class P2Quantile:
    """Streaming quantile estimator (the P-squared algorithm).

    Tracks one quantile ``p`` with five markers -- O(1) memory and
    O(1) per observation -- trading exactness for the ability to run
    inside million-sample sweeps.  Below five observations the exact
    sorted-sample quantile is returned.
    """

    __slots__ = ("p", "_initial", "_q", "_n", "_np", "_dn")

    def __init__(self, p: float):
        if not 0.0 < p < 1.0:
            raise ValueError(f"p must be in (0, 1), got {p}")
        self.p = p
        self._initial: List[float] = []
        self._q: Optional[List[float]] = None
        self._n: List[int] = []
        self._np: List[float] = []
        self._dn: List[float] = []

    def observe(self, x: float) -> None:
        if self._q is None:
            self._initial.append(x)
            if len(self._initial) == 5:
                self._initial.sort()
                p = self.p
                self._q = list(self._initial)
                self._n = [0, 1, 2, 3, 4]
                self._np = [0.0, 2 * p, 4 * p, 2 + 2 * p, 4.0]
                self._dn = [0.0, p / 2, p, (1 + p) / 2, 1.0]
            return
        q, n = self._q, self._n
        if x < q[0]:
            q[0] = x
            k = 0
        elif x < q[1]:
            k = 0
        elif x < q[2]:
            k = 1
        elif x < q[3]:
            k = 2
        elif x <= q[4]:
            k = 3
        else:
            q[4] = x
            k = 3
        for i in range(k + 1, 5):
            n[i] += 1
        for i in range(5):
            self._np[i] += self._dn[i]
        for i in (1, 2, 3):
            d = self._np[i] - n[i]
            if (d >= 1 and n[i + 1] - n[i] > 1) or \
                    (d <= -1 and n[i - 1] - n[i] < -1):
                step = 1 if d > 0 else -1
                candidate = self._parabolic(i, step)
                if not q[i - 1] < candidate < q[i + 1]:
                    candidate = self._linear(i, step)
                q[i] = candidate
                n[i] += step

    def _parabolic(self, i: int, d: int) -> float:
        q, n = self._q, self._n
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1])
            / (n[i] - n[i - 1]))

    def _linear(self, i: int, d: int) -> float:
        q, n = self._q, self._n
        return q[i] + d * (q[i + d] - q[i]) / (n[i + d] - n[i])

    def value(self) -> float:
        """Current estimate (NaN before the first observation)."""
        if self._q is not None:
            return self._q[2]
        if not self._initial:
            return float("nan")
        ordered = sorted(self._initial)
        position = self.p * (len(ordered) - 1)
        low = int(math.floor(position))
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] * (1 - fraction) + ordered[high] * fraction


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(
                f"counters only go up; inc({amount}) on {self.name}")
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": self.kind, "value": self.value}


class Gauge:
    """Last-write-wins level."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value = float("nan")

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if self.value != self.value:  # NaN: first touch
            self.value = 0.0
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def snapshot(self) -> dict:
        return {"type": self.kind, "value": self.value}


class Histogram:
    """Streaming distribution: count/sum/min/max plus P2 quantiles."""

    __slots__ = ("name", "count", "total", "min", "max", "_quantiles")
    kind = "histogram"

    def __init__(self, name: str,
                 quantiles: Sequence[float] = DEFAULT_QUANTILES):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._quantiles: Dict[float, P2Quantile] = {
            float(q): P2Quantile(float(q)) for q in quantiles}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for estimator in self._quantiles.values():
            estimator.observe(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def quantile(self, q: float) -> float:
        """Current estimate for a tracked quantile ``q``."""
        return self._quantiles[float(q)].value()

    def quantiles(self) -> "Dict[float, float]":
        return {q: est.value()
                for q, est in sorted(self._quantiles.items())}

    def snapshot(self) -> dict:
        empty = self.count == 0
        return {"type": self.kind,
                "count": self.count,
                "sum": self.total,
                "min": None if empty else self.min,
                "max": None if empty else self.max,
                "mean": None if empty else self.mean,
                "quantiles": {f"{q:g}": (None if empty else value)
                              for q, value in
                              self.quantiles().items()}}


class MetricsRegistry:
    """Name -> instrument map with get-or-create accessors.

    Re-requesting a name returns the existing instrument; requesting
    it as a different type raises, because a silent type change would
    corrupt whatever the first publisher recorded.
    """

    def __init__(self):
        self._metrics: Dict[str, object] = {}

    def _get_or_create(self, name: str, factory, kind: str):
        metric = self._metrics.get(name)
        if metric is None:
            if not _NAME_RE.match(name):
                raise ValueError(
                    f"invalid metric name {name!r}; use "
                    "[A-Za-z0-9_.] (sanitize() free-form parts)")
            metric = factory()
            self._metrics[name] = metric
        elif metric.kind != kind:
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{metric.kind}, requested as {kind}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, lambda: Counter(name),
                                   "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name), "gauge")

    def histogram(self, name: str,
                  quantiles: Sequence[float] = DEFAULT_QUANTILES
                  ) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, quantiles), "histogram")

    def get(self, name: str) -> Optional[object]:
        """The instrument registered under ``name``, or None."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> "Dict[str, dict]":
        """All instruments as JSON-ready dicts, sorted by name."""
        return {name: self._metrics[name].snapshot()
                for name in self.names()}


class _NullInstrument:
    """Inert counter/gauge/histogram standing in when telemetry is off.

    One shared instance answers every request: the methods are empty,
    so the only cost an instrumented call site pays is the call
    itself -- and call sites follow the aggregation-point rule, so
    even that never lands in a per-event loop.
    """

    __slots__ = ()
    kind = "null"
    name = "null"
    value = 0.0
    count = 0
    total = 0.0
    min = float("nan")
    max = float("nan")
    mean = float("nan")

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return float("nan")

    def quantiles(self) -> dict:
        return {}

    def snapshot(self) -> dict:
        return {"type": "null"}


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """No-op registry: every accessor returns the inert instrument."""

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str,
                  quantiles: Sequence[float] = DEFAULT_QUANTILES
                  ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def get(self, name: str) -> None:
        return None

    def names(self) -> List[str]:
        return []

    def __len__(self) -> int:
        return 0

    def __contains__(self, name: str) -> bool:
        return False

    def snapshot(self) -> "Dict[str, dict]":
        return {}


#: The process-wide default: telemetry off.
NULL_REGISTRY = NullRegistry()

_active = NULL_REGISTRY


def get_registry():
    """The currently installed registry (the null one by default)."""
    return _active


def set_registry(registry) -> object:
    """Install ``registry`` (None restores the null); returns the old."""
    global _active
    previous = _active
    _active = registry if registry is not None else NULL_REGISTRY
    return previous


@contextmanager
def use_registry(registry) -> Iterator[object]:
    """Scoped :func:`set_registry`; always restores the previous one."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def top_metrics(snapshot: "Dict[str, dict]", limit: int = 20
                ) -> "List[Tuple[str, dict]]":
    """Counters/gauges from a snapshot, largest magnitude first."""
    scalars = [(name, data) for name, data in snapshot.items()
               if data.get("type") in ("counter", "gauge")
               and data.get("value") == data.get("value")]
    scalars.sort(key=lambda item: -abs(item[1]["value"]))
    return scalars[:limit]
