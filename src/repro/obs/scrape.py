"""Post-run metric scraping for packet-simulation topologies.

The simulator's hot loops never publish per event; instead every
component keeps cheap local counters (bytes transmitted, ECN marks,
queue high-water marks, PFC pauses) and this module *scrapes* them
into the active metrics registry after -- or at checkpoints during --
a run.  With the default null registry installed the publish calls
are inert, so drivers can scrape unconditionally.

The heavy lifting lives on the components themselves
(``Port.publish_metrics``, ``ByteFIFO.publish_metrics``,
``PFCController.publish_metrics``,
``FaultInjector.publish_metrics``); this module only walks a built
:class:`~repro.sim.topology.Network`.
"""

from __future__ import annotations

from repro.obs.metrics import get_registry, sanitize


def scrape_port(registry, port) -> None:
    """Publish one port's counters (see ``Port.publish_metrics``)."""
    port.publish_metrics(registry)


def scrape_network(registry=None, network=None) -> int:
    """Scrape every port, switch and PFC controller of a topology.

    Parameters
    ----------
    registry:
        Target registry; None uses the active one (which defaults to
        the inert null registry, making unconditional scraping free).
    network:
        Any object with ``hosts`` (name -> host with ``.port``) and
        ``switches`` (name -> switch with ``.ports`` and optional
        ``.pfc``) mappings -- i.e.
        :class:`~repro.sim.topology.Network` from any builder.

    Returns the number of ports scraped.
    """
    if registry is None:
        registry = get_registry()
    from repro.sim.packet import PACKET_POOL
    PACKET_POOL.publish_metrics(registry)
    scraped = 0
    for host in getattr(network, "hosts", {}).values():
        port = getattr(host, "port", None)
        if port is not None:
            scrape_port(registry, port)
            scraped += 1
    for name, switch in getattr(network, "switches", {}).items():
        for port in switch.ports.values():
            scrape_port(registry, port)
            scraped += 1
        registry.counter(
            f"sim.switch.{sanitize(name)}.packets_forwarded_total"
        ).inc(switch.packets_forwarded)
        pfc = getattr(switch, "pfc", None)
        if pfc is not None:
            pfc.publish_metrics(registry, name=sanitize(name))
    return scraped
