"""Structured JSONL run logs and their schema validator.

One experiment run = one ``.jsonl`` file, one JSON object per line,
streamed as the run progresses (a crashed run is still reconstructable
up to the crash).  Every event carries the envelope

``run_id``
    Identifier shared by every line of the file.
``seq``
    Strictly increasing integer -- a truncated or interleaved file
    fails validation.
``ts``
    Unix wall-clock seconds at emission.
``type``
    One of :data:`EVENT_TYPES`, each with required payload fields
    (:data:`REQUIRED_FIELDS`).

Event types:

``run_start``
    ``experiment``, ``params_hash`` (the same canonical content hash
    :mod:`repro.perf.cache` keys sweep cells with), ``version``; plus
    optional ``params``, ``seed``, ``python``, ``platform``.
``span``
    A finished profiling span (see :mod:`repro.obs.spans`).
``metrics``
    A full registry ``snapshot``.
``warning`` / ``note``
    Free-form ``message`` lines (Python warnings are captured into
    ``warning`` events while telemetry is active).
``fault``
    A fault-injector transition (``event`` plus e.g. ``port``).
``health``
    A pathology-detector finding (``detector``, ``severity``,
    ``message``; see :mod:`repro.obs.health`).  The final ``health``
    event of a run is the per-run verdict
    (``detector="health.verdict"`` with a ``verdict`` field).
``sweep``
    A sweep-runner resilience transition (``event`` one of ``resume``,
    ``cell_retry``, ``cell_timeout``, ``cell_quarantined``,
    ``pool_respawn``, ``pool_degraded``, ``interrupted``; see
    :mod:`repro.perf.sweep`), with event-specific context such as the
    cell index and error type.
``retry``
    A component retried an operation after a recoverable failure
    (``component``, e.g. ``fluid.dde`` on a halved-step integration
    retry, plus context like the failing ``t`` and the step sizes).
``worker``
    A distributed-queue lifecycle transition (``event`` one of
    ``worker_started``, ``worker_stopped``, ``worker_seen``,
    ``worker_lost``, ``cell_claimed``, ``cell_completed``,
    ``cell_failed``, ``cell_requeued``, ``cell_released``,
    ``cell_stolen``, ``cell_quarantined``, ``backend_fallback``; see
    :mod:`repro.perf.backend` and :mod:`repro.perf.worker`), with
    context such as the worker id, cell key and lease age.
``trace``
    A cross-host fleet-trace anchor: the queue coordinator records
    the ``trace_id`` it stamped into the tasks of a dispatch (plus
    the queue dir), linking this run log to the per-worker trace
    shards ``python -m repro report --fleet`` stitches.
``profile``
    A sampling-profiler summary (``samples`` plus the per-category
    share breakdown; see :mod:`repro.obs.profile`).
``flow``
    One flow's forensic record (``flow_id``, ``completed``, the
    ``components`` FCT decomposition, plus causal annotations; see
    :mod:`repro.obs.forensics`).  Emitted at finalization for every
    flow of a ``--forensics`` run; ``repro explain`` renders them.
``abort``
    An engine watchdog stopped a run (``reason`` one of
    ``max_events``/``wall_clock``, plus ``sim_time`` and
    ``events_processed``); emitted just before the engine raises
    :class:`~repro.sim.engine.SimulationAborted`, so live surfaces
    show *why* a run died.
``fuzz``
    A chaos-conformance harness transition (``event`` one of
    ``scenario_start``, ``scenario_ok``, ``violation``, ``shrunk``,
    ``summary``; see :mod:`repro.qa`), with context such as the
    scenario digest, seed and the violated oracle.
``run_end``
    ``status`` (``ok``/``error``) and total ``wall_s``.

The full schema is documented in ``docs/OBSERVABILITY.md``;
:func:`validate_file` is what the CI telemetry smoke job runs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import IO, Any, Dict, Iterable, List, Optional, Union

#: Bump when the event envelope or required fields change.
#: 2 added the ``health`` event type (PR 4).
#: 3 added the ``sweep`` and ``retry`` event types (PR 5).
#: 4 added the ``worker`` event type (PR 6, distributed queue).
#: 5 added the ``trace`` and ``profile`` event types (PR 8, fleet
#: observability plane).
#: 6 added the ``flow`` event type (PR 9, flow forensics).
#: 7 added the ``abort`` and ``fuzz`` event types (PR 10, chaos
#: conformance harness).
RUNLOG_VERSION = 7

#: Every event type a run log may contain.
EVENT_TYPES = frozenset({"run_start", "run_end", "span", "metrics",
                         "warning", "note", "fault", "health",
                         "sweep", "retry", "worker", "trace",
                         "profile", "flow", "abort", "fuzz"})

#: Required payload fields per event type (beyond the envelope).
REQUIRED_FIELDS: Dict[str, frozenset] = {
    "run_start": frozenset({"experiment", "params_hash", "version"}),
    "run_end": frozenset({"status", "wall_s"}),
    "span": frozenset({"name", "path", "depth", "wall_s", "cpu_s"}),
    "metrics": frozenset({"snapshot"}),
    "warning": frozenset({"message"}),
    "note": frozenset({"message"}),
    "fault": frozenset({"event"}),
    "health": frozenset({"detector", "severity", "message"}),
    "sweep": frozenset({"event"}),
    "retry": frozenset({"component"}),
    "worker": frozenset({"event"}),
    "trace": frozenset({"trace_id"}),
    "profile": frozenset({"samples"}),
    "flow": frozenset({"flow_id", "completed", "components"}),
    "abort": frozenset({"reason", "sim_time", "events_processed"}),
    "fuzz": frozenset({"event"}),
}

#: Envelope fields every event must carry.
ENVELOPE_FIELDS = frozenset({"run_id", "seq", "ts", "type"})


class RunLog:
    """Streaming JSONL writer for one run.

    Events are flushed line-by-line so the log survives crashes.  The
    writer enforces the same invariants the validator checks: known
    event types, monotonic ``seq``, one ``run_start`` first.

    ``fsync=True`` additionally forces every event through to the OS
    (``os.fsync`` after each flush) so a live tail -- ``python -m
    repro watch`` on another terminal, or a reader on a shared
    filesystem -- sees events promptly and a hard crash loses at most
    the line being written.  It costs one syscall per event; leave it
    off for throughput-sensitive batch runs.
    """

    def __init__(self, path: Union[str, Path], run_id: str,
                 fsync: bool = False):
        self.path = Path(path)
        self.run_id = run_id
        self.fsync = fsync
        self._seq = 0
        self._started = time.time()
        self._stream: Optional[IO[str]] = open(self.path, "w",
                                               encoding="utf-8")
        self._finished = False

    # -- event emission ---------------------------------------------------

    def emit(self, event_type: str, **fields: Any) -> dict:
        """Write one event line; returns the emitted dict."""
        if self._stream is None:
            raise ValueError(f"run log {self.path} is closed")
        if event_type not in EVENT_TYPES:
            raise ValueError(
                f"unknown event type {event_type!r}; "
                f"known: {sorted(EVENT_TYPES)}")
        missing = REQUIRED_FIELDS[event_type] - set(fields)
        if missing:
            raise ValueError(
                f"{event_type} event missing fields {sorted(missing)}")
        if self._seq == 0 and event_type != "run_start":
            raise ValueError("the first event must be run_start")
        event = {"run_id": self.run_id, "seq": self._seq,
                 "ts": time.time(), "type": event_type, **fields}
        self._stream.write(json.dumps(event, sort_keys=True,
                                      default=_jsonable) + "\n")
        self._stream.flush()
        if self.fsync:
            os.fsync(self._stream.fileno())
        self._seq += 1
        return event

    def start(self, experiment: str, params_hash: str,
              params: Any = None, seed: Optional[int] = None,
              **extra: Any) -> dict:
        """Emit the opening ``run_start`` event."""
        import platform
        fields: Dict[str, Any] = {
            "experiment": experiment,
            "params_hash": params_hash,
            "version": RUNLOG_VERSION,
            "python": platform.python_version(),
            "platform": platform.platform(),
        }
        if params is not None:
            fields["params"] = params
        if seed is not None:
            fields["seed"] = seed
        fields.update(extra)
        return self.emit("run_start", **fields)

    def warning(self, message: str, **fields: Any) -> dict:
        return self.emit("warning", message=str(message), **fields)

    def note(self, message: str, **fields: Any) -> dict:
        return self.emit("note", message=str(message), **fields)

    def fault(self, event: str, **fields: Any) -> dict:
        """Record a fault-injector transition (link flap, etc.)."""
        return self.emit("fault", event=event, **fields)

    def sweep(self, event: str, **fields: Any) -> dict:
        """Record a sweep-runner resilience transition (retry,
        timeout, quarantine, pool respawn/degrade, resume)."""
        return self.emit("sweep", event=event, **fields)

    def retry(self, component: str, **fields: Any) -> dict:
        """Record a recoverable-failure retry inside a component."""
        return self.emit("retry", component=component, **fields)

    def worker(self, event: str, **fields: Any) -> dict:
        """Record a distributed-queue worker/lease transition."""
        return self.emit("worker", event=event, **fields)

    def trace(self, trace_id: str, **fields: Any) -> dict:
        """Anchor this run to a cross-host fleet trace."""
        return self.emit("trace", trace_id=trace_id, **fields)

    def profile(self, samples: int, **fields: Any) -> dict:
        """Record a sampling-profiler summary."""
        return self.emit("profile", samples=int(samples), **fields)

    def flow(self, flow_id: int, completed: bool, components: dict,
             **fields: Any) -> dict:
        """Record one flow's forensic FCT attribution."""
        return self.emit("flow", flow_id=flow_id,
                         completed=bool(completed),
                         components=components, **fields)

    def abort(self, reason: str, sim_time: float,
              events_processed: int, **fields: Any) -> dict:
        """Record an engine-watchdog abort (cause + engine state)."""
        return self.emit("abort", reason=reason,
                         sim_time=float(sim_time),
                         events_processed=int(events_processed),
                         **fields)

    def fuzz(self, event: str, **fields: Any) -> dict:
        """Record a chaos-conformance harness transition."""
        return self.emit("fuzz", event=event, **fields)

    def health(self, detector: str, severity: str, message: str,
               **fields: Any) -> dict:
        """Record a pathology-detector finding (or the final verdict)."""
        return self.emit("health", detector=detector,
                         severity=severity, message=str(message),
                         **fields)

    def span(self, record) -> dict:
        """Record a finished :class:`~repro.obs.spans.SpanRecord`."""
        return self.emit("span", **record.as_dict())

    def metrics(self, snapshot: Dict[str, dict]) -> dict:
        """Record a full metrics-registry snapshot."""
        return self.emit("metrics", snapshot=snapshot)

    def finish(self, status: str = "ok",
               error: Optional[str] = None) -> dict:
        """Emit ``run_end``; later emits fail."""
        fields: Dict[str, Any] = {
            "status": status,
            "wall_s": time.time() - self._started}
        if error is not None:
            fields["error"] = error
        event = self.emit("run_end", **fields)
        self._finished = True
        return event

    def close(self) -> None:
        if self._stream is not None:
            if not self._finished and self._seq > 0:
                self.finish(status="abandoned")
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "RunLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None and not self._finished \
                and self._stream is not None and self._seq > 0:
            self.finish(status="error", error=repr(exc))
        self.close()


def _jsonable(obj: Any) -> Any:
    """Fallback serializer: numpy scalars/arrays, paths, then repr."""
    if hasattr(obj, "item") and callable(obj.item):
        try:
            return obj.item()
        except (TypeError, ValueError):
            pass
    if hasattr(obj, "tolist"):
        return obj.tolist()
    if isinstance(obj, Path):
        return str(obj)
    return repr(obj)


# -- reading and validation ---------------------------------------------------


def read_events(path: Union[str, Path],
                strict: bool = False) -> List[dict]:
    """Parse every event line of a run log (no validation).

    A crashed writer -- or one still running, read mid-line by a live
    tail -- leaves a truncated final line.  By default that partial
    tail is silently dropped (the events before it are intact and the
    validator still flags the missing ``run_end``); ``strict=True``
    restores the old raise-on-any-partial-JSON behaviour.  A malformed
    line *followed by* further lines is corruption, not truncation,
    and always raises.
    """
    events = []
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    last_content = -1
    for index, line in enumerate(lines):
        if line.strip():
            last_content = index
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            if strict or index != last_content:
                raise
            # Truncated final line: the writer died (or is still
            # writing) mid-event; everything before it stands.
    return events


def validate_events(events: Iterable[dict]) -> List[str]:
    """Schema-check parsed events; returns error strings (empty=valid)."""
    errors: List[str] = []
    events = list(events)
    if not events:
        return ["run log contains no events"]
    run_id = events[0].get("run_id")
    for index, event in enumerate(events):
        where = f"event {index}"
        missing_envelope = ENVELOPE_FIELDS - set(event)
        if missing_envelope:
            errors.append(f"{where}: missing envelope fields "
                          f"{sorted(missing_envelope)}")
            continue
        if event["run_id"] != run_id:
            errors.append(f"{where}: run_id {event['run_id']!r} != "
                          f"{run_id!r}")
        if event["seq"] != index:
            errors.append(f"{where}: seq {event['seq']} != {index}")
        event_type = event["type"]
        if event_type not in EVENT_TYPES:
            errors.append(f"{where}: unknown type {event_type!r}")
            continue
        missing = REQUIRED_FIELDS[event_type] - set(event)
        if missing:
            errors.append(f"{where}: {event_type} missing fields "
                          f"{sorted(missing)}")
    if events[0].get("type") != "run_start":
        errors.append("first event must be run_start, got "
                      f"{events[0].get('type')!r}")
    if events[-1].get("type") != "run_end":
        errors.append("last event must be run_end, got "
                      f"{events[-1].get('type')!r} (truncated log?)")
    return errors


def validate_file(path: Union[str, Path]) -> List[str]:
    """Parse + schema-check a run log file; returns error strings."""
    try:
        events = read_events(path)
    except (OSError, json.JSONDecodeError) as error:
        return [f"unreadable run log {path}: {error}"]
    return validate_events(events)
