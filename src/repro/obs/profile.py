"""Low-overhead sampling profiler for the packet-engine hot loops.

A background thread wakes every ``interval`` seconds, grabs the
profiled thread's current stack via :func:`sys._current_frames` (one
dict lookup -- no tracing hooks, no per-event cost in the profiled
thread), and attributes the sample to the innermost frame that
matches a known engine category:

``scheduler``
    Event-queue operations (:mod:`repro.sim.scheduler`): heap pops,
    calendar-wheel advances, bucket rehashes.
``port``
    Link/port transmit machinery (:mod:`repro.sim.link`).
``protocol``
    Protocol handlers (:mod:`repro.sim.protocols`): DCQCN/TIMELY
    rate updates, CNP generation, ack clocking.
``engine``
    The :class:`~repro.sim.engine.Simulator` run loops themselves
    (dispatch overhead across the heap/calendar/batched paths).
``fluid`` / ``hybrid``
    The ODE/DDE models and the hybrid coupler.
``other``
    Anything else (numpy internals, experiment glue).

The profiled thread pays **nothing** per event -- the sampler only
reads its stack from the outside -- so profiler-on overhead stays
within the ``bench_event_loop`` gate (< 5 %); the cost scales with
the *sampling* rate, not the event rate.

Samples aggregate into per-category shares published at stop time
(the aggregation-point rule) as ``obs.profile.*`` gauges, plus the
engine throughput gauges ``sim.engine.events_per_sec`` /
``sim.engine.pkts_per_sec`` when the caller hands the profiler a
finished :class:`~repro.sim.engine.Simulator`.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Dict, Iterator, Optional

from contextlib import contextmanager

from repro.obs import metrics as _metrics

#: Default sampling period, seconds (200 Hz).  Coarse enough that a
#: sample costs the profiled thread nothing measurable, fine enough
#: to resolve a 20 ms experiment into hundreds of samples.
DEFAULT_INTERVAL = 0.005

#: Innermost-match attribution table: (path fragment, category).
#: Order matters -- the first fragment found walking outward from the
#: innermost frame wins, so more specific modules come first.
CATEGORIES = (
    ("repro/sim/scheduler", "scheduler"),
    ("repro\\sim\\scheduler", "scheduler"),
    ("repro/sim/link", "port"),
    ("repro\\sim\\link", "port"),
    ("repro/sim/protocols", "protocol"),
    ("repro\\sim\\protocols", "protocol"),
    ("repro/sim/hybrid", "hybrid"),
    ("repro\\sim\\hybrid", "hybrid"),
    ("repro/fluid", "fluid"),
    ("repro\\fluid", "fluid"),
    ("repro/sim/engine", "engine"),
    ("repro\\sim\\engine", "engine"),
)


def classify_frame(frame) -> str:
    """Category of the innermost matching frame of a sampled stack."""
    while frame is not None:
        filename = frame.f_code.co_filename
        for fragment, category in CATEGORIES:
            if fragment in filename:
                return category
        frame = frame.f_back
    return "other"


class SamplingProfiler:
    """Samples one thread's stack from a sidecar thread.

    Profiles the thread that calls :meth:`start` (normally the main
    thread driving the simulator).  Usable as a context manager::

        with SamplingProfiler(interval=0.005) as prof:
            net.sim.run(until=0.5)
        print(prof.format_report())
    """

    def __init__(self, interval: float = DEFAULT_INTERVAL):
        if interval <= 0:
            raise ValueError(f"interval must be positive, "
                             f"got {interval}")
        self.interval = float(interval)
        self.samples: Dict[str, int] = {}
        self.total_samples = 0
        self.wall_s = 0.0
        self._target_ident: Optional[int] = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._started_at = 0.0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already running")
        self._target_ident = threading.get_ident()
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._sample_loop, name="repro-profiler",
            daemon=True)
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self.wall_s += time.perf_counter() - self._started_at
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def _sample_loop(self) -> None:
        ident = self._target_ident
        while not self._stop.wait(self.interval):
            frame = sys._current_frames().get(ident)
            if frame is None:
                continue  # target thread exited
            category = classify_frame(frame)
            self.samples[category] = \
                self.samples.get(category, 0) + 1
            self.total_samples += 1

    # -- reporting ---------------------------------------------------------

    def shares(self) -> Dict[str, float]:
        """Per-category share of samples (empty when none landed)."""
        if not self.total_samples:
            return {}
        return {category: count / self.total_samples
                for category, count in sorted(self.samples.items())}

    def report(self) -> dict:
        """JSON-ready summary (also the run-log ``profile`` event)."""
        return {"samples": self.total_samples,
                "interval_s": self.interval,
                "wall_s": self.wall_s,
                "shares": self.shares()}

    def format_report(self) -> str:
        if not self.total_samples:
            return ("(no profiler samples -- run shorter than the "
                    "sampling interval)")
        lines = [f"{'category':<12} {'samples':>8} {'share':>7}"]
        lines.append("-" * len(lines[0]))
        for category, count in sorted(self.samples.items(),
                                      key=lambda kv: -kv[1]):
            share = 100.0 * count / self.total_samples
            lines.append(f"{category:<12} {count:>8} "
                         f"{share:>6.1f}%")
        lines.append(f"{'total':<12} {self.total_samples:>8} "
                     f"{100.0:>6.1f}%  "
                     f"({self.wall_s:.3f}s wall, "
                     f"{self.interval * 1e3:g}ms interval)")
        return "\n".join(lines)

    def publish(self, registry=None) -> None:
        """Publish shares as gauges (one call at stop time)."""
        registry = registry if registry is not None \
            else _metrics.get_registry()
        registry.counter("obs.profile.samples_total").inc(
            self.total_samples)
        for category, share in self.shares().items():
            registry.gauge(
                f"obs.profile.{category}_share").set(share)


def publish_engine_rates(sim, wall_s: float,
                         registry=None) -> Dict[str, float]:
    """Publish ``sim.engine.events_per_sec`` (and ``pkts_per_sec``
    when the simulator carries a packet counter) for a finished run
    that took ``wall_s`` wall-clock seconds."""
    registry = registry if registry is not None \
        else _metrics.get_registry()
    rates: Dict[str, float] = {}
    if wall_s > 0:
        events = getattr(sim, "events_processed", 0)
        rates["events_per_sec"] = events / wall_s
        registry.gauge("sim.engine.events_per_sec").set(
            rates["events_per_sec"])
        packets = getattr(sim, "packets_processed", None)
        if packets:
            rates["pkts_per_sec"] = packets / wall_s
            registry.gauge("sim.engine.pkts_per_sec").set(
                rates["pkts_per_sec"])
    return rates


@contextmanager
def profiled(interval: float = DEFAULT_INTERVAL,
             publish: bool = True
             ) -> Iterator[SamplingProfiler]:
    """Profile a block; publishes shares to the active registry."""
    profiler = SamplingProfiler(interval=interval)
    profiler.start()
    try:
        yield profiler
    finally:
        profiler.stop()
        if publish:
            profiler.publish()
