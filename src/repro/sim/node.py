"""End hosts: NIC port plus per-flow sender/receiver protocol agents."""

from __future__ import annotations

from typing import Dict, Optional

from repro.sim.engine import Simulator
from repro.sim.link import Port
from repro.sim.packet import PACKET_POOL, Packet, PacketBatch


class Host:
    """A server with one NIC attachment toward its top-of-rack switch.

    The host dispatches arriving packets to per-flow agents:
    data packets to the flow's receiver (NP side), ACK/CNP control
    packets to the flow's sender (RP side).  Outbound packets funnel
    through :attr:`port`, the NIC serializer, so concurrent flows on
    one host naturally share (and contend for) the NIC line rate.
    """

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        #: NIC egress port; wired up by :func:`repro.sim.switch.connect`.
        self.port: Optional[Port] = None
        self._senders: Dict[int, object] = {}
        self._receivers: Dict[int, object] = {}
        #: Packets discarded on arrival because the fault injector
        #: corrupted them in flight (CRC failure at the NIC).
        self.corrupted_discarded = 0

    # -- agent registration ---------------------------------------------------

    def register_sender(self, flow_id: int, sender: object) -> None:
        """Attach the RP-side agent for a flow originating here."""
        if flow_id in self._senders:
            raise ValueError(
                f"{self.name} already has a sender for flow {flow_id}")
        self._senders[flow_id] = sender

    def register_receiver(self, flow_id: int, receiver: object) -> None:
        """Attach the NP-side agent for a flow terminating here."""
        if flow_id in self._receivers:
            raise ValueError(
                f"{self.name} already has a receiver for flow {flow_id}")
        self._receivers[flow_id] = receiver

    def unregister_sender(self, flow_id: int) -> None:
        """Detach a finished sender (keeps the dispatch table small)."""
        self._senders.pop(flow_id, None)

    def unregister_receiver(self, flow_id: int) -> None:
        """Detach a finished receiver."""
        self._receivers.pop(flow_id, None)

    @property
    def active_senders(self) -> int:
        """Number of flows currently sending from this host.

        TIMELY starts a new flow at ``C / (N + 1)`` where ``N`` is this
        count (Section 4 of the paper).
        """
        return len(self._senders)

    # -- data path ------------------------------------------------------------

    def send(self, packet: Packet) -> None:
        """Hand a packet to the NIC for (serialized) transmission."""
        if self.port is None:
            raise RuntimeError(f"{self.name} has no NIC attachment")
        self.port.send(packet)

    def send_batch(self, batch: PacketBatch) -> None:
        """Hand a whole batch to the NIC (vectorized when eligible)."""
        if self.port is None:
            raise RuntimeError(f"{self.name} has no NIC attachment")
        self.port.send_batch(batch)

    def receive(self, packet: Packet, ingress: Optional[str] = None) -> None:
        """Dispatch an arriving packet to the matching flow agent.

        Packets for unknown flows are dropped silently: they are
        in-flight stragglers of flows whose agents already finished
        and deregistered.  Corrupted packets (fault injection) fail
        the NIC CRC check and are discarded before dispatch.

        The host is a packet's terminal hop, so pool-loaned packets
        are recycled here once the handler returns; handlers copy any
        field they keep (see :class:`repro.sim.packet.PacketPool`).
        """
        if packet.corrupted:
            self.corrupted_discarded += 1
            if packet.pooled:
                PACKET_POOL.release(packet)
            return
        if packet.kind == "data":
            receiver = self._receivers.get(packet.flow_id)
            if receiver is not None:
                receiver.on_data(packet)
        elif packet.kind == "ack":
            sender = self._senders.get(packet.flow_id)
            if sender is not None:
                sender.on_ack(packet)
        elif packet.kind == "cnp":
            sender = self._senders.get(packet.flow_id)
            if sender is not None:
                sender.on_cnp(packet)
        else:
            raise ValueError(
                f"{self.name} cannot handle packet kind {packet.kind!r}")
        if packet.pooled:
            PACKET_POOL.release(packet)

    def receive_window(self, payload, arrival_times,
                       ingress: Optional[str] = None) -> None:
        """Dispatch a delivered window (batched fast path).

        ``payload`` is either a list of per-object packets (a drain
        window -- replayed through the exact :meth:`receive` one by
        one, with per-packet arrival stamps available in
        ``arrival_times``) or a :class:`PacketBatch`, dispatched to
        the flow agent's batch hook (``on_data_batch`` /
        ``on_ack_batch`` / ``on_cnp_batch``).  Agents without a batch
        hook -- there are none in-repo, but out-of-tree protocols may
        lag -- get the batch materialized into the scalar path.
        """
        if not isinstance(payload, PacketBatch):
            for packet in payload:
                self.receive(packet, ingress)
            return
        if payload.kind == "data":
            agent = self._receivers.get(payload.flow_id)
            hook = "on_data_batch"
        elif payload.kind in ("ack", "cnp"):
            agent = self._senders.get(payload.flow_id)
            hook = "on_ack_batch" if payload.kind == "ack" \
                else "on_cnp_batch"
        else:
            raise ValueError(
                f"{self.name} cannot handle batch kind {payload.kind!r}")
        if agent is None:
            return
        handler = getattr(agent, hook, None)
        if handler is not None:
            handler(payload, arrival_times)
            return
        for packet in payload.packets():
            self.receive(packet, ingress)
