"""End hosts: NIC port plus per-flow sender/receiver protocol agents."""

from __future__ import annotations

from typing import Dict, Optional

from repro.sim.engine import Simulator
from repro.sim.link import Port
from repro.sim.packet import Packet


class Host:
    """A server with one NIC attachment toward its top-of-rack switch.

    The host dispatches arriving packets to per-flow agents:
    data packets to the flow's receiver (NP side), ACK/CNP control
    packets to the flow's sender (RP side).  Outbound packets funnel
    through :attr:`port`, the NIC serializer, so concurrent flows on
    one host naturally share (and contend for) the NIC line rate.
    """

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        #: NIC egress port; wired up by :func:`repro.sim.switch.connect`.
        self.port: Optional[Port] = None
        self._senders: Dict[int, object] = {}
        self._receivers: Dict[int, object] = {}
        #: Packets discarded on arrival because the fault injector
        #: corrupted them in flight (CRC failure at the NIC).
        self.corrupted_discarded = 0

    # -- agent registration ---------------------------------------------------

    def register_sender(self, flow_id: int, sender: object) -> None:
        """Attach the RP-side agent for a flow originating here."""
        if flow_id in self._senders:
            raise ValueError(
                f"{self.name} already has a sender for flow {flow_id}")
        self._senders[flow_id] = sender

    def register_receiver(self, flow_id: int, receiver: object) -> None:
        """Attach the NP-side agent for a flow terminating here."""
        if flow_id in self._receivers:
            raise ValueError(
                f"{self.name} already has a receiver for flow {flow_id}")
        self._receivers[flow_id] = receiver

    def unregister_sender(self, flow_id: int) -> None:
        """Detach a finished sender (keeps the dispatch table small)."""
        self._senders.pop(flow_id, None)

    def unregister_receiver(self, flow_id: int) -> None:
        """Detach a finished receiver."""
        self._receivers.pop(flow_id, None)

    @property
    def active_senders(self) -> int:
        """Number of flows currently sending from this host.

        TIMELY starts a new flow at ``C / (N + 1)`` where ``N`` is this
        count (Section 4 of the paper).
        """
        return len(self._senders)

    # -- data path ------------------------------------------------------------

    def send(self, packet: Packet) -> None:
        """Hand a packet to the NIC for (serialized) transmission."""
        if self.port is None:
            raise RuntimeError(f"{self.name} has no NIC attachment")
        self.port.send(packet)

    def receive(self, packet: Packet, ingress: Optional[str] = None) -> None:
        """Dispatch an arriving packet to the matching flow agent.

        Packets for unknown flows are dropped silently: they are
        in-flight stragglers of flows whose agents already finished
        and deregistered.  Corrupted packets (fault injection) fail
        the NIC CRC check and are discarded before dispatch.
        """
        if packet.corrupted:
            self.corrupted_discarded += 1
            return
        if packet.kind == "data":
            receiver = self._receivers.get(packet.flow_id)
            if receiver is not None:
                receiver.on_data(packet)
        elif packet.kind == "ack":
            sender = self._senders.get(packet.flow_id)
            if sender is not None:
                sender.on_ack(packet)
        elif packet.kind == "cnp":
            sender = self._senders.get(packet.flow_id)
            if sender is not None:
                sender.on_cnp(packet)
        else:
            raise ValueError(
                f"{self.name} cannot handle packet kind {packet.kind!r}")
