"""PI marking controller at the switch -- Section 5.2 / Eq. 32.

A discrete implementation of ``dp/dt = K1 de/dt + K2 e(t)`` in the
style of [14] (and its PIE descendant): every ``update_interval`` the
marker advances its marking probability by

    p += K1 * (q - q_prev) / q_ref + K2 * dt * (q - q_ref) / q_ref

with the same normalized-error convention as the fluid PI models, so
the gains in :class:`repro.core.params.PIParams` carry over unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.core.params import PIParams


class PIMarker:
    """Integral marking controller on a byte-denominated egress queue."""

    def __init__(self, pi: PIParams, mtu_bytes: int,
                 update_interval: float = 10e-6, seed: int = 0,
                 rng: "np.random.Generator" = None):
        if mtu_bytes <= 0:
            raise ValueError(f"mtu_bytes must be positive, got {mtu_bytes}")
        if update_interval <= 0:
            raise ValueError(
                f"update_interval must be positive, got {update_interval}")
        self.pi = pi
        self.mtu_bytes = mtu_bytes
        self.q_ref_bytes = pi.q_ref * mtu_bytes
        #: Polled by the switch to schedule periodic updates.
        self.update_interval = update_interval
        self.p = 0.0
        self._previous_queue: float = 0.0
        # ``rng`` shares one simulation-wide stream across components;
        # otherwise the marker owns a private stream seeded by ``seed``.
        self._rng = rng if rng is not None else np.random.default_rng(seed)
        #: Lifetime marking-decision counters, scraped by the
        #: telemetry layer (same convention as ``REDMarker``).
        self.mark_trials = 0
        self.marks = 0
        #: Controller updates executed (one per ``update_interval``).
        self.updates = 0

    def update(self, queue_bytes: float, now: float) -> None:
        """Advance the controller one sampling interval."""
        error = (queue_bytes - self.q_ref_bytes) / self.q_ref_bytes
        slope = (queue_bytes - self._previous_queue) / self.q_ref_bytes
        self.p += self.pi.k1 * slope \
            + self.pi.k2 * self.update_interval * error
        self.p = float(np.clip(self.p, self.pi.p_min, self.pi.p_max))
        self._previous_queue = queue_bytes
        self.updates += 1

    def marking_probability(self, queue_bytes: float) -> float:
        """The controller state; independent of the instantaneous queue."""
        return self.p

    def should_mark(self, queue_bytes: float) -> bool:
        """Bernoulli trial at the controller's current probability."""
        self.mark_trials += 1
        if self.p <= 0.0:
            return False
        if self.p >= 1.0:
            self.marks += 1
            return True
        marked = bool(self._rng.random() < self.p)
        if marked:
            self.marks += 1
        return marked
