"""Endpoint protocol agents: DCQCN (RP/NP), TIMELY (packet and burst
pacing, HAI), patched TIMELY (Algorithm 2), and the window-based DCTCP
baseline."""
