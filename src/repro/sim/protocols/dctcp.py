"""DCTCP baseline -- the window-based ancestor of DCQCN.

DCQCN borrows its ``alpha`` estimator from DCTCP [2], whose analysis
[3] the paper leans on throughout.  Implementing DCTCP in the same
simulator gives a window-based, ACK-clocked baseline against the
paper's two rate-based protocols, using the identical ECN substrate:

* the receiver ACKs every data packet, echoing the CE mark (the
  simplified ECE semantics DCTCP requires);
* the sender keeps a congestion window ``cwnd`` (bytes), transmits
  while ``inflight < cwnd``, and once per window (one RTT's worth of
  data) updates::

      F     <- marked_bytes / acked_bytes          (this window)
      alpha <- (1 - g) alpha + g F
      cwnd  <- cwnd * (1 - alpha / 2)   if F > 0   (DCTCP cut)
      cwnd  <- cwnd + MSS               otherwise  (additive growth)

* slow start doubles ``cwnd`` per window until the first mark, as in
  standard TCP; the fabric is lossless (PFC), so there is no loss
  handling -- matching the RoCE setting the paper studies.

DCTCP is self-clocked: it needs no rate limiter, at the price of
per-packet ACK traffic (which DCQCN's NP explicitly avoids; see the
paper's "Practical concerns").
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.flows import Flow
from repro.sim.node import Host
from repro.sim.packet import (
    CONTROL_PACKET_BYTES,
    PACKET_POOL,
    Packet,
    PacketBatch,
)
from repro.sim.protocols.base import BaseReceiver


class DCTCPSender:
    """Window-based DCTCP reaction point.

    Parameters
    ----------
    g:
        EWMA gain for the marked-fraction estimator (DCTCP's 1/16).
    initial_window_packets:
        Initial window, in MSS units (TCP's IW; default 10).
    """

    def __init__(self, sim: Simulator, host: Host, flow: Flow,
                 mtu_bytes: int = 1024,
                 g: float = 1.0 / 16.0,
                 initial_window_packets: int = 10):
        if not 0.0 < g <= 1.0:
            raise ValueError(f"g must be in (0, 1], got {g}")
        if initial_window_packets < 1:
            raise ValueError(
                f"initial window must be >= 1 packet, got "
                f"{initial_window_packets}")
        self.sim = sim
        self.host = host
        self.flow = flow
        self.mtu_bytes = mtu_bytes
        self.g = g
        self.cwnd = float(initial_window_packets * mtu_bytes)
        self.alpha = 0.0
        self.in_slow_start = True
        self._inflight = 0
        self._sequence = 0
        self._started = False
        self._stopped = False
        # Per-window accounting: the window "ends" when the byte that
        # was snd_nxt at its start is cumulatively acknowledged.
        self._window_end_bytes = 0
        self._window_acked = 0
        self._window_marked = 0
        self._last_cumulative_ack = 0
        self.windows_completed = 0
        self.marked_windows = 0
        #: Flow-forensics ledger (window-based analogue of
        #: :class:`~repro.sim.protocols.base.RateBasedSender.ledger`).
        self.ledger = None

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Register with the host and open the first window."""
        if self._started:
            raise RuntimeError(
                f"DCTCP sender for flow {self.flow.flow_id} already "
                "started")
        self._started = True
        self.host.register_sender(self.flow.flow_id, self)
        delay = max(self.flow.start_time - self.sim.now, 0.0)
        self.sim.schedule(delay, self._fill_window)

    def stop(self) -> None:
        """Detach from the host."""
        self._stopped = True
        self.host.unregister_sender(self.flow.flow_id)

    # -- transmission ---------------------------------------------------------

    def _fill_window(self) -> None:
        """Emit packets while the window allows and data remains.

        The burst is self-clocked and back-to-back, so every packet in
        it shares one emission instant -- exactly the shape
        :class:`PacketBatch` models.  On a batch-capable NIC port the
        whole burst goes out as one struct-of-arrays train; otherwise
        the scalar loop runs unchanged.
        """
        if self._stopped:
            return
        port = self.host.port
        if port is not None and port.batch_window is not None:
            self._fill_window_batched()
            return
        while not self._stopped and self._inflight + self.mtu_bytes \
                <= self.cwnd and not self.flow.all_bytes_sent():
            self._emit_packet()

    def _fill_window_batched(self) -> None:
        # Chunk at the port's window size: one giant burst-as-a-batch
        # would coalesce the *entire* cwnd's delivery (and its ACKs) to
        # a single instant, turning self-clocking into stop-and-wait.
        # Window-sized chunks keep data and returning ACKs pipelined.
        mtu = self.mtu_bytes
        chunk = self.host.port.batch_window
        while not self._stopped:
            budget = int((self.cwnd - self._inflight) // mtu)
            if budget < 1 or self.flow.all_bytes_sent():
                return
            if self.flow.size_bytes is not None:
                remaining = self.flow.size_bytes - self.flow.bytes_sent
                count = min(budget, -(-remaining // mtu))
            else:
                remaining = None
                count = budget
            count = min(count, chunk)
            if count == 1:
                self._emit_packet()
                continue
            sizes = np.full(count, float(mtu))
            if remaining is not None and remaining < count * mtu:
                sizes[-1] = float(remaining - (count - 1) * mtu)
            batch = PacketBatch(self.flow.flow_id, sizes,
                                self.host.name, self.flow.dst,
                                kind="data", seq_start=self._sequence)
            self._sequence += count
            batch.sent_time = np.full(count, self.sim.now)
            total = batch.total_bytes
            self.flow.bytes_sent += total
            self._inflight += total
            if self._window_end_bytes == 0:
                self._window_end_bytes = int(self.cwnd)
            self.host.send_batch(batch)

    def _emit_packet(self) -> None:
        remaining = None if self.flow.size_bytes is None else \
            self.flow.size_bytes - self.flow.bytes_sent
        size = self.mtu_bytes if remaining is None else \
            min(self.mtu_bytes, remaining)
        packet = PACKET_POOL.acquire(self.flow.flow_id, size,
                                     self.host.name, self.flow.dst,
                                     kind="data", seq=self._sequence)
        self._sequence += 1
        packet.sent_time = self.sim.now
        self.flow.bytes_sent += size
        self._inflight += size
        if self._window_end_bytes == 0:
            # First window: close it after one IW's worth of data.
            self._window_end_bytes = int(self.cwnd)
        self.host.send(packet)

    # -- ACK processing -------------------------------------------------------

    def on_ack(self, packet: Packet) -> None:
        """Per-packet ACK: credit the window, run DCTCP at its edges."""
        acked = packet.acked_bytes - self._last_cumulative_ack
        if acked <= 0:
            return  # reordered/duplicate cumulative ACK
        self._last_cumulative_ack = packet.acked_bytes
        self._inflight = max(self._inflight - acked, 0)
        self._window_acked += acked
        if packet.ecn_marked:
            self._window_marked += acked
        if packet.acked_bytes >= self._window_end_bytes:
            self._finish_window(packet.acked_bytes)
        self._fill_window()

    def _finish_window(self, acked_total: int) -> None:
        """One RTT of data fully acknowledged: apply DCTCP's update."""
        self.windows_completed += 1
        fraction = self._window_marked / max(self._window_acked, 1)
        self.alpha = (1.0 - self.g) * self.alpha + self.g * fraction
        if fraction > 0.0:
            self.marked_windows += 1
            self.in_slow_start = False
            old_cwnd = self.cwnd
            self.cwnd = max(self.cwnd * (1.0 - self.alpha / 2.0),
                            float(self.mtu_bytes))
            if self.ledger is not None:
                # cwnd transitions are DCTCP's rate state machine;
                # the ledger classifies the cut just like a rate cut.
                self.ledger.on_rate_change(self.flow.flow_id,
                                           old_cwnd, self.cwnd,
                                           self.sim.now)
                self.ledger.on_control(self.flow.flow_id,
                                       "marked_window", 1,
                                       self.sim.now)
        elif self.in_slow_start:
            self.cwnd *= 2.0
        else:
            self.cwnd += self.mtu_bytes
        self._window_acked = 0
        self._window_marked = 0
        self._window_end_bytes = acked_total + int(self.cwnd)

    def on_ack_batch(self, batch: PacketBatch, arrival_times) -> None:
        """Batched ACK window: credit sequentially, refill once.

        The per-ACK walk must stay sequential (window edges move
        ``cwnd`` mid-batch), but all the ACKs in a coalesced window
        share one ``sim.now``, so the scalar path's per-ACK
        ``_fill_window`` calls would emit exactly the packets one
        final call emits -- same clock, same cumulative credit.
        """
        acked_arr = batch.acked_bytes
        if acked_arr is None:
            return
        marked = batch.ecn_marked
        for i in range(batch.count):
            cum_ack = int(acked_arr[i])
            acked = cum_ack - self._last_cumulative_ack
            if acked <= 0:
                continue
            self._last_cumulative_ack = cum_ack
            self._inflight = max(self._inflight - acked, 0)
            self._window_acked += acked
            if marked[i]:
                self._window_marked += acked
            if cum_ack >= self._window_end_bytes:
                self._finish_window(cum_ack)
        self._fill_window()

    def on_cnp(self, packet: Packet) -> None:
        raise ValueError("DCTCP does not use CNPs")


class DCTCPReceiver(BaseReceiver):
    """Per-packet ACKs echoing the CE mark (simplified ECE)."""

    def __init__(self, sim: Simulator, host: Host, flow: Flow,
                 on_complete: Optional[Callable[[Flow], None]] = None):
        super().__init__(sim, host, flow, on_complete=on_complete)
        self.acks_sent = 0

    def handle_data(self, packet: Packet) -> None:
        ack = PACKET_POOL.acquire(self.flow.flow_id,
                                  CONTROL_PACKET_BYTES,
                                  self.host.name, self.flow.src,
                                  kind="ack")
        ack.echo_time = packet.sent_time
        ack.acked_bytes = self.flow.bytes_delivered
        ack.ecn_marked = packet.ecn_marked
        self.acks_sent += 1
        self.host.send(ack)

    def handle_data_batch(self, batch: PacketBatch, arrival_times,
                          count: int, delivered_before: int) -> None:
        """Batched receiver: one ACK *batch* back per data window.

        DCTCP ACKs every data packet, so this is the protocol where
        ACK-side batching pays: the return path carries one
        struct-of-arrays train instead of ``count`` control packets.
        ``acked_bytes`` carries the running cumulative total exactly
        as the per-packet path would have stamped it.
        """
        acks = PacketBatch.uniform(self.flow.flow_id, count,
                                   CONTROL_PACKET_BYTES,
                                   self.host.name, self.flow.src,
                                   kind="ack")
        acks.sent_time = np.full(count, self.sim.now)
        if batch.sent_time is not None:
            acks.echo_time = batch.sent_time[:count]
        acks.acked_bytes = delivered_before + np.add.accumulate(
            batch.size_bytes[:count]).astype(np.int64)
        acks.ecn_marked = batch.ecn_marked[:count].copy()
        self.acks_sent += count
        self.host.send_batch(acks)
