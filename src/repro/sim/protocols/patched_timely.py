"""Patched TIMELY endpoint -- Algorithm 2 of the paper.

Only lines 9-12 differ from TIMELY: inside the gradient band the
update blends additive increase and an absolute-RTT-driven decrease
through the continuous weight ``w(gradient)`` (Eq. 30)::

    weight <- w(rttGradient)
    error  <- (newRTT - RTT_ref) / RTT_ref
    rate   <- delta (1 - weight) + rate (1 - beta * weight * error)

``RTT_ref`` plays the role of the fluid model's reference queue
``q' = C * T_low``: it is the RTT whose queuing-delay component is
``T_low``, i.e. ``T_low + base_rtt`` for the propagation/serialization
floor ``base_rtt`` of the path.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.params import PatchedTimelyParams
from repro.sim.engine import Simulator
from repro.sim.flows import Flow
from repro.sim.node import Host
from repro.sim.protocols.timely import TimelyReceiver, TimelySender


class PatchedTimelySender(TimelySender):
    """Algorithm 2 rate computation."""

    def __init__(self, sim: Simulator, host: Host, flow: Flow,
                 patched: PatchedTimelyParams,
                 line_rate: Optional[float] = None,
                 initial_rate: Optional[float] = None,
                 pacing: str = "packet",
                 base_rtt: float = 0.0,
                 rtt_outlier_factor: Optional[float] = None):
        super().__init__(sim, host, flow, patched.base,
                         line_rate=line_rate, initial_rate=initial_rate,
                         pacing=pacing,
                         rtt_outlier_factor=rtt_outlier_factor)
        self.patched = patched
        if base_rtt < 0:
            raise ValueError(f"base_rtt must be >= 0, got {base_rtt}")
        #: Reference RTT: T_low of queuing delay on top of the path floor.
        self.rtt_ref = patched.base.t_low + base_rtt

    def gradient_band_rate(self, rtt: float, gradient: float,
                           delta_bytes: float) -> float:
        weight = self.patched.weight(gradient)
        error = (rtt - self.rtt_ref) / self.rtt_ref
        return delta_bytes * (1.0 - weight) + self._rate * (
            1.0 - self.patched.beta_band * weight * error)


class PatchedTimelyReceiver(TimelyReceiver):
    """Identical to the TIMELY receiver (the patch is sender-only)."""

    def __init__(self, sim: Simulator, host: Host, flow: Flow,
                 patched: PatchedTimelyParams,
                 on_complete: Optional[Callable[[Flow], None]] = None):
        super().__init__(sim, host, flow, patched.base,
                         on_complete=on_complete)
        self.patched = patched
