"""Shared machinery for rate-based sender/receiver protocol agents.

Both DCQCN and TIMELY are *rate-based*: a hardware rate limiter (or
burst scheduler) paces transmission, and control packets (CNPs, ACKs)
adjust the rate.  :class:`RateBasedSender` owns the pacing loop;
subclasses react to control packets by changing :attr:`rate`.
:class:`BaseReceiver` owns delivery accounting and flow completion.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.flows import Flow
from repro.sim.node import Host
from repro.sim.packet import (
    CONTROL_PACKET_BYTES,
    PACKET_POOL,
    Packet,
    PacketBatch,
)

#: Rates below this (bytes/s) are clamped up; a zero rate would stall
#: the pacing loop forever.
MIN_RATE_BYTES_PER_S = 1e4


class RateBasedSender:
    """Paced sender: emits MTU packets with gaps set by ``rate``.

    Parameters
    ----------
    sim, host, flow:
        Infrastructure and the flow being sent.
    mtu_bytes:
        Data packet size.
    initial_rate:
        Starting rate, bytes/s.
    line_rate:
        NIC speed cap, bytes/s.

    The pacing loop recomputes the inter-packet gap from the *current*
    rate before each emission, so rate changes take effect on the next
    packet -- matching hardware rate limiters.
    """

    def __init__(self, sim: Simulator, host: Host, flow: Flow,
                 mtu_bytes: int, initial_rate: float, line_rate: float,
                 min_rate: float = MIN_RATE_BYTES_PER_S):
        if mtu_bytes <= 0:
            raise ValueError(f"mtu_bytes must be positive, got {mtu_bytes}")
        if line_rate <= 0:
            raise ValueError(f"line_rate must be positive, got {line_rate}")
        if not 0 < min_rate <= line_rate:
            raise ValueError(
                f"min_rate must be in (0, line_rate], got {min_rate}")
        self.sim = sim
        self.host = host
        self.flow = flow
        self.mtu_bytes = mtu_bytes
        self.line_rate = line_rate
        self.min_rate = min_rate
        self._rate = min(max(initial_rate, min_rate), line_rate)
        self._next_emission = None
        self._started = False
        self._finished_sending = False
        self._sequence = 0
        #: Flow-forensics ledger; installed by
        #: :func:`repro.sim.topology.install_flow` when forensics is
        #: on, None otherwise.
        self.ledger = None

    @property
    def rate(self) -> float:
        """Current sending rate, bytes/s."""
        return self._rate

    @rate.setter
    def rate(self, value: float) -> None:
        old = self._rate
        self._rate = min(max(value, self.min_rate), self.line_rate)
        # All rate transitions -- DCQCN CNP cuts and FR/AI/HAI raises,
        # TIMELY gradient updates -- funnel through this setter, so
        # one hook point covers every protocol's rate state machine.
        if self.ledger is not None and self._rate != old:
            self.ledger.on_rate_change(self.flow.flow_id, old,
                                       self._rate, self.sim.now)
        self._reschedule_emission(old)

    def _reschedule_emission(self, old_rate: float) -> None:
        """Token-bucket semantics: a rate change rescales the pending gap.

        Without this, a flow that collapsed its rate (e.g. TIMELY after
        an incast RTT spike) would keep a far-future emission scheduled
        even after later ACKs raised the rate again.
        """
        if self._rate == old_rate or self._finished_sending:
            return
        event = self._next_emission
        if event is None or event.cancelled:
            return
        remaining = event.time - self.sim.now
        if remaining <= 0.0:
            return
        event.cancel()
        self._next_emission = self.sim.schedule(
            remaining * old_rate / self._rate, self._pace)

    def start(self) -> None:
        """Register with the host and begin pacing at the flow start."""
        if self._started:
            raise RuntimeError(f"sender for flow {self.flow.flow_id} "
                               "already started")
        self._started = True
        self.host.register_sender(self.flow.flow_id, self)
        delay = max(self.flow.start_time - self.sim.now, 0.0)
        self._next_emission = self.sim.schedule(delay, self._pace)

    def _pace(self) -> None:
        """Emit one packet and schedule the next emission."""
        if self._finished_sending:
            return
        self._emit_packet()
        if self.flow.all_bytes_sent():
            self._finished_sending = True
            self.on_all_sent()
            return
        gap = self.mtu_bytes / self._rate
        self._next_emission = self.sim.schedule(gap, self._pace)

    def _emit_packet(self) -> None:
        remaining = None if self.flow.size_bytes is None else \
            self.flow.size_bytes - self.flow.bytes_sent
        size = self.mtu_bytes if remaining is None else \
            min(self.mtu_bytes, remaining)
        packet = PACKET_POOL.acquire(self.flow.flow_id, size,
                                     self.host.name, self.flow.dst,
                                     kind="data", seq=self._sequence)
        self._sequence += 1
        packet.sent_time = self.sim.now
        self.flow.bytes_sent += size
        self.host.send(packet)
        self.on_packet_sent(packet)

    # -- protocol hooks -------------------------------------------------------

    def on_packet_sent(self, packet: Packet) -> None:
        """Called after each data packet emission (byte counters...)."""

    def on_all_sent(self) -> None:
        """Called once the finite flow size has been fully emitted."""

    def on_ack(self, packet: Packet) -> None:
        """Called for each arriving ACK (TIMELY family)."""

    def on_cnp(self, packet: Packet) -> None:
        """Called for each arriving CNP (DCQCN)."""

    def on_ack_batch(self, batch: PacketBatch, arrival_times) -> None:
        """Batched-delivery hook for an ACK window.

        The default materializes and replays the exact per-packet
        handler; protocol subclasses override with array walks that
        never touch :class:`Packet` objects.  ``arrival_times[i]`` is
        ACK *i*'s exact wire arrival (the window event itself fires at
        the last one).
        """
        for packet in batch.packets():
            self.on_ack(packet)
            PACKET_POOL.release(packet)

    def on_cnp_batch(self, batch: PacketBatch, arrival_times) -> None:
        """Batched-delivery hook for a CNP window (default: replay)."""
        for packet in batch.packets():
            self.on_cnp(packet)
            PACKET_POOL.release(packet)

    def stop(self) -> None:
        """Cancel pacing and detach from the host."""
        self._finished_sending = True
        if self._next_emission is not None:
            self._next_emission.cancel()
        self.host.unregister_sender(self.flow.flow_id)


class BaseReceiver:
    """Delivery accounting plus flow-completion detection."""

    def __init__(self, sim: Simulator, host: Host, flow: Flow,
                 on_complete: Optional[Callable[[Flow], None]] = None):
        self.sim = sim
        self.host = host
        self.flow = flow
        self.on_complete = on_complete
        host.register_receiver(flow.flow_id, self)

    def on_data(self, packet: Packet) -> None:
        """Account a delivered data packet; fire completion once done."""
        self.flow.bytes_delivered += packet.size_bytes
        self.handle_data(packet)
        if self.flow.size_bytes is not None and not self.flow.completed \
                and self.flow.bytes_delivered >= self.flow.size_bytes:
            self.flow.completion_time = self.sim.now
            self.handle_completion(packet)
            self.host.unregister_receiver(self.flow.flow_id)
            if self.on_complete is not None:
                self.on_complete(self.flow)

    def on_data_batch(self, batch: PacketBatch, arrival_times) -> None:
        """Account a delivered data window; fire completion once done.

        The batched counterpart of :meth:`on_data`.  Only the prefix
        up to (and including) the packet that completes a finite flow
        is processed -- on the scalar path the host would have dropped
        the rest as post-deregistration stragglers, so the two paths
        see identical byte totals.  The completion stamp uses the
        completing packet's own arrival time, not the window end.
        """
        flow = self.flow
        count = batch.count
        completing = False
        if flow.size_bytes is not None and not flow.completed:
            need = flow.size_bytes - flow.bytes_delivered
            cum = np.add.accumulate(batch.size_bytes)
            if cum[-1] >= need:
                count = int(np.searchsorted(cum, need)) + 1
                completing = True
            delivered = int(cum[count - 1])
        else:
            delivered = batch.total_bytes
        delivered_before = flow.bytes_delivered
        flow.bytes_delivered = delivered_before + delivered
        self.handle_data_batch(batch, arrival_times, count,
                               delivered_before)
        if completing:
            flow.completion_time = float(arrival_times[count - 1])
            last = batch.packet_at(count - 1)
            self.handle_completion(last)
            PACKET_POOL.release(last)
            self.host.unregister_receiver(flow.flow_id)
            if self.on_complete is not None:
                self.on_complete(flow)

    def handle_data(self, packet: Packet) -> None:
        """Protocol-specific reaction to a data packet (marks, ACKs)."""

    def handle_data_batch(self, batch: PacketBatch, arrival_times,
                          count: int, delivered_before: int) -> None:
        """Protocol-specific reaction to the first ``count`` packets.

        ``delivered_before`` is the flow's delivered-byte total before
        this window; handlers that need the running cumulative (ACK
        generation) combine it with a prefix sum over the batch.  The
        default replays the exact scalar hook.
        """
        for i in range(count):
            packet = batch.packet_at(i)
            self.handle_data(packet)
            PACKET_POOL.release(packet)

    def handle_completion(self, last_packet: Packet) -> None:
        """Protocol-specific final action (e.g. flush a last ACK)."""

    def send_control(self, kind: str, echo_time: Optional[float] = None,
                     acked_bytes: int = 0) -> None:
        """Emit a control packet back to the flow's source."""
        packet = PACKET_POOL.acquire(self.flow.flow_id,
                                     CONTROL_PACKET_BYTES,
                                     self.host.name, self.flow.src,
                                     kind=kind)
        packet.sent_time = self.sim.now  # for feedback-latency stats
        packet.echo_time = echo_time
        packet.acked_bytes = acked_bytes
        self.host.send(packet)
