"""DCQCN endpoint protocol -- Section 3 of the paper, full RP/NP logic.

The congestion point (CP) lives in the switch (RED marking at egress,
:mod:`repro.sim.red`); this module implements:

* **NP (receiver)**: on an ECN-marked packet, send a CNP unless one was
  already sent for this flow within the CNP timer ``tau`` (50 us).
* **RP (sender)**: rate state machine per [31]:

  - on CNP: ``R_T <- R_C``, ``R_C <- R_C (1 - alpha/2)``,
    ``alpha <- (1-g) alpha + g``; byte counter, rate timer and both
    stage counters reset.
  - every ``tau'`` without a CNP: ``alpha <- (1-g) alpha``.
  - rate increase on byte-counter (every ``B`` bytes) and timer
    (every ``T``) events, QCN-style: the first ``F = 5`` stages of
    either counter are *fast recovery* (``R_C <- (R_C + R_T)/2``,
    target unchanged); past ``F`` on one counter is *additive
    increase* (``R_T += R_AI``); past ``F`` on both is *hyper
    increase* (``R_T += R_HAI``).
  - flows start at line rate (no slow start).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.core.params import DCQCNParams
from repro.sim.engine import Simulator
from repro.sim.flows import Flow
from repro.sim.node import Host
from repro.sim.packet import Packet, PacketBatch
from repro.sim.protocols.base import BaseReceiver, RateBasedSender


class DCQCNSender(RateBasedSender):
    """The reaction point (RP)."""

    def __init__(self, sim: Simulator, host: Host, flow: Flow,
                 params: DCQCNParams,
                 line_rate: Optional[float] = None,
                 initial_rate: Optional[float] = None,
                 cnp_timeout: Optional[float] = None):
        if cnp_timeout is not None and cnp_timeout <= 0:
            raise ValueError(
                f"cnp_timeout must be positive or None, got {cnp_timeout}")
        self.params = params
        mtu = params.mtu_bytes
        line = line_rate if line_rate is not None \
            else params.capacity * mtu
        # DCQCN flows always start at line rate (Section 3).
        initial = initial_rate if initial_rate is not None else line
        super().__init__(sim, host, flow, mtu, initial, line)
        self.alpha = 1.0
        self.target_rate = self._rate
        self._byte_counter_bytes = params.byte_counter * mtu
        self._bytes_since_event = 0.0
        self._byte_stage = 0
        self._time_stage = 0
        self._alpha_timer = None
        self._rate_timer = None
        self.cnps_received = 0
        #: Sum/max of CNP transit latencies (NP emission -> RP arrival),
        #: for the feedback-prioritization experiment.
        self.cnp_delay_sum = 0.0
        self.cnp_delay_max = 0.0
        #: Graceful degradation under lossy feedback: hardware DCQCN
        #: implementations release a flow's rate limiter outright after
        #: a long CNP-free interval ([31]'s rate-limiter timeout).
        #: When the fault injector eats the CNP stream, this prevents a
        #: flow from idling forever at a stale throttled rate.  None
        #: (the default) disables the timeout -- fault-free behaviour
        #: is untouched.
        self.cnp_timeout = cnp_timeout
        self._cnp_timeout_timer = None
        self.rate_limiter_timeouts = 0

    def start(self) -> None:
        super().start()
        self._arm_alpha_timer()
        self._arm_rate_timer()
        self._arm_cnp_timeout()

    def stop(self) -> None:
        super().stop()
        if self._alpha_timer is not None:
            self._alpha_timer.cancel()
        if self._rate_timer is not None:
            self._rate_timer.cancel()
        if self._cnp_timeout_timer is not None:
            self._cnp_timeout_timer.cancel()

    # -- timers ---------------------------------------------------------------

    def _arm_alpha_timer(self) -> None:
        if self._alpha_timer is not None:
            self._alpha_timer.cancel()
        self._alpha_timer = self.sim.schedule(self.params.tau_prime,
                                              self._alpha_decay)

    def _alpha_decay(self) -> None:
        """Eq. 2: no CNP for tau' -> alpha decays toward zero."""
        self.alpha *= (1.0 - self.params.g)
        self._arm_alpha_timer()

    def _arm_rate_timer(self) -> None:
        if self._rate_timer is not None:
            self._rate_timer.cancel()
        self._rate_timer = self.sim.schedule(self.params.timer,
                                             self._timer_event)

    def _timer_event(self) -> None:
        self._time_stage += 1
        self._rate_increase_event()
        self._arm_rate_timer()

    def _arm_cnp_timeout(self) -> None:
        if self.cnp_timeout is None:
            return
        if self._cnp_timeout_timer is not None:
            self._cnp_timeout_timer.cancel()
        self._cnp_timeout_timer = self.sim.schedule(
            self.cnp_timeout, self._cnp_timeout_fired)

    def _cnp_timeout_fired(self) -> None:
        """No CNP for the whole timeout: release the rate limiter.

        The flow returns to its unthrottled initial state (line rate,
        fresh alpha, counters reset); the timer re-arms only when
        feedback reappears.
        """
        self.rate_limiter_timeouts += 1
        self._cnp_timeout_timer = None
        self.alpha = 1.0
        self.target_rate = self.line_rate
        self.rate = self.line_rate
        self._bytes_since_event = 0.0
        self._byte_stage = 0
        self._time_stage = 0

    # -- RP reactions ---------------------------------------------------------

    def on_cnp(self, packet: Packet) -> None:
        """Eq. 1: multiplicative decrease plus full increase-state reset."""
        self.cnps_received += 1
        if self.ledger is not None:
            self.ledger.on_control(self.flow.flow_id, "cnp", 1,
                                   self.sim.now)
        if packet.sent_time is not None:
            delay = self.sim.now - packet.sent_time
            self.cnp_delay_sum += delay
            self.cnp_delay_max = max(self.cnp_delay_max, delay)
        self.target_rate = self._rate
        self.rate = self._rate * (1.0 - self.alpha / 2.0)
        self.alpha = (1.0 - self.params.g) * self.alpha + self.params.g
        self._bytes_since_event = 0.0
        self._byte_stage = 0
        self._time_stage = 0
        self._arm_alpha_timer()
        self._arm_rate_timer()
        self._arm_cnp_timeout()

    def on_cnp_batch(self, batch: PacketBatch, arrival_times) -> None:
        """Batched CNP window: the same state walk, no packet objects.

        The multiplicative-decrease recurrence is applied once per CNP
        in order (it is not associative -- alpha changes between
        cuts), but delay statistics vectorize and the three timers are
        re-armed once: every re-arm in the scalar loop would anchor at
        the same ``sim.now``, so the last one is the only survivor.
        """
        n = batch.count
        self.cnps_received += n
        if self.ledger is not None:
            self.ledger.on_control(self.flow.flow_id, "cnp", n,
                                   self.sim.now)
        sent = batch.sent_time
        if sent is not None:
            delays = arrival_times - sent
            self.cnp_delay_sum += float(delays.sum())
            self.cnp_delay_max = max(self.cnp_delay_max,
                                     float(delays.max()))
        g = self.params.g
        alpha = self.alpha
        for _ in range(n):
            self.target_rate = self._rate
            self.rate = self._rate * (1.0 - alpha / 2.0)
            alpha = (1.0 - g) * alpha + g
        self.alpha = alpha
        self._bytes_since_event = 0.0
        self._byte_stage = 0
        self._time_stage = 0
        self._arm_alpha_timer()
        self._arm_rate_timer()
        self._arm_cnp_timeout()

    def on_packet_sent(self, packet: Packet) -> None:
        self._bytes_since_event += packet.size_bytes
        while self._bytes_since_event >= self._byte_counter_bytes:
            self._bytes_since_event -= self._byte_counter_bytes
            self._byte_stage += 1
            self._rate_increase_event()

    def _rate_increase_event(self) -> None:
        """QCN-style increase: fast recovery, additive, or hyper."""
        p = self.params
        f = p.fast_recovery_steps
        if self._byte_stage >= f and self._time_stage >= f:
            self.target_rate += p.rate_hai * p.mtu_bytes
        elif self._byte_stage >= f or self._time_stage >= f:
            self.target_rate += p.rate_ai * p.mtu_bytes
        # First F stages of both counters: fast recovery leaves the
        # target untouched and halves the gap.
        self.target_rate = min(self.target_rate, self.line_rate)
        self.rate = 0.5 * (self._rate + self.target_rate)


class DCQCNReceiver(BaseReceiver):
    """The notification point (NP): CNP generation, rate-limited."""

    def __init__(self, sim: Simulator, host: Host, flow: Flow,
                 params: DCQCNParams,
                 on_complete: Optional[Callable[[Flow], None]] = None):
        super().__init__(sim, host, flow, on_complete=on_complete)
        self.params = params
        self._last_cnp_time: Optional[float] = None
        self.cnps_sent = 0

    def handle_data(self, packet: Packet) -> None:
        if not packet.ecn_marked:
            return
        now = self.sim.now
        if self._last_cnp_time is not None and \
                now - self._last_cnp_time < self.params.tau:
            return
        self._last_cnp_time = now
        self.cnps_sent += 1
        self.send_control("cnp")

    def handle_data_batch(self, batch: PacketBatch, arrival_times,
                          count: int, delivered_before: int) -> None:
        """Batched NP: tau-gated CNP walk over the marked indices.

        Each packet's own wire arrival drives the rate-limiter clock
        (exactly what ``sim.now`` is on the scalar path); the emitted
        CNPs themselves leave at the window boundary, the documented
        window-mode coalescing.
        """
        marked = batch.ecn_marked[:count]
        if not marked.any():
            return
        tau = self.params.tau
        last = self._last_cnp_time
        for i in np.flatnonzero(marked):
            t = float(arrival_times[i])
            if last is not None and t - last < tau:
                continue
            last = t
            self.cnps_sent += 1
            self.send_control("cnp")
        self._last_cnp_time = last
