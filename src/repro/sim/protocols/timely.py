"""TIMELY endpoint protocol -- Section 4 / Algorithm 1 of the paper.

The receiver ACKs once per completed segment (``Seg`` bytes, the
"completion event" of [21]), echoing the transmit timestamp of the
packet that completed the segment; the sender turns each ACK into an
RTT sample and runs Algorithm 1.

Two pacing modes reproduce the paper's Section 4.2 discussion:

* ``"packet"``: hardware-rate-limiter style, one MTU every
  ``MTU / rate`` -- the mode the fluid model describes.
* ``"burst"``: the actual TIMELY implementation strategy -- whole
  segments handed to the NIC back-to-back (serialized at line rate)
  with inter-segment gaps stretching the average to ``rate``.  The
  burstiness injects the "noise" that incidentally de-correlates
  flows (Fig. 10), at the cost of queue spikes; with 64 KB segments
  an incast of initial bursts produces the giant RTT sample and rate
  collapse of Fig. 10(b).

Rate updates are gated to at most one per ``D_minRTT``, TIMELY's
update-frequency cap (Eq. 23's ``max(Seg/R, D_minRTT)``).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.params import TimelyParams
from repro.sim.engine import Simulator
from repro.sim.flows import Flow
from repro.sim.node import Host
from repro.sim.packet import Packet, PacketBatch
from repro.sim.protocols.base import BaseReceiver, RateBasedSender

#: Supported pacing strategies.
PACING_MODES = ("packet", "burst")


class TimelySender(RateBasedSender):
    """Algorithm 1 rate computation driven by per-segment RTT samples."""

    def __init__(self, sim: Simulator, host: Host, flow: Flow,
                 params: TimelyParams,
                 line_rate: Optional[float] = None,
                 initial_rate: Optional[float] = None,
                 pacing: str = "packet",
                 gradient_clamp: Optional[float] = 0.25,
                 burst_rate_fraction: float = 1.0,
                 rtt_outlier_factor: Optional[float] = None):
        if pacing not in PACING_MODES:
            raise ValueError(
                f"pacing must be one of {PACING_MODES}, got {pacing!r}")
        if gradient_clamp is not None and gradient_clamp <= 0:
            raise ValueError(
                f"gradient_clamp must be positive or None, got "
                f"{gradient_clamp}")
        if not 0.0 < burst_rate_fraction <= 1.0:
            raise ValueError(
                f"burst_rate_fraction must be in (0, 1], got "
                f"{burst_rate_fraction}")
        if rtt_outlier_factor is not None and rtt_outlier_factor <= 1.0:
            raise ValueError(
                f"rtt_outlier_factor must exceed 1 or be None, got "
                f"{rtt_outlier_factor}")
        self.params = params
        mtu = params.mtu_bytes
        line = line_rate if line_rate is not None \
            else params.capacity * mtu
        if initial_rate is None:
            # A new flow starts at C/(N+1) with N flows already active
            # at this sender (Section 4).
            initial_rate = line / (host.active_senders + 1)
        # TIMELY enforces a minimum rate (one additive step's worth):
        # updates are ACK-clocked, so a flow cut to nothing would stop
        # producing the RTT samples it needs to ever recover.
        super().__init__(sim, host, flow, mtu, initial_rate, line,
                         min_rate=params.delta * mtu)
        self.pacing = pacing
        self.segment_bytes = params.segment * mtu
        self.prev_rtt: Optional[float] = None
        self.rtt_diff = 0.0
        self._last_update: Optional[float] = None
        self.rtt_samples = 0
        #: Consecutive negative-gradient completion events; five in a
        #: row enter hyper-active increase (HAI) per [21].
        self._negative_gradient_streak = 0
        #: HAI threshold and step multiplier from [21].
        self.hai_threshold = 5
        #: Normalized-gradient clamp.  One RTT sample polluted by a
        #: transient burst can carry a gradient of several minRTTs;
        #: unclamped, ``1 - beta*g`` goes hugely negative and one noisy
        #: sample floors the rate.  The +/-1/4 range mirrors the span
        #: over which the paper's own weight function (Eq. 30) treats
        #: gradients as informative.  None disables clamping.
        self.gradient_clamp = gradient_clamp
        #: Fraction of line rate used *within* a burst.  The TIMELY
        #: implementation "sends bursts at less than line rate"
        #: (Section 5 of [21], cited in the paper's footnote 6) to
        #: soften the incast problem; 1.0 is full line-rate bursts.
        self.burst_rate_fraction = burst_rate_fraction
        self._burst_start = 0.0
        self._burst_emitted = 0.0
        #: Graceful degradation under faulty feedback: with a factor F,
        #: an RTT sample exceeding F times the running EWMA baseline is
        #: rejected outright -- it is far likelier to be a delayed or
        #: duplicated feedback packet (fault injection, link flap
        #: backlog release) than a real congestion signal, and TIMELY's
        #: gradient math has no defence against such a spike beyond the
        #: clamp.  Rejected samples update nothing; the baseline learns
        #: only from accepted samples.  None disables rejection
        #: (fault-free behaviour untouched).
        self.rtt_outlier_factor = rtt_outlier_factor
        self._rtt_baseline: Optional[float] = None
        self.rtt_outliers_rejected = 0

    # -- pacing ---------------------------------------------------------------

    def _pace(self) -> None:
        if self.pacing == "packet":
            super()._pace()
            return
        if self._finished_sending:
            return
        # Burst mode: emit a full segment as one burst.  At
        # burst_rate_fraction = 1 the packets go to the NIC
        # back-to-back (serialized at line rate); below 1 they are
        # spaced to the configured intra-burst rate, the [21]
        # mitigation for incast RTT spikes.
        self._burst_start = self.sim.now
        self._burst_emitted = 0.0
        self._burst_step()

    def _burst_step(self) -> None:
        if self._finished_sending:
            return
        self._emit_packet()
        self._burst_emitted += self.mtu_bytes
        if self.flow.all_bytes_sent():
            self._finished_sending = True
            self.on_all_sent()
            return
        if self._burst_emitted < self.segment_bytes:
            if self.burst_rate_fraction >= 1.0:
                self._burst_step()
                return
            intra_gap = self.mtu_bytes / (self.burst_rate_fraction
                                          * self.line_rate)
            self._next_emission = self.sim.schedule(intra_gap,
                                                    self._burst_step)
            return
        # Inter-burst spacing stretches the average to the target rate,
        # measured from the start of this burst.
        next_burst = self._burst_start + self._burst_emitted / self._rate
        delay = max(next_burst - self.sim.now, 0.0)
        self._next_emission = self.sim.schedule(delay, self._pace)

    # -- Algorithm 1 ----------------------------------------------------------

    def on_ack(self, packet: Packet) -> None:
        if packet.echo_time is None:
            raise ValueError("TIMELY ACK without an echoed timestamp")
        rtt = self.sim.now - packet.echo_time
        self.rtt_samples += 1
        if self.ledger is not None:
            self.ledger.on_control(self.flow.flow_id, "ack", 1,
                                   self.sim.now)
        if self._reject_outlier(rtt):
            return
        if self._last_update is not None and \
                self.sim.now - self._last_update < self.params.min_rtt:
            return
        self._last_update = self.sim.now
        self.update_rate(rtt)

    def on_ack_batch(self, batch: PacketBatch, arrival_times) -> None:
        """Batched ACK window: per-ACK RTTs from exact arrival stamps.

        Each ACK's wire arrival plays the role ``sim.now`` has on the
        scalar path for both the RTT sample and the ``D_minRTT``
        update gate, so the gating pattern across a window matches the
        per-packet engine.
        """
        echo = batch.echo_time
        if echo is None:
            raise ValueError("TIMELY ACK without an echoed timestamp")
        n = batch.count
        self.rtt_samples += n
        if self.ledger is not None:
            self.ledger.on_control(self.flow.flow_id, "ack", n,
                                   self.sim.now)
        min_rtt = self.params.min_rtt
        for i in range(n):
            now = float(arrival_times[i])
            rtt = now - float(echo[i])
            if self._reject_outlier(rtt):
                continue
            if self._last_update is not None and \
                    now - self._last_update < min_rtt:
                continue
            self._last_update = now
            self.update_rate(rtt)

    def _reject_outlier(self, rtt: float) -> bool:
        """Outlier rejection against the EWMA baseline (if enabled)."""
        if self.rtt_outlier_factor is None:
            return False
        if self._rtt_baseline is not None and \
                rtt > self.rtt_outlier_factor * self._rtt_baseline:
            self.rtt_outliers_rejected += 1
            return True
        a = self.params.ewma_alpha
        self._rtt_baseline = rtt if self._rtt_baseline is None \
            else (1.0 - a) * self._rtt_baseline + a * rtt
        return False

    def update_rate(self, rtt: float) -> None:
        """Algorithm 1, lines 1-12."""
        p = self.params
        if self.prev_rtt is None:
            new_rtt_diff = 0.0
        else:
            new_rtt_diff = rtt - self.prev_rtt
        self.prev_rtt = rtt
        self.rtt_diff = (1.0 - p.ewma_alpha) * self.rtt_diff \
            + p.ewma_alpha * new_rtt_diff
        gradient = self.rtt_diff / p.min_rtt
        if self.gradient_clamp is not None:
            gradient = min(max(gradient, -self.gradient_clamp),
                           self.gradient_clamp)
        delta_bytes = p.delta * p.mtu_bytes

        if rtt < p.t_low:
            # Plain additive increase; HAI never applies below T_low
            # (footnote 5 of the paper).
            self._negative_gradient_streak = 0
            self.rate = self._rate + delta_bytes
        elif rtt > p.t_high:
            self._negative_gradient_streak = 0
            self.rate = self._rate * (1.0 - p.beta * (1.0 - p.t_high / rtt))
        else:
            self.rate = self.gradient_band_rate(rtt, gradient, delta_bytes)

    def gradient_band_rate(self, rtt: float, gradient: float,
                           delta_bytes: float) -> float:
        """Lines 9-12 of Algorithm 1 (overridden by patched TIMELY).

        The multiplicative factor is floored at ``1 - beta``: a single
        sample with a normalized gradient above 1 (easy to produce with
        64 KB bursts) must not cut deeper than the ``T_high`` branch's
        worst case, or one incast spike zeroes the rate outright.
        """
        if gradient <= 0.0:
            self._negative_gradient_streak += 1
            if self._negative_gradient_streak >= self.hai_threshold:
                # Hyper-active increase: five completion events of
                # falling RTT switch to N * delta steps ([21], Alg. 1).
                return self._rate + self.hai_threshold * delta_bytes
            return self._rate + delta_bytes
        self._negative_gradient_streak = 0
        factor = max(1.0 - self.params.beta * gradient,
                     1.0 - self.params.beta)
        return self._rate * factor


class TimelyReceiver(BaseReceiver):
    """Per-segment completion ACKs carrying the echoed timestamp."""

    def __init__(self, sim: Simulator, host: Host, flow: Flow,
                 params: TimelyParams,
                 on_complete: Optional[Callable[[Flow], None]] = None):
        super().__init__(sim, host, flow, on_complete=on_complete)
        self.params = params
        self.segment_bytes = params.segment * params.mtu_bytes
        self._bytes_since_ack = 0
        self.acks_sent = 0

    def handle_data(self, packet: Packet) -> None:
        self._bytes_since_ack += packet.size_bytes
        if self._bytes_since_ack >= self.segment_bytes:
            self._send_ack(packet)

    def handle_data_batch(self, batch: PacketBatch, arrival_times,
                          count: int, delivered_before: int) -> None:
        """Batched segment walk: one ACK per completed segment.

        ACKs are sparse (one per ``Seg`` bytes), so they stay on the
        scalar control path; only the per-data-packet accounting is
        object-free.  ``acked_bytes`` reconstructs the running
        delivered total the scalar path would have read from the flow.
        """
        sizes = batch.size_bytes
        sent = batch.sent_time
        seg = self.segment_bytes
        acc = self._bytes_since_ack
        cum = delivered_before
        for i in range(count):
            size = int(sizes[i])
            acc += size
            cum += size
            if acc >= seg:
                acc = 0
                self.acks_sent += 1
                self.send_control(
                    "ack",
                    echo_time=None if sent is None else float(sent[i]),
                    acked_bytes=cum)
        self._bytes_since_ack = acc

    def handle_completion(self, last_packet: Packet) -> None:
        # Flush a final ACK so short flows (< one segment) still
        # produce an RTT sample for the sender.
        if self._bytes_since_ack > 0:
            self._send_ack(last_packet)

    def _send_ack(self, packet: Packet) -> None:
        self._bytes_since_ack = 0
        self.acks_sent += 1
        self.send_control("ack", echo_time=packet.sent_time,
                          acked_bytes=self.flow.bytes_delivered)
