"""Packet representations: per-object, pooled, and struct-of-arrays.

Three tiers, by hot-path temperature:

* :class:`Packet` -- one Python object per packet, ``__slots__`` kept
  minimal.  The exact path; every experiment semantics is defined in
  terms of it.
* :class:`PacketPool` -- a freelist recycling :class:`Packet` objects
  on the exact path.  Protocol agents acquire from the pool and the
  terminal :meth:`~repro.sim.node.Host.receive` releases back into it,
  so steady-state traffic allocates no new objects (allocation and GC
  pressure show up clearly in event-loop profiles).  Packets a
  component wants to keep past the handler return must be copied --
  field reads inside the handler are always safe.
* :class:`PacketBatch` -- a struct-of-arrays run of packets sharing
  ``(flow, src, dst, kind)``, with per-packet numpy columns for size,
  seq, timestamps and marks.  The batched fast path in
  :mod:`repro.sim.link` serializes a whole batch in one vectorized
  step and delivers it as a single event window.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from typing import Iterator, Optional

import numpy as np

#: Size of control packets (ACKs, CNPs, PFC frames), bytes.
CONTROL_PACKET_BYTES = 64

#: Poison ``kind`` stamped on released packets while the pool runs in
#: debug mode.  Any component that dispatches a quarantined packet
#: afterwards hits the terminal host's unknown-kind branch, turning a
#: silent use-after-release into a loud error.
RELEASED_KIND = "__released__"


class PoolMisuseError(RuntimeError):
    """A pooled packet was released twice or after recycling.

    Raised only in strict debug mode (see
    :meth:`PacketPool.debug_session`); outside it misuse is counted
    but tolerated, preserving the historical idempotent-``release``
    contract."""


class Packet:
    """A data or control packet.

    Attributes
    ----------
    flow_id:
        Owning flow; control packets carry the flow they refer to.
    size_bytes:
        Wire size used for serialization timing.
    src, dst:
        Endpoint node names, used by switch forwarding.
    kind:
        ``"data"``, ``"ack"``, ``"cnp"``, ``"pause"`` or ``"resume"``.
    sent_time:
        Stamped by the sender NIC at first transmission; echoed into
        ACKs so TIMELY can measure RTT.
    ecn_marked:
        Set by a congested switch queue (CE codepoint).
    echo_time:
        For ACKs: the ``sent_time`` of the data packet (or last packet
        of the chunk) being acknowledged.
    acked_bytes:
        For ACKs: cumulative bytes the receiver has seen for the flow.
    pooled:
        True while the packet is on loan from a :class:`PacketPool`;
        the delivering host recycles it after dispatch.
    """

    __slots__ = ("flow_id", "size_bytes", "src", "dst",
                 "kind", "sent_time", "ecn_marked", "echo_time",
                 "acked_bytes", "seq", "pfc_ingress", "corrupted",
                 "pooled", "enqueue_time")

    def __init__(self, flow_id: int, size_bytes: int, src: str, dst: str,
                 kind: str = "data", seq: int = 0):
        self.flow_id = flow_id
        self.size_bytes = size_bytes
        self.src = src
        self.dst = dst
        self.kind = kind
        self.seq = seq
        self.sent_time: Optional[float] = None
        self.ecn_marked = False
        self.echo_time: Optional[float] = None
        self.acked_bytes = 0
        #: Upstream label at the switch currently buffering the packet
        #: (PFC accounting; rewritten at each hop).
        self.pfc_ingress: Optional[str] = None
        #: Set by the fault injector: the packet still occupies wire
        #: and buffer resources but fails its CRC at the destination
        #: host, which discards it (RoCE has no payload recovery).
        self.corrupted = False
        self.pooled = False
        #: Stamped by the flow-forensics ledger when the packet enters
        #: an egress FIFO; None whenever forensics is off.
        self.enqueue_time: Optional[float] = None

    @property
    def is_control(self) -> bool:
        """Control packets skip ECN marking and flow accounting."""
        return self.kind != "data"

    def __repr__(self) -> str:
        flags = " ECN" if self.ecn_marked else ""
        return (f"<Packet {self.kind} flow={self.flow_id} seq={self.seq} "
                f"{self.src}->{self.dst} {self.size_bytes}B{flags}>")


class PacketPool:
    """Freelist of recyclable :class:`Packet` objects.

    ``acquire`` re-initializes a recycled instance (or allocates when
    the freelist is dry) and flags it ``pooled``;
    :meth:`~repro.sim.node.Host.receive` hands pooled packets back via
    ``release`` once dispatch returns.  The contract is single-owner:
    a released packet's fields may be overwritten at the very next
    ``acquire``, so handlers copy anything they keep.  Components that
    legitimately park packets mid-flight (the fault injector's
    feedback-delay hold queue) are unaffected -- release happens only
    at final delivery, which their re-injection still flows through.

    ``max_free`` bounds freelist growth so a transient burst does not
    pin its high-water packet count forever.

    Debug mode (:meth:`debug_session`) adds a misuse guard for the
    fuzz harness: every loan is tracked by object identity, releases
    of non-loaned packets are counted as double-releases, and released
    packets are *quarantined* with a poisoned ``kind`` instead of
    recycled, so any later dispatch of a stale reference raises
    through the terminal host's unknown-kind check.  Outstanding loans
    at scrape time surface as the ``sim.packet.pool_leaked_total``
    gauge, which the fuzz leak oracle reconciles against known sinks
    (drop-tail losses, fault drops, held packets).
    """

    __slots__ = ("_free", "max_free", "allocated", "reused", "debug",
                 "strict", "_loans", "_quarantine", "double_releases")

    def __init__(self, max_free: int = 8192):
        self._free: list = []
        self.max_free = max_free
        self.allocated = 0
        self.reused = 0
        #: True while a :meth:`debug_session` is active.
        self.debug = False
        #: In debug mode, raise :class:`PoolMisuseError` on misuse
        #: instead of only counting it.
        self.strict = False
        #: Live loans by ``id(packet)`` (strong refs, so ids are
        #: never aliased by the garbage collector).
        self._loans: dict = {}
        #: Released-but-not-recycled packets (debug mode only).
        self._quarantine: deque = deque(maxlen=4 * max_free)
        self.double_releases = 0

    def acquire(self, flow_id: int, size_bytes: int, src: str, dst: str,
                kind: str = "data", seq: int = 0) -> Packet:
        """A fresh-looking packet, recycled when possible."""
        free = self._free
        if free:
            self.reused += 1
            packet = free.pop()
            packet.flow_id = flow_id
            packet.size_bytes = size_bytes
            packet.src = src
            packet.dst = dst
            packet.kind = kind
            packet.seq = seq
            packet.sent_time = None
            packet.ecn_marked = False
            packet.echo_time = None
            packet.acked_bytes = 0
            packet.pfc_ingress = None
            packet.corrupted = False
            packet.enqueue_time = None
        else:
            self.allocated += 1
            packet = Packet(flow_id, size_bytes, src, dst, kind=kind,
                            seq=seq)
        packet.pooled = True
        if self.debug:
            self._loans[id(packet)] = packet
        return packet

    def release(self, packet: Packet) -> None:
        """Return a pooled packet to the freelist (idempotent)."""
        if not packet.pooled:
            if self.debug:
                self.double_releases += 1
                if self.strict:
                    raise PoolMisuseError(
                        f"double release of {packet!r}")
            return
        packet.pooled = False
        if self.debug:
            self._loans.pop(id(packet), None)
            packet.kind = RELEASED_KIND
            self._quarantine.append(packet)
            return
        if len(self._free) < self.max_free:
            self._free.append(packet)

    # -- debug / misuse guard -------------------------------------------------

    @property
    def outstanding(self) -> int:
        """Packets currently on loan (0 unless debug mode tracked them)."""
        return len(self._loans)

    def outstanding_packets(self, limit: int = 8) -> list:
        """Reprs of up to ``limit`` live loans, for leak diagnostics."""
        out = []
        for packet in self._loans.values():
            out.append(repr(packet))
            if len(out) >= limit:
                break
        return out

    @contextmanager
    def debug_session(self, strict: bool = False) -> Iterator["PacketPool"]:
        """Run a block with loan tracking and the misuse guard on.

        Counters (:attr:`outstanding`, :attr:`double_releases`) are
        reset on entry and *kept* on exit so callers can assert on
        them after the block; the quarantine is cleared on exit to
        drop its held references (the loan table survives until the
        next session so leak reports stay readable).  Sessions do not
        nest (the inner session would steal the outer's loans).
        """
        if self.debug:
            raise RuntimeError("pool debug sessions do not nest")
        self._loans.clear()
        self._quarantine.clear()
        self.double_releases = 0
        self.debug = True
        self.strict = strict
        try:
            yield self
        finally:
            self.debug = False
            self.strict = False
            self._quarantine.clear()

    def publish_metrics(self, registry, prefix: str = "sim.packet") -> None:
        """Scrape pool counters; the leak gauge feeds the fuzz oracle."""
        registry.gauge(f"{prefix}.pool_allocated").set(self.allocated)
        registry.gauge(f"{prefix}.pool_reused").set(self.reused)
        registry.gauge(f"{prefix}.pool_free").set(len(self._free))
        registry.gauge(f"{prefix}.pool_leaked_total").set(
            self.outstanding)
        registry.gauge(f"{prefix}.pool_double_releases_total").set(
            self.double_releases)

    def __len__(self) -> int:
        return len(self._free)


#: Process-wide default pool.  Single-threaded simulators in the same
#: process share it harmlessly (packets are inert data between events);
#: worker processes each get their own copy at fork/spawn.
PACKET_POOL = PacketPool()


class PacketBatch:
    """A struct-of-arrays run of packets with shared routing fields.

    All packets in a batch share ``(flow_id, src, dst, kind)`` --
    exactly the shape produced by one flow's backlog or one receiver's
    ACK train -- while per-packet state lives in parallel numpy
    columns.  The batched port path serializes these in one
    ``np.add.accumulate`` instead of one event per packet.

    Columns
    -------
    size_bytes : float64[count]
        Wire sizes (float so serialization math stays in numpy).
    seq : int64[count]
    sent_time : float64[count] or None
        NIC transmit stamps (None until stamped).
    ecn_marked : bool[count]
    echo_time : float64[count] or None
        ACK batches: echoed data-packet transmit stamps.
    acked_bytes : int64[count] or None
        ACK batches: cumulative delivered bytes per ACK.
    """

    __slots__ = ("flow_id", "src", "dst", "kind", "size_bytes", "seq",
                 "sent_time", "ecn_marked", "echo_time", "acked_bytes",
                 "count", "total_bytes")

    def __init__(self, flow_id: int, size_bytes, src: str, dst: str,
                 kind: str = "data", seq_start: int = 0):
        sizes = np.asarray(size_bytes, dtype=np.float64)
        if sizes.ndim != 1 or sizes.size == 0:
            raise ValueError("size_bytes must be a non-empty 1-D array")
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.kind = kind
        self.size_bytes = sizes
        self.count = int(sizes.size)
        self.total_bytes = int(sizes.sum())
        self.seq = np.arange(seq_start, seq_start + self.count,
                             dtype=np.int64)
        self.sent_time: Optional[np.ndarray] = None
        self.ecn_marked = np.zeros(self.count, dtype=bool)
        self.echo_time: Optional[np.ndarray] = None
        self.acked_bytes: Optional[np.ndarray] = None

    @classmethod
    def uniform(cls, flow_id: int, count: int, size_bytes: int, src: str,
                dst: str, kind: str = "data",
                seq_start: int = 0) -> "PacketBatch":
        """A batch of ``count`` equal-size packets (the common case)."""
        return cls(flow_id, np.full(count, float(size_bytes)), src, dst,
                   kind=kind, seq_start=seq_start)

    @property
    def is_control(self) -> bool:
        return self.kind != "data"

    def packet_at(self, i: int,
                  pool: Optional[PacketPool] = None) -> Packet:
        """Materialize the single packet at index ``i``."""
        if pool is None:
            pool = PACKET_POOL
        packet = pool.acquire(self.flow_id, int(self.size_bytes[i]),
                              self.src, self.dst, kind=self.kind,
                              seq=int(self.seq[i]))
        if self.sent_time is not None:
            packet.sent_time = float(self.sent_time[i])
        if self.echo_time is not None:
            packet.echo_time = float(self.echo_time[i])
        if self.acked_bytes is not None:
            packet.acked_bytes = int(self.acked_bytes[i])
        packet.ecn_marked = bool(self.ecn_marked[i])
        return packet

    def packets(self, pool: Optional[PacketPool] = None) -> list:
        """Materialize per-object :class:`Packet` instances.

        The interop escape hatch: a batch that reaches a component
        without a batched entry point (a marked port, a PFC switch)
        falls back to the exact per-object path through here.
        """
        if pool is None:
            pool = PACKET_POOL
        out = []
        sent = self.sent_time
        echo = self.echo_time
        acked = self.acked_bytes
        ecn = self.ecn_marked
        for i in range(self.count):
            packet = pool.acquire(self.flow_id,
                                  int(self.size_bytes[i]), self.src,
                                  self.dst, kind=self.kind,
                                  seq=int(self.seq[i]))
            if sent is not None:
                packet.sent_time = float(sent[i])
            if echo is not None:
                packet.echo_time = float(echo[i])
            if acked is not None:
                packet.acked_bytes = int(acked[i])
            packet.ecn_marked = bool(ecn[i])
            out.append(packet)
        return out

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (f"<PacketBatch {self.kind} flow={self.flow_id} "
                f"n={self.count} {self.src}->{self.dst} "
                f"{self.total_bytes}B>")
