"""Packet representation for the simulator.

``__slots__`` keeps per-packet overhead low -- FCT experiments push
millions of packets through the event loop.
"""

from __future__ import annotations

import itertools
from typing import Optional

#: Size of control packets (ACKs, CNPs, PFC frames), bytes.
CONTROL_PACKET_BYTES = 64

_packet_ids = itertools.count()


class Packet:
    """A data or control packet.

    Attributes
    ----------
    flow_id:
        Owning flow; control packets carry the flow they refer to.
    size_bytes:
        Wire size used for serialization timing.
    src, dst:
        Endpoint node names, used by switch forwarding.
    kind:
        ``"data"``, ``"ack"``, ``"cnp"``, ``"pause"`` or ``"resume"``.
    sent_time:
        Stamped by the sender NIC at first transmission; echoed into
        ACKs so TIMELY can measure RTT.
    ecn_marked:
        Set by a congested switch queue (CE codepoint).
    echo_time:
        For ACKs: the ``sent_time`` of the data packet (or last packet
        of the chunk) being acknowledged.
    acked_bytes:
        For ACKs: cumulative bytes the receiver has seen for the flow.
    """

    __slots__ = ("packet_id", "flow_id", "size_bytes", "src", "dst",
                 "kind", "sent_time", "ecn_marked", "echo_time",
                 "acked_bytes", "seq", "pfc_ingress", "corrupted")

    def __init__(self, flow_id: int, size_bytes: int, src: str, dst: str,
                 kind: str = "data", seq: int = 0):
        self.packet_id = next(_packet_ids)
        self.flow_id = flow_id
        self.size_bytes = size_bytes
        self.src = src
        self.dst = dst
        self.kind = kind
        self.seq = seq
        self.sent_time: Optional[float] = None
        self.ecn_marked = False
        self.echo_time: Optional[float] = None
        self.acked_bytes = 0
        #: Upstream label at the switch currently buffering the packet
        #: (PFC accounting; rewritten at each hop).
        self.pfc_ingress: Optional[str] = None
        #: Set by the fault injector: the packet still occupies wire
        #: and buffer resources but fails its CRC at the destination
        #: host, which discards it (RoCE has no payload recovery).
        self.corrupted = False

    @property
    def is_control(self) -> bool:
        """Control packets skip ECN marking and flow accounting."""
        return self.kind != "data"

    def __repr__(self) -> str:
        flags = " ECN" if self.ecn_marked else ""
        return (f"<Packet {self.kind} flow={self.flow_id} seq={self.seq} "
                f"{self.src}->{self.dst} {self.size_bytes}B{flags}>")
