"""Links and egress ports (serializer + queue + propagation).

A :class:`Port` is the transmitting half of an attachment: it owns the
egress FIFO, serializes packets at the line rate, optionally consults
an AQM marker, and hands finished packets to its :class:`Link`, which
applies propagation delay and delivers to the downstream device's
``receive(packet, ingress=...)``.

ECN marking points (Section 5.2 of the paper):

* ``"egress"`` (default, how Broadcom-style shared-buffer silicon
  works): the marking decision is made when the packet *departs*,
  against the queue occupancy at that instant -- so the mark is fresh
  regardless of how long the packet queued.
* ``"ingress"``: the decision is made at *enqueue* time against the
  arrival occupancy; by the time the packet leaves (and the mark
  travels on), the information is one queuing delay stale.  This
  reproduces the Fig. 17 instability.

Batched windows (``batch_window=N``)
------------------------------------

The per-packet path costs two events per packet per hop (finish +
delivery).  With ``batch_window`` set, an *eligible* port instead
serializes a whole window -- a :class:`~repro.sim.packet.PacketBatch`
handed to :meth:`Port.send_batch`, or up to ``N`` queued packet
objects -- in one vectorized step: per-packet finish times come from
one ``np.add.accumulate`` (bit-identical to the sequential
``t += size/rate`` recurrence, which floats left-fold the same way),
and the window travels as **one** finish event plus **one** delivery
event carrying exact per-packet arrival timestamps.

Eligibility is structural, checked per window: no AQM marker, no
strict-priority control queue, not paused, a downstream that
implements ``receive_window``, and no ``on_transmit`` hook *unless*
an ``on_transmit_window`` companion is installed (monitors that
understand windows -- the packet tracer -- chain both and keep the
vectorized path; PFC switches install only the scalar hooks and stay
exact).  ``on_drop`` never affects eligibility: drops happen at
enqueue time in :meth:`Port.send`, which the window path bypasses
only when no drop-tail capacity is configured.  Anything else falls
back to the exact per-packet path -- a port with
``batch_window=None`` (the default) never batches at all, which is
what keeps the paper experiments bit-identical to the oracle.

The semantic trade, documented for hybrid/throughput scenarios that
opt in: per-packet *times* stay exact, but downstream *processing* of
a window is coalesced at its last arrival, and a PAUSE landing
mid-window takes effect only at the window boundary (bounded by
``batch_window`` packets).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.packet import Packet, PacketBatch
from repro.sim.queues import ByteFIFO

#: Valid marking points for ports with an AQM marker attached.
MARKING_POINTS = ("egress", "ingress")

#: Minimum queued-object backlog worth draining as a window; below
#: this the scalar path's two events are no worse than a window's.
MIN_DRAIN = 2


class Link:
    """Unidirectional propagation-delay pipe to a downstream device."""

    __slots__ = ("sim", "delay", "dst", "ingress_label")

    def __init__(self, sim: Simulator, delay: float,
                 dst: "object", ingress_label: Optional[str] = None):
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self.sim = sim
        self.delay = delay
        self.dst = dst
        #: Label passed to the receiver, identifying the upstream
        #: device (used by PFC accounting at switches).
        self.ingress_label = ingress_label

    def deliver(self, packet: Packet) -> None:
        """Deliver ``packet`` after the propagation delay.

        The receive callback is scheduled with positional args rather
        than a per-packet closure; this path runs once per packet per
        hop.
        """
        self.sim.schedule(self.delay, self.dst.receive, packet,
                          self.ingress_label)

    def deliver_window(self, payload, finish_times) -> None:
        """Deliver a serialized window as one event.

        ``payload`` is a :class:`~repro.sim.packet.PacketBatch` or a
        list of packet objects; ``finish_times`` are the per-packet
        serialization-finish stamps.  The downstream's
        ``receive_window(payload, arrival_times, ingress)`` fires at
        the *last* arrival with every per-packet arrival time exact
        (``finish + delay``, the same float op the scalar path does).
        """
        arrivals = finish_times + self.delay
        self.sim.schedule_at(float(arrivals[-1]), self.dst.receive_window,
                             payload, arrivals, self.ingress_label)


class Port:
    """Egress port: FIFO + line-rate serializer + optional AQM marker."""

    __slots__ = ("sim", "rate", "link", "marker", "marking_point",
                 "queue", "priority_control", "control_queue", "name",
                 "busy", "paused", "bytes_transmitted",
                 "packets_transmitted", "ecn_marks", "on_transmit",
                 "on_transmit_window", "on_drop", "batch_window",
                 "_batch_backlog", "_dst_batched", "ledger")

    def __init__(self, sim: Simulator, rate_bytes_per_s: float,
                 link: Link, marker: Optional[object] = None,
                 marking_point: str = "egress",
                 capacity_bytes: Optional[int] = None,
                 name: str = "port",
                 priority_control: bool = False,
                 batch_window: Optional[int] = None):
        if rate_bytes_per_s <= 0:
            raise ValueError(
                f"rate must be positive, got {rate_bytes_per_s}")
        if marking_point not in MARKING_POINTS:
            raise ValueError(
                f"marking_point must be one of {MARKING_POINTS}, "
                f"got {marking_point!r}")
        if batch_window is not None and batch_window < MIN_DRAIN:
            raise ValueError(
                f"batch_window must be >= {MIN_DRAIN} or None, "
                f"got {batch_window}")
        self.sim = sim
        self.rate = rate_bytes_per_s
        self.link = link
        self.marker = marker
        self.marking_point = marking_point
        self.queue = ByteFIFO(capacity_bytes)
        #: Strict-priority class for control packets (ACKs/CNPs),
        #: Section 5.2's "prioritizing feedback packets".  When
        #: enabled, control packets never wait behind data.
        self.priority_control = priority_control
        self.control_queue = ByteFIFO() if priority_control else None
        self.name = name
        self.busy = False
        self.paused = False
        self.bytes_transmitted = 0
        self.packets_transmitted = 0
        #: Packets this port stamped CE (either marking point).
        self.ecn_marks = 0
        #: Hook called when a packet finishes serialization (monitors,
        #: PFC accounting).  Signature: ``fn(packet)``.
        self.on_transmit: Optional[Callable[[Packet], None]] = None
        #: Window-aware companion to ``on_transmit``: called once per
        #: serialized window with ``fn(payload, finish_times)`` where
        #: ``payload`` is a PacketBatch or a list of packets.  A port
        #: with ``on_transmit`` set stays window-capable only when
        #: this is also set (see :meth:`_window_capable`).
        self.on_transmit_window: Optional[Callable] = None
        #: Hook called when the (finite) queue drops a packet, so
        #: switch-level accounting can release the buffered bytes.
        self.on_drop: Optional[Callable[[Packet], None]] = None
        #: Flow-forensics ledger (:mod:`repro.obs.forensics`); None
        #: whenever forensics is off, and every call site guards on
        #: that so the off path costs one attribute load per event.
        self.ledger = None
        #: Max packets serialized per vectorized window; None disables
        #: batching entirely (the exact per-packet path).
        self.batch_window = batch_window
        #: FIFO of accepted :class:`PacketBatch` windows.  A batch is
        #: accepted only while the scalar queue is empty, so backlog
        #: order is arrival order.
        self._batch_backlog: deque = deque()
        self._dst_batched: Optional[bool] = None
        if marker is not None and marker.update_interval is not None:
            self._schedule_marker_update(marker.update_interval)

    def _schedule_marker_update(self, interval: float) -> None:
        def tick() -> None:
            self.marker.update(self.queue.size_bytes, self.sim.now)
            self.sim.schedule(interval, tick)
        self.sim.schedule(interval, tick)

    @property
    def occupancy_bytes(self) -> int:
        """Egress backlog, bytes (excluding packets on the wire).

        Batched windows count as "on the wire" for their whole span:
        the drain empties the FIFO at window start, exactly as the
        scalar path excludes its single in-flight packet.
        """
        total = self.queue.size_bytes
        if self.control_queue is not None:
            total += self.control_queue.size_bytes
        for batch in self._batch_backlog:
            total += batch.total_bytes
        return total

    # -- batched path ---------------------------------------------------------

    def _window_capable(self) -> bool:
        """Structural eligibility for the vectorized window path."""
        if self.batch_window is None or self.marker is not None or \
                self.control_queue is not None:
            return False
        if self.on_transmit is not None and \
                self.on_transmit_window is None:
            # A scalar-only monitor (PFC egress accounting) must see
            # every packet; window-aware monitors chain both hooks
            # and keep the vectorized path.
            return False
        if self._dst_batched is None:
            self._dst_batched = hasattr(self.link.dst, "receive_window")
        return self._dst_batched

    def send_batch(self, batch: PacketBatch) -> None:
        """Enqueue a whole :class:`PacketBatch` for transmission.

        Accepted onto the vectorized path only when the port is
        structurally eligible, the scalar FIFO is empty (so windows
        and packets keep FIFO order), and no drop-tail capacity is
        configured (the batch bypasses the FIFO's accounting).
        Otherwise the batch is materialized through the exact
        per-packet :meth:`send` path.
        """
        if self._window_capable() and self.queue.is_empty and \
                self.queue.capacity_bytes is None:
            if self.ledger is not None:
                self.ledger.on_batch_enqueue(self, batch)
            self._batch_backlog.append(batch)
            if not self.busy and not self.paused:
                self._start_batch_window()
            return
        for packet in batch.packets():
            self.send(packet)

    def _finish_times(self, sizes: np.ndarray) -> np.ndarray:
        """Per-packet serialization-finish stamps for a window.

        ``np.add.accumulate`` left-folds exactly like the sequential
        scalar recurrence ``t = t + size/rate``, so these stamps are
        bit-identical to what the per-packet path would produce.
        """
        steps = np.empty(len(sizes) + 1)
        steps[0] = self.sim.now
        np.divide(sizes, self.rate, out=steps[1:])
        return np.add.accumulate(steps)[1:]

    def _start_batch_window(self) -> None:
        batch = self._batch_backlog.popleft()
        finishes = self._finish_times(batch.size_bytes)
        self.busy = True
        self.sim.schedule_at(float(finishes[-1]), self._finish_window,
                             batch, finishes, batch.total_bytes,
                             batch.count)

    def _start_drain_window(self) -> None:
        window, total = self.queue.dequeue_window(self.batch_window)
        sizes = np.fromiter((p.size_bytes for p in window),
                            dtype=np.float64, count=len(window))
        finishes = self._finish_times(sizes)
        self.busy = True
        self.sim.schedule_at(float(finishes[-1]), self._finish_window,
                             window, finishes, total, len(window))

    def _finish_window(self, payload, finishes, total_bytes: int,
                       count: int) -> None:
        self.busy = False
        self.bytes_transmitted += total_bytes
        self.packets_transmitted += count
        if self.on_transmit_window is not None:
            self.on_transmit_window(payload, finishes)
        if self.ledger is not None:
            self.ledger.on_window(self, payload, finishes)
        self.link.deliver_window(payload, finishes)
        self._maybe_start()

    # -- exact per-packet path ------------------------------------------------

    def send(self, packet: Packet) -> None:
        """Enqueue for transmission, applying ingress-point marking.

        When the port is already draining (``busy``), enqueueing is all
        that happens: the in-flight ``_finish`` event is the wakeup,
        and scheduling another would double-serve the serializer.  Only
        an idle port starts a transmission here, and then exactly one.
        """
        if self.marker is not None and self.marking_point == "ingress" \
                and not packet.is_control:
            occupancy = self.queue.size_bytes + packet.size_bytes
            if self.marker.should_mark(occupancy):
                packet.ecn_marked = True
                self.ecn_marks += 1
        target = self.control_queue if (self.control_queue is not None
                                        and packet.is_control) \
            else self.queue
        if not target.enqueue(packet):
            if self.on_drop is not None:
                self.on_drop(packet)
            if self.ledger is not None:
                self.ledger.on_drop(self, packet)
            return
        if self.ledger is not None:
            self.ledger.on_enqueue(self, packet)
        if not self.busy:
            self._maybe_start()

    def pause(self) -> None:
        """PFC PAUSE: stop serving the *data* class.

        With ``priority_control`` enabled, control packets keep
        flowing: in real 802.1Qbb deployments PFC pauses per priority,
        and feedback (CNPs/ACKs) rides an unpaused class -- otherwise
        a PAUSE storm would also strangle the very signals that drain
        the congestion.
        """
        self.paused = True
        if self.ledger is not None:
            self.ledger.on_pause(self)

    def resume(self) -> None:
        """PFC RESUME: restart transmissions if backlog exists."""
        if not self.paused:
            return
        self.paused = False
        if self.ledger is not None:
            self.ledger.on_resume(self)
        if not self.busy:
            self._maybe_start()

    def _serviceable_queue(self) -> Optional[ByteFIFO]:
        """The queue the serializer should serve next, if any."""
        if self.control_queue is not None and \
                not self.control_queue.is_empty:
            return self.control_queue
        if self.paused:
            return None
        if not self.queue.is_empty:
            return self.queue
        return None

    def _maybe_start(self) -> None:
        """Start the next transmission, window or packet, if any.

        Accepted batch windows always precede the scalar FIFO (they
        were accepted while it was empty, so they are older).  A deep
        enough scalar backlog on an eligible port is drained as a
        vectorized window too; otherwise the exact single-packet
        serializer runs.
        """
        if self._batch_backlog:
            if not self.paused:
                self._start_batch_window()
            return
        source = self._serviceable_queue()
        if source is None:
            return
        if source is self.queue and len(source) >= MIN_DRAIN and \
                self._window_capable():
            self._start_drain_window()
            return
        self._transmit_from(source)

    def _transmit_from(self, source: ByteFIFO) -> None:
        """Dequeue from ``source`` and put the packet on the wire.

        Callers have already selected the serviceable queue; taking it
        as an argument keeps queue selection to one pass per wakeup
        (the old ``_start_transmission`` re-derived it, doubling the
        per-packet selection cost).
        """
        packet = source.dequeue()
        if self.marker is not None and self.marking_point == "egress" \
                and not packet.is_control:
            # Departure-time decision against the instantaneous queue
            # (the departing packet counts as part of the backlog).
            occupancy = self.queue.size_bytes + packet.size_bytes
            if self.marker.should_mark(occupancy):
                packet.ecn_marked = True
                self.ecn_marks += 1
        self.busy = True
        duration = packet.size_bytes / self.rate
        self.sim.schedule(duration, self._finish, packet)

    def publish_metrics(self, registry) -> None:
        """Scrape this port's lifetime counters into a registry.

        Called at aggregation points (after a run, via
        :func:`repro.obs.scrape.scrape_network`), never per packet,
        under ``sim.port.<name>.*`` with the port name sanitized to
        the metric alphabet.  AQM marker trial counts are included
        when a marker is attached.
        """
        from repro.obs.metrics import sanitize
        prefix = f"sim.port.{sanitize(self.name)}"
        registry.counter(f"{prefix}.bytes_total").inc(
            self.bytes_transmitted)
        registry.counter(f"{prefix}.packets_total").inc(
            self.packets_transmitted)
        registry.counter(f"{prefix}.ecn_marked_total").inc(
            self.ecn_marks)
        registry.gauge(f"{prefix}.paused").set(float(self.paused))
        self.queue.publish_metrics(registry, f"{prefix}.queue")
        if self.control_queue is not None:
            self.control_queue.publish_metrics(
                registry, f"{prefix}.control_queue")
        marker = self.marker
        if marker is not None and hasattr(marker, "mark_trials"):
            registry.counter(f"{prefix}.aqm_trials_total").inc(
                marker.mark_trials)
            registry.counter(f"{prefix}.aqm_marks_total").inc(
                marker.marks)

    def _finish(self, packet: Packet) -> None:
        self.busy = False
        self.bytes_transmitted += packet.size_bytes
        self.packets_transmitted += 1
        if self.on_transmit is not None:
            self.on_transmit(packet)
        if self.ledger is not None:
            self.ledger.on_departure(self, packet)
        self.link.deliver(packet)
        if self.batch_window is None and not self._batch_backlog:
            # Exact-path fast tail: queue selection only, no window
            # eligibility checks on the per-packet hot loop.
            source = self._serviceable_queue()
            if source is not None:
                self._transmit_from(source)
            return
        self._maybe_start()
