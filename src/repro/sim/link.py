"""Links and egress ports (serializer + queue + propagation).

A :class:`Port` is the transmitting half of an attachment: it owns the
egress FIFO, serializes packets at the line rate, optionally consults
an AQM marker, and hands finished packets to its :class:`Link`, which
applies propagation delay and delivers to the downstream device's
``receive(packet, ingress=...)``.

ECN marking points (Section 5.2 of the paper):

* ``"egress"`` (default, how Broadcom-style shared-buffer silicon
  works): the marking decision is made when the packet *departs*,
  against the queue occupancy at that instant -- so the mark is fresh
  regardless of how long the packet queued.
* ``"ingress"``: the decision is made at *enqueue* time against the
  arrival occupancy; by the time the packet leaves (and the mark
  travels on), the information is one queuing delay stale.  This
  reproduces the Fig. 17 instability.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.engine import Simulator
from repro.sim.packet import Packet
from repro.sim.queues import ByteFIFO

#: Valid marking points for ports with an AQM marker attached.
MARKING_POINTS = ("egress", "ingress")


class Link:
    """Unidirectional propagation-delay pipe to a downstream device."""

    __slots__ = ("sim", "delay", "dst", "ingress_label")

    def __init__(self, sim: Simulator, delay: float,
                 dst: "object", ingress_label: Optional[str] = None):
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self.sim = sim
        self.delay = delay
        self.dst = dst
        #: Label passed to the receiver, identifying the upstream
        #: device (used by PFC accounting at switches).
        self.ingress_label = ingress_label

    def deliver(self, packet: Packet) -> None:
        """Deliver ``packet`` after the propagation delay.

        The receive callback is scheduled with positional args rather
        than a per-packet closure; this path runs once per packet per
        hop.
        """
        self.sim.schedule(self.delay, self.dst.receive, packet,
                          self.ingress_label)


class Port:
    """Egress port: FIFO + line-rate serializer + optional AQM marker."""

    __slots__ = ("sim", "rate", "link", "marker", "marking_point",
                 "queue", "priority_control", "control_queue", "name",
                 "busy", "paused", "bytes_transmitted",
                 "packets_transmitted", "ecn_marks", "on_transmit",
                 "on_drop")

    def __init__(self, sim: Simulator, rate_bytes_per_s: float,
                 link: Link, marker: Optional[object] = None,
                 marking_point: str = "egress",
                 capacity_bytes: Optional[int] = None,
                 name: str = "port",
                 priority_control: bool = False):
        if rate_bytes_per_s <= 0:
            raise ValueError(
                f"rate must be positive, got {rate_bytes_per_s}")
        if marking_point not in MARKING_POINTS:
            raise ValueError(
                f"marking_point must be one of {MARKING_POINTS}, "
                f"got {marking_point!r}")
        self.sim = sim
        self.rate = rate_bytes_per_s
        self.link = link
        self.marker = marker
        self.marking_point = marking_point
        self.queue = ByteFIFO(capacity_bytes)
        #: Strict-priority class for control packets (ACKs/CNPs),
        #: Section 5.2's "prioritizing feedback packets".  When
        #: enabled, control packets never wait behind data.
        self.priority_control = priority_control
        self.control_queue = ByteFIFO() if priority_control else None
        self.name = name
        self.busy = False
        self.paused = False
        self.bytes_transmitted = 0
        self.packets_transmitted = 0
        #: Packets this port stamped CE (either marking point).
        self.ecn_marks = 0
        #: Hook called when a packet finishes serialization (monitors,
        #: PFC accounting).  Signature: ``fn(packet)``.
        self.on_transmit: Optional[Callable[[Packet], None]] = None
        #: Hook called when the (finite) queue drops a packet, so
        #: switch-level accounting can release the buffered bytes.
        self.on_drop: Optional[Callable[[Packet], None]] = None
        if marker is not None and marker.update_interval is not None:
            self._schedule_marker_update(marker.update_interval)

    def _schedule_marker_update(self, interval: float) -> None:
        def tick() -> None:
            self.marker.update(self.queue.size_bytes, self.sim.now)
            self.sim.schedule(interval, tick)
        self.sim.schedule(interval, tick)

    @property
    def occupancy_bytes(self) -> int:
        """Egress backlog, bytes (excluding the packet on the wire)."""
        total = self.queue.size_bytes
        if self.control_queue is not None:
            total += self.control_queue.size_bytes
        return total

    def send(self, packet: Packet) -> None:
        """Enqueue for transmission, applying ingress-point marking.

        When the port is already draining (``busy``), enqueueing is all
        that happens: the in-flight ``_finish`` event is the wakeup,
        and scheduling another would double-serve the serializer.  Only
        an idle port starts a transmission here, and then exactly one.
        """
        if self.marker is not None and self.marking_point == "ingress" \
                and not packet.is_control:
            occupancy = self.queue.size_bytes + packet.size_bytes
            if self.marker.should_mark(occupancy):
                packet.ecn_marked = True
                self.ecn_marks += 1
        target = self.control_queue if (self.control_queue is not None
                                        and packet.is_control) \
            else self.queue
        if not target.enqueue(packet):
            if self.on_drop is not None:
                self.on_drop(packet)
            return
        if not self.busy:
            source = self._serviceable_queue()
            if source is not None:
                self._transmit_from(source)

    def pause(self) -> None:
        """PFC PAUSE: stop serving the *data* class.

        With ``priority_control`` enabled, control packets keep
        flowing: in real 802.1Qbb deployments PFC pauses per priority,
        and feedback (CNPs/ACKs) rides an unpaused class -- otherwise
        a PAUSE storm would also strangle the very signals that drain
        the congestion.
        """
        self.paused = True

    def resume(self) -> None:
        """PFC RESUME: restart transmissions if backlog exists."""
        if not self.paused:
            return
        self.paused = False
        if not self.busy:
            self._maybe_start()

    def _serviceable_queue(self) -> Optional[ByteFIFO]:
        """The queue the serializer should serve next, if any."""
        if self.control_queue is not None and \
                not self.control_queue.is_empty:
            return self.control_queue
        if self.paused:
            return None
        if not self.queue.is_empty:
            return self.queue
        return None

    def _maybe_start(self) -> None:
        source = self._serviceable_queue()
        if source is not None:
            self._transmit_from(source)

    def _transmit_from(self, source: ByteFIFO) -> None:
        """Dequeue from ``source`` and put the packet on the wire.

        Callers have already selected the serviceable queue; taking it
        as an argument keeps queue selection to one pass per wakeup
        (the old ``_start_transmission`` re-derived it, doubling the
        per-packet selection cost).
        """
        packet = source.dequeue()
        if self.marker is not None and self.marking_point == "egress" \
                and not packet.is_control:
            # Departure-time decision against the instantaneous queue
            # (the departing packet counts as part of the backlog).
            occupancy = self.queue.size_bytes + packet.size_bytes
            if self.marker.should_mark(occupancy):
                packet.ecn_marked = True
                self.ecn_marks += 1
        self.busy = True
        duration = packet.size_bytes / self.rate
        self.sim.schedule(duration, self._finish, packet)

    def publish_metrics(self, registry) -> None:
        """Scrape this port's lifetime counters into a registry.

        Called at aggregation points (after a run, via
        :func:`repro.obs.scrape.scrape_network`), never per packet,
        under ``sim.port.<name>.*`` with the port name sanitized to
        the metric alphabet.  AQM marker trial counts are included
        when a marker is attached.
        """
        from repro.obs.metrics import sanitize
        prefix = f"sim.port.{sanitize(self.name)}"
        registry.counter(f"{prefix}.bytes_total").inc(
            self.bytes_transmitted)
        registry.counter(f"{prefix}.packets_total").inc(
            self.packets_transmitted)
        registry.counter(f"{prefix}.ecn_marked_total").inc(
            self.ecn_marks)
        registry.gauge(f"{prefix}.paused").set(float(self.paused))
        self.queue.publish_metrics(registry, f"{prefix}.queue")
        if self.control_queue is not None:
            self.control_queue.publish_metrics(
                registry, f"{prefix}.control_queue")
        marker = self.marker
        if marker is not None and hasattr(marker, "mark_trials"):
            registry.counter(f"{prefix}.aqm_trials_total").inc(
                marker.mark_trials)
            registry.counter(f"{prefix}.aqm_marks_total").inc(
                marker.marks)

    def _finish(self, packet: Packet) -> None:
        self.busy = False
        self.bytes_transmitted += packet.size_bytes
        self.packets_transmitted += 1
        if self.on_transmit is not None:
            self.on_transmit(packet)
        self.link.deliver(packet)
        source = self._serviceable_queue()
        if source is not None:
            self._transmit_from(source)
