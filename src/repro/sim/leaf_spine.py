"""Two-tier leaf-spine fabric -- the paper's "larger, realistic
topology" future work.

``n_leaves`` top-of-rack switches, each with ``hosts_per_leaf``
servers, fully meshed to ``n_spines`` spine switches.  Cross-rack
packets take host -> leaf -> spine -> leaf -> host; the spine is
chosen per (source, destination) pair with a deterministic hash --
the static-ECMP idealization (no per-packet spraying, so flows never
reorder, which matters since the protocols here have no reordering
recovery).

Uplinks can be oversubscribed: with ``n_spines * spine_gbps <
hosts_per_leaf * host_gbps`` the leaf uplinks become the contended
resource, the realistic regime for FCT studies.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Optional

from repro import units
from repro.sim.flows import FlowRegistry
from repro.sim.node import Host
from repro.sim.switch import Switch, connect
from repro.sim.topology import Network, _make_simulator


def host_name(leaf: int, index: int) -> str:
    """Canonical host naming: ``h<leaf>_<index>``."""
    return f"h{leaf}_{index}"


def _stable_hash(*parts: str) -> int:
    """Deterministic cross-run hash (Python's builtin is salted)."""
    digest = hashlib.sha256("|".join(parts).encode()).digest()
    return int.from_bytes(digest[:8], "big")


def leaf_spine(n_leaves: int = 4,
               n_spines: int = 2,
               hosts_per_leaf: int = 4,
               host_gbps: float = 10.0,
               spine_gbps: float = 10.0,
               link_delay: float = units.us(1),
               mtu_bytes: int = units.DEFAULT_MTU_BYTES,
               marker_factory: Optional[Callable[[], object]] = None,
               engine: str = "heap") -> Network:
    """Build the fabric and install hash-based spine selection.

    ``marker_factory() -> marker`` supplies a fresh AQM marker for
    *every* switch egress port (every port can become a bottleneck in
    a fabric); None disables marking.

    The returned network's ``bottleneck_port`` is the first leaf's
    first uplink (a representative contended port); per-port counters
    on every switch remain accessible through ``net.switches``.
    ``engine`` selects the scheduler backend exactly as in
    :func:`repro.sim.topology.single_switch`.
    """
    if n_leaves < 2:
        raise ValueError(f"need at least 2 leaves, got {n_leaves}")
    if n_spines < 1:
        raise ValueError(f"need at least 1 spine, got {n_spines}")
    if hosts_per_leaf < 1:
        raise ValueError(
            f"need at least 1 host per leaf, got {hosts_per_leaf}")

    sim = _make_simulator(engine)
    host_rate = host_gbps * 1e9 / units.BITS_PER_BYTE
    spine_rate = spine_gbps * 1e9 / units.BITS_PER_BYTE

    def marker():
        return marker_factory() if marker_factory else None

    leaves = [Switch(sim, f"leaf{i}") for i in range(n_leaves)]
    spines = [Switch(sim, f"spine{j}") for j in range(n_spines)]
    switches: Dict[str, Switch] = {s.name: s for s in leaves + spines}
    hosts: Dict[str, Host] = {}
    host_leaf: Dict[str, int] = {}

    # Leaf <-> spine mesh.
    first_uplink = None
    for leaf_idx, leaf in enumerate(leaves):
        for spine in spines:
            uplink = connect(sim, leaf, spine, spine_rate, link_delay,
                             marker=marker())
            connect(sim, spine, leaf, spine_rate, link_delay,
                    marker=marker())
            if first_uplink is None:
                first_uplink = uplink

    # Hosts onto leaves.
    for leaf_idx, leaf in enumerate(leaves):
        for h in range(hosts_per_leaf):
            name = host_name(leaf_idx, h)
            host = Host(sim, name)
            hosts[name] = host
            host_leaf[name] = leaf_idx
            connect(sim, host, leaf, host_rate, link_delay)
            connect(sim, leaf, host, host_rate, link_delay,
                    marker=marker())

    # Routing.  Leaves: local hosts direct; remote hosts via the
    # per-destination-hash spine.  Spines: every host via its leaf.
    for leaf_idx, leaf in enumerate(leaves):
        for name, loc in host_leaf.items():
            if loc == leaf_idx:
                leaf.add_route(name, name)
            else:
                spine_idx = _stable_hash(leaf.name, name) % n_spines
                leaf.add_route(name, spines[spine_idx].name)
    for spine in spines:
        for name, loc in host_leaf.items():
            spine.add_route(name, leaves[loc].name)

    return Network(sim=sim, hosts=hosts, switches=switches,
                   registry=FlowRegistry(),
                   bottleneck_port=first_uplink,
                   mtu_bytes=mtu_bytes, link_rate_bytes=host_rate,
                   engine=engine)


def _spine_names(net: Network) -> List[str]:
    """Spine switch names in index order."""
    return sorted((name for name in net.switches if name.startswith("spine")),
                  key=lambda name: int(name[len("spine"):]))


def reroute_around_spine(net: Network, leaf_name: str,
                         spine_name: str) -> int:
    """Steer ``leaf_name``'s routes off ``spine_name`` onto survivors.

    The topology-aware reaction to a failed leaf->spine uplink: every
    FIB entry at the leaf that pointed at the dark spine is re-hashed
    (deterministically) across the remaining spines, so cross-rack
    traffic reroutes instead of black-holing.  Returns the number of
    rewritten routes.  With a single spine there is nowhere to go and
    the traffic legitimately stalls -- 0 is returned.

    Designed as the ``on_link_down`` callback of a
    :class:`repro.sim.faults.FaultInjector` (parse the port name
    ``"leafX->spineY"`` and delegate here); pair with
    :func:`restore_spine_routes` on link recovery.
    """
    leaf = net.switches[leaf_name]
    survivors = [s for s in _spine_names(net) if s != spine_name]
    if not survivors:
        return 0
    rewritten = 0
    for dst, via in list(leaf.fib.items()):
        if via == spine_name:
            pick = _stable_hash(leaf_name, dst) % len(survivors)
            leaf.fib[dst] = survivors[pick]
            rewritten += 1
    return rewritten


def restore_spine_routes(net: Network, leaf_name: str) -> int:
    """Recompute ``leaf_name``'s original hash-based spine choices.

    Undoes :func:`reroute_around_spine` once the flapped uplink is
    back: every cross-rack route returns to the spine the original
    ECMP hash selected.  Returns the number of routes touched.
    """
    leaf = net.switches[leaf_name]
    spines = _spine_names(net)
    restored = 0
    for dst, via in list(leaf.fib.items()):
        if via == dst:
            continue  # local host, not a spine route
        original = spines[_stable_hash(leaf_name, dst) % len(spines)]
        if via != original:
            leaf.fib[dst] = original
            restored += 1
    return restored


def cross_rack_pairs(n_leaves: int, hosts_per_leaf: int
                     ) -> List["tuple[str, str]"]:
    """A rack-rotation permutation: every host sends to the host with
    its own index on the next rack -- all traffic crosses the spine."""
    pairs = []
    for leaf in range(n_leaves):
        for idx in range(hosts_per_leaf):
            src = host_name(leaf, idx)
            dst = host_name((leaf + 1) % n_leaves, idx)
            pairs.append((src, dst))
    return pairs
