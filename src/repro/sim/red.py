"""RED-style probabilistic ECN marking (Eq. 3 of the paper).

DCQCN's congestion point marks arriving-to-depart packets with
probability rising linearly from 0 at ``Kmin`` to ``Pmax`` at ``Kmax``
and 1 beyond, evaluated on the *instantaneous* egress queue (DCQCN
disables RED's averaging, per [31]).
"""

from __future__ import annotations

import numpy as np

from repro.core.params import REDParams


class REDMarker:
    """Instantaneous-queue RED marker operating on byte occupancies.

    Parameters
    ----------
    red:
        Thresholds in packets (the analytic convention).
    mtu_bytes:
        Conversion factor to byte-denominated queue occupancy.
    seed:
        Marking randomness seed, for reproducible simulations.
    rng:
        Optional shared ``numpy.random.Generator``.  Passing the same
        generator to every stochastic component (markers, fault
        injector) makes the whole simulation reproducible from one
        seed; omitted, the marker owns a private stream from ``seed``.
    """

    def __init__(self, red: REDParams, mtu_bytes: int, seed: int = 0,
                 rng: "np.random.Generator" = None):
        if mtu_bytes <= 0:
            raise ValueError(f"mtu_bytes must be positive, got {mtu_bytes}")
        self.red = red
        self.mtu_bytes = mtu_bytes
        self.kmin_bytes = red.kmin * mtu_bytes
        self.kmax_bytes = red.kmax * mtu_bytes
        self._rng = rng if rng is not None else np.random.default_rng(seed)
        #: Lifetime marking-decision counters -- plain ints on the
        #: per-packet path (cheaper than the Bernoulli draw itself),
        #: scraped into ``sim.port.<name>.aqm_*`` by the telemetry
        #: layer after the run.
        self.mark_trials = 0
        self.marks = 0

    def marking_probability(self, queue_bytes: float) -> float:
        """Eq. 3 evaluated on a byte-denominated queue."""
        return self.red.marking_probability(queue_bytes / self.mtu_bytes)

    def should_mark(self, queue_bytes: float) -> bool:
        """Bernoulli trial at the Eq. 3 probability."""
        self.mark_trials += 1
        p = self.marking_probability(queue_bytes)
        if p <= 0.0:
            return False
        if p >= 1.0:
            self.marks += 1
            return True
        marked = bool(self._rng.random() < p)
        if marked:
            self.marks += 1
        return marked

    def update(self, queue_bytes: float, now: float) -> None:
        """RED is memoryless; periodic updates are a no-op.

        Present so the switch can treat RED and PI markers uniformly.
        """

    #: RED needs no periodic controller updates.
    update_interval = None
