"""Flow bookkeeping: identities, sizes, and completion times."""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional


class Flow:
    """One transfer from ``src`` host to ``dst`` host.

    ``size_bytes=None`` marks a long-lived flow (never completes);
    otherwise the flow completes when the receiver has taken delivery
    of every byte, and the flow completion time (FCT) is measured from
    ``start_time`` (flow arrival) to last-byte delivery -- the pFabric
    convention the paper follows in Section 5.1.
    """

    __slots__ = ("flow_id", "src", "dst", "size_bytes", "start_time",
                 "bytes_sent", "bytes_delivered", "completion_time")

    def __init__(self, flow_id: int, src: str, dst: str,
                 size_bytes: Optional[int], start_time: float):
        if size_bytes is not None and size_bytes <= 0:
            raise ValueError(
                f"size_bytes must be positive or None, got {size_bytes}")
        if start_time < 0:
            raise ValueError(f"start_time must be >= 0, got {start_time}")
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.size_bytes = size_bytes
        self.start_time = start_time
        self.bytes_sent = 0
        self.bytes_delivered = 0
        self.completion_time: Optional[float] = None

    @property
    def is_long_lived(self) -> bool:
        return self.size_bytes is None

    @property
    def completed(self) -> bool:
        return self.completion_time is not None

    @property
    def fct(self) -> float:
        """Flow completion time, seconds."""
        if self.completion_time is None:
            raise ValueError(
                f"flow {self.flow_id} has not completed")
        return self.completion_time - self.start_time

    def all_bytes_sent(self) -> bool:
        """Whether the sender has emitted the full flow size."""
        return self.size_bytes is not None and \
            self.bytes_sent >= self.size_bytes

    def __repr__(self) -> str:
        size = "long-lived" if self.size_bytes is None \
            else f"{self.size_bytes}B"
        state = f"done@{self.completion_time:.6f}" if self.completed \
            else f"{self.bytes_delivered}B delivered"
        return (f"<Flow {self.flow_id} {self.src}->{self.dst} {size} "
                f"{state}>")


class FlowRegistry:
    """Factory and lookup table for every flow in a simulation."""

    def __init__(self):
        self._ids = itertools.count()
        self.flows: Dict[int, Flow] = {}

    def create(self, src: str, dst: str, size_bytes: Optional[int],
               start_time: float) -> Flow:
        """Allocate a flow with a fresh id."""
        flow = Flow(next(self._ids), src, dst, size_bytes, start_time)
        self.flows[flow.flow_id] = flow
        return flow

    def __getitem__(self, flow_id: int) -> Flow:
        return self.flows[flow_id]

    def __len__(self) -> int:
        return len(self.flows)

    def completed(self) -> List[Flow]:
        """All flows that finished, in completion order."""
        done = [f for f in self.flows.values() if f.completed]
        done.sort(key=lambda f: f.completion_time)
        return done

    def incomplete(self) -> List[Flow]:
        """Finite flows that have not finished yet."""
        return [f for f in self.flows.values()
                if not f.completed and not f.is_long_lived]
