"""Simulation watchdogs: periodic invariant checks and deadlock detection.

Fault injection (:mod:`repro.sim.faults`) makes it easy to push the
simulator into regimes the paper never exercised -- lossy feedback,
dark links, PFC storms.  The :class:`InvariantMonitor` rides along any
simulation and verifies, on a fixed cadence, that the physics still
hold:

* **Queue conservation** -- every port FIFO's byte counter matches its
  queued packets, and lifetime enqueued bytes equal dequeued bytes
  plus occupancy (:meth:`repro.sim.queues.ByteFIFO.audit`).
* **Serializer accounting** -- a port never transmits more bytes than
  its queues released, and the gap is exactly one in-flight packet.
* **Non-negative, finite rates** -- no sender's rate goes zero,
  negative, NaN or infinite.
* **PFC pairing** -- pauses minus resumes equals the number of
  currently-paused upstreams, and per-upstream buffered bytes never
  go negative.
* **PFC deadlock** -- pauses outstanding while no data bytes make
  progress anywhere for several consecutive checks: the signature of
  a cyclic buffer dependency (or a pause whose resume was lost).

Violations are recorded as structured :class:`InvariantViolation`
rows; ``strict=True`` stops the simulation on the first one so the
offending state is still inspectable.  A clean run reports
``violations == []``, which experiments and tests assert via
:meth:`InvariantMonitor.assert_clean`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.engine import Simulator
from repro.sim.link import Port
from repro.sim.pfc import PFCController


@dataclass(frozen=True)
class InvariantViolation:
    """One failed check: when, which invariant, and the evidence."""

    time: float
    check: str
    subject: str
    detail: str

    def __str__(self) -> str:
        return (f"[t={self.time:.6f}s] {self.check} on {self.subject}: "
                f"{self.detail}")


class InvariantMonitor:
    """Periodic auditor for a running simulation.

    Parameters
    ----------
    sim:
        The simulation to audit.
    ports:
        Ports to conservation-check, keyed by name.  Usually
        :func:`repro.sim.faults.collect_ports` output.
    senders:
        Label -> sender agents whose ``rate`` must stay positive and
        finite.
    pfcs:
        Label -> :class:`~repro.sim.pfc.PFCController` to audit for
        pause/resume pairing and deadlock.
    interval:
        Audit cadence, simulated seconds.
    deadlock_checks:
        Consecutive no-progress-while-paused audits that constitute a
        PFC deadlock.
    strict:
        Stop the simulation (``sim.stop()``) on the first violation.
    """

    def __init__(self, sim: Simulator,
                 ports: Optional[Dict[str, Port]] = None,
                 senders: Optional[Dict[str, object]] = None,
                 pfcs: Optional[Dict[str, PFCController]] = None,
                 interval: float = 1e-3,
                 deadlock_checks: int = 3,
                 strict: bool = False):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if deadlock_checks < 1:
            raise ValueError(
                f"deadlock_checks must be >= 1, got {deadlock_checks}")
        self.sim = sim
        self.ports = dict(ports or {})
        self.senders = dict(senders or {})
        self.pfcs = dict(pfcs or {})
        self.interval = interval
        self.deadlock_checks = deadlock_checks
        self.strict = strict
        self.violations: List[InvariantViolation] = []
        self.checks_run = 0
        self._stalled_audits = 0
        self._last_data_bytes = self._total_transmitted()
        self._deadlock_reported = False
        sim.schedule(interval, self._audit)

    @classmethod
    def for_network(cls, network: object, **kwargs) -> "InvariantMonitor":
        """Build a monitor covering a whole ``Network``."""
        from repro.sim.faults import collect_ports
        senders = {f"flow{fid}": sender for fid, sender
                   in getattr(network, "senders", {}).items()}
        pfcs = {name: switch.pfc
                for name, switch in getattr(network, "switches", {}).items()
                if getattr(switch, "pfc", None) is not None}
        return cls(network.sim, ports=collect_ports(network),
                   senders=senders, pfcs=pfcs, **kwargs)

    # -- audit loop -----------------------------------------------------------

    def _audit(self) -> None:
        self.checks_run += 1
        self._check_ports()
        self._check_senders()
        self._check_pfc()
        self._check_deadlock()
        if not (self.strict and self.violations):
            self.sim.schedule(self.interval, self._audit)

    def _record(self, check: str, subject: str, detail: str) -> None:
        self.violations.append(
            InvariantViolation(self.sim.now, check, subject, detail))
        if self.strict:
            self.sim.stop()

    def _check_ports(self) -> None:
        for name, port in self.ports.items():
            queues = [("data", port.queue)]
            if port.control_queue is not None:
                queues.append(("control", port.control_queue))
            released = 0
            for label, fifo in queues:
                problem = fifo.audit()
                if problem is not None:
                    self._record("queue_conservation",
                                 f"{name}/{label}", problem)
                released += fifo.dequeued_bytes
            gap = released - port.bytes_transmitted
            if gap < 0:
                self._record(
                    "serializer_accounting", name,
                    f"transmitted {port.bytes_transmitted} bytes but "
                    f"queues only released {released}")
            elif gap == 0 and port.busy:
                self._record(
                    "serializer_accounting", name,
                    "busy with no dequeued packet outstanding")
            elif gap > 0 and not port.busy:
                self._record(
                    "serializer_accounting", name,
                    f"idle with {gap} dequeued bytes unaccounted")

    def _check_senders(self) -> None:
        for label, sender in self.senders.items():
            rate = getattr(sender, "rate", None)
            if rate is None:
                continue  # window-based sender (DCTCP): no rate state
            if not math.isfinite(rate) or rate <= 0:
                self._record("sender_rate", label,
                             f"rate is {rate!r} (must be finite and > 0)")

    def _check_pfc(self) -> None:
        for name, pfc in self.pfcs.items():
            paused = pfc.paused_upstreams()
            balance = pfc.pauses_sent - pfc.resumes_sent
            if balance != len(paused):
                self._record(
                    "pfc_pairing", name,
                    f"pauses {pfc.pauses_sent} - resumes "
                    f"{pfc.resumes_sent} = {balance}, but "
                    f"{len(paused)} upstreams paused: {paused}")
            for label in pfc.upstream_labels():
                buffered = pfc.buffered_bytes(label)
                if buffered < 0:
                    self._record(
                        "pfc_accounting", f"{name}/{label}",
                        f"buffered bytes negative: {buffered}")

    def _total_transmitted(self) -> int:
        return sum(port.bytes_transmitted for port in self.ports.values())

    def _check_deadlock(self) -> None:
        any_paused = any(pfc.paused_upstreams()
                         for pfc in self.pfcs.values())
        total = self._total_transmitted()
        progressed = total > self._last_data_bytes
        self._last_data_bytes = total
        if not any_paused or progressed:
            self._stalled_audits = 0
            self._deadlock_reported = False
            return
        self._stalled_audits += 1
        if self._stalled_audits >= self.deadlock_checks \
                and not self._deadlock_reported:
            self._deadlock_reported = True
            paused = {name: pfc.paused_upstreams()
                      for name, pfc in self.pfcs.items()
                      if pfc.paused_upstreams()}
            self._record(
                "pfc_deadlock", "fabric",
                f"no transmission progress for {self._stalled_audits} "
                f"audits ({self._stalled_audits * self.interval:.6f}s) "
                f"with pauses outstanding: {paused}")

    # -- reporting ------------------------------------------------------------

    @property
    def clean(self) -> bool:
        """True when no invariant has been violated so far."""
        return not self.violations

    def assert_clean(self) -> None:
        """Raise ``AssertionError`` listing any recorded violations."""
        if self.violations:
            lines = "\n".join(str(v) for v in self.violations)
            raise AssertionError(
                f"{len(self.violations)} invariant violation(s):\n{lines}")

    def report(self) -> str:
        """Human-readable audit summary."""
        if not self.violations:
            return (f"invariants clean: {self.checks_run} audits, "
                    f"0 violations")
        lines = [f"{len(self.violations)} violation(s) in "
                 f"{self.checks_run} audits:"]
        lines += [f"  {v}" for v in self.violations]
        return "\n".join(lines)
