"""Hybrid fluid/packet execution: elephants as ODEs, mice as packets.

The packet engine's cost scales with packets on the wire; long-lived
("elephant") flows dominate that cost while their aggregate behaviour
is exactly what the paper's fluid model (Fig. 1, Eqs. 4-7) describes
well.  Hybrid mode therefore splits the flow population:

* **Elephants** (``size_bytes=None``) are *not* installed as packet
  agents.  Their DCQCN RP state (``alpha``, ``R_T``, ``R_C``) and
  their share of the bottleneck queue advance on a fixed tick via an
  explicit-Euler step of the same Eq. 4-7 right-hand side the fluid
  backend integrates (:func:`repro.core.fluid.dcqcn.qcn_event_rates`),
  with the control-loop delay ``tau*`` realized by a ring buffer of
  past states.
* **Mice** (finite flows) stay packet-accurate on the event engine.

Coupling, both directions, at the bottleneck port:

* *fluid -> packet*: the fluid backlog is added to the queue
  occupancy the port's ECN marker sees (:class:`CoupledMarker`), so
  mice experience the elephants' congestion; the port's service rate
  is scaled down by the elephants' bandwidth share each tick, so mice
  get only the residual capacity.
* *packet -> fluid*: packet-mode bytes actually transmitted through
  the port during a tick reduce the capacity available to the fluid
  queue in Eq. 4, and the packet queue occupancy is included in the
  delayed queue the fluid marking probability is evaluated on.

What hybrid mode is for -- and not for
--------------------------------------

The fluid step reproduces *aggregate* queue trajectories and rate
dynamics (validated statistically against the packet oracle; see
``tests/test_hybrid.py`` and the bench's compat gate), at a fraction
of the event cost: a tick costs one event regardless of how many
packets the elephants would have generated.  It does not reproduce
per-packet artifacts -- RED sampling noise, packet-granularity
sawtooth, PFC interactions (topologies with PFC reject hybrid
installation).  Use it for parameter sweeps and mice-FCT studies on
top of elephant background traffic, not for bit-exact validation.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

import numpy as np

from repro.core.fluid.dcqcn import MIN_RATE, qcn_event_rates
from repro.core.params import DCQCNParams
from repro.obs import metrics as _metrics
from repro.sim.topology import Network

#: Fluid bandwidth share above which mice would be starved outright;
#: the service-rate scaling floors the residual at this fraction.
MIN_RESIDUAL_FRACTION = 0.02

#: Default coupling tick, seconds.  Small enough to resolve the
#: paper's control-loop delays (tau* >= 4 us, the Fig. 5 pathology at
#: 85 us) while keeping one-event-per-tick cost negligible.
DEFAULT_TICK = 2e-6

#: Time constant, seconds, of the exponential moving average the
#: tail-drift signal is measured against -- long enough to smooth
#: over RED sampling noise, short enough to track the Fig. 5 limit
#: cycle's period.
DRIFT_EMA_WINDOW = 1e-3


class CoupledMarker:
    """Marker shim adding the fluid backlog to the marker's queue view.

    Wraps the port's real marker: every packet-path marking decision
    sees ``occupancy + fluid_backlog_bytes``, so mice are marked as if
    the elephants' queue were physically present.  Counters and the
    periodic-update contract delegate to the wrapped marker.
    """

    def __init__(self, inner, coupler: "HybridDCQCNCoupler"):
        self.inner = inner
        self.coupler = coupler

    @property
    def update_interval(self):
        return self.inner.update_interval

    @property
    def mark_trials(self):
        return self.inner.mark_trials

    @property
    def marks(self):
        return self.inner.marks

    def marking_probability(self, queue_bytes: float) -> float:
        return self.inner.marking_probability(
            queue_bytes + self.coupler.fluid_backlog_bytes)

    def should_mark(self, queue_bytes: float) -> bool:
        return self.inner.should_mark(
            queue_bytes + self.coupler.fluid_backlog_bytes)

    def update(self, queue_bytes: float, now: float) -> None:
        self.inner.update(
            queue_bytes + self.coupler.fluid_backlog_bytes, now)


class HybridDCQCNCoupler:
    """Tick-stepped DCQCN fluid elephants coupled to a packet network.

    Parameters
    ----------
    net:
        A built :func:`~repro.sim.topology.single_switch` network
        (``engine="hybrid"``).  The coupler attaches to its bottleneck
        port.
    params:
        DCQCN configuration; ``params.num_flows`` elephants are
        simulated (their count is the fluid model's ``N``).
    tick:
        Coupling step, seconds (explicit Euler; keep well under the
        protocol time constants).
    extra_feedback_delay:
        Added to ``params.tau_star`` for the control-loop lag, the
        same knob the packet topology's ``feedback_extra_delay``
        turns.
    """

    def __init__(self, net: Network, params: DCQCNParams,
                 tick: float = DEFAULT_TICK,
                 extra_feedback_delay: float = 0.0):
        if net.engine != "hybrid":
            raise ValueError(
                f"hybrid coupling needs a network built with "
                f"engine='hybrid', got {net.engine!r}")
        if tick <= 0:
            raise ValueError(f"tick must be positive, got {tick}")
        for switch in net.switches.values():
            if switch.pfc is not None:
                raise ValueError(
                    "hybrid mode does not model PFC; use the packet "
                    "engine for lossless-fabric experiments")
        self.net = net
        self.params = params
        self.tick = float(tick)
        self.n = params.num_flows
        self.port = net.bottleneck_port
        self.mtu = params.mtu_bytes
        #: Full line rate, bytes/s, before residual scaling.
        self.line_rate_bytes = self.port.rate
        #: Bottleneck capacity in the fluid unit (packets/s).
        self.capacity_pkts = self.line_rate_bytes / self.mtu

        # Fluid state: elephants start at line rate with alpha = 1,
        # exactly like packet DCQCN senders (Section 3.1).
        self.alpha = np.ones(self.n)
        self.rt = np.full(self.n, self.capacity_pkts)
        self.rc = np.full(self.n, self.capacity_pkts)
        #: Elephant backlog contribution, packets (fluid Eq. 4 queue).
        self.q_fluid = 0.0

        # Delay line: one (total queue pkts, rc vector) entry per tick,
        # long enough to look back tau* + extra.
        self.lag = params.tau_star + extra_feedback_delay
        depth = max(int(round(self.lag / self.tick)), 1) + 1
        self._history: deque = deque(maxlen=depth)
        self._lag_index = depth - 1

        self._last_tx_bytes = self.port.bytes_transmitted
        self._started = False
        #: Tick-resolution trace of (time, total queue bytes), the
        #: hybrid counterpart of a :class:`QueueMonitor` series.
        self.times: List[float] = []
        self.queue_bytes_trace: List[float] = []

        # Drift telemetry: latest residual fraction granted to the
        # mice, an EMA of the total queue the tail-drift signal is
        # measured against, and the gauges cached per registry so the
        # tick pays name-lookup cost only when telemetry flips.
        self._last_residual = 1.0
        self._queue_ema = 0.0
        self._gauge_registry = None
        self._gauges = None

        if self.port.marker is not None:
            self.port.marker = CoupledMarker(self.port.marker, self)

    # -- coupling views -------------------------------------------------------

    @property
    def fluid_backlog_bytes(self) -> float:
        """Elephant queue contribution, bytes."""
        return self.q_fluid * self.mtu

    @property
    def total_queue_bytes(self) -> float:
        """Shared bottleneck queue: packet occupancy + fluid backlog."""
        return self.port.queue.size_bytes + self.fluid_backlog_bytes

    @property
    def elephant_rates(self) -> np.ndarray:
        """Current elephant rates, bytes/s."""
        return self.rc * self.mtu

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Begin tick stepping (idempotent guard, like senders)."""
        if self._started:
            raise RuntimeError("hybrid coupler already started")
        self._started = True
        self.net.sim.schedule(self.tick, self._step)

    def _delayed(self):
        """(queue pkts, rc) one control-loop delay ago."""
        if len(self._history) <= self._lag_index:
            # Startup transient: nothing old enough yet; the packet
            # engine has the same blind spot (first CNPs take tau* to
            # arrive), so mirror it with the oldest known state.
            if self._history:
                return self._history[0]
            return 0.0, self.rc
        return self._history[-1 - self._lag_index]

    def _step(self) -> None:
        p = self.params
        dt = self.tick
        now = self.net.sim.now

        # packet -> fluid: bytes the mice actually pushed through the
        # bottleneck this tick consume capacity the fluid queue cannot
        # use (Eq. 4 with a measured cross-traffic term).
        tx = self.port.bytes_transmitted
        mice_pkts_per_s = (tx - self._last_tx_bytes) / self.mtu / dt
        self._last_tx_bytes = tx

        delayed_q, delayed_rc = self._delayed()
        mark_p = p.red.marking_probability(delayed_q)
        delayed_rc = np.maximum(delayed_rc, MIN_RATE)
        events = qcn_event_rates(mark_p, delayed_rc, p)

        # Eq. 4 (queue), 5 (alpha), 6 (target), 7 (rate) -- the same
        # right-hand side as DCQCNFluidModel.derivatives, advanced one
        # Euler step at tick resolution.
        dq = float(np.sum(self.rc)) + mice_pkts_per_s - self.capacity_pkts
        if self.q_fluid <= 0.0 and dq < 0.0:
            dq = 0.0
        if mark_p > 0.0:
            alpha_target = -np.expm1(
                p.tau_prime * delayed_rc
                * np.log1p(-min(mark_p, 1.0 - 1e-12)))
        else:
            alpha_target = np.zeros(self.n)
        dalpha = (p.g / p.tau_prime) * (alpha_target - self.alpha)
        drt = (-(self.rt - self.rc) / p.tau * events.mark_fraction
               + p.rate_ai * (events.byte_ai_rate
                              + events.timer_ai_rate))
        drc = (-(self.rc * self.alpha) / (2.0 * p.tau)
               * events.mark_fraction
               + (self.rt - self.rc) / 2.0
               * (events.byte_rate + events.timer_rate))

        self.q_fluid = max(self.q_fluid + dq * dt, 0.0)
        self.alpha = np.clip(self.alpha + dalpha * dt, 0.0, 1.0)
        self.rt = np.clip(self.rt + drt * dt, MIN_RATE,
                          self.capacity_pkts)
        self.rc = np.clip(self.rc + drc * dt, MIN_RATE,
                          self.capacity_pkts)

        # fluid -> packet: mice serve at the residual line rate.
        share = min(float(np.sum(self.rc)) / self.capacity_pkts, 1.0)
        residual = max(1.0 - share, MIN_RESIDUAL_FRACTION)
        self.port.rate = self.line_rate_bytes * residual
        self._last_residual = residual

        total_q_bytes = self.total_queue_bytes
        total_q_pkts = total_q_bytes / self.mtu
        self._history.append((total_q_pkts, self.rc))
        self.times.append(now)
        self.queue_bytes_trace.append(total_q_bytes)

        # Drift telemetry: each tick already aggregates the whole
        # packet interval, so publishing here honours the
        # aggregation-point rule; with the null registry the three
        # sets are inert no-ops next to the tick's numpy work.
        self._queue_ema += (total_q_bytes - self._queue_ema) \
            * min(dt / DRIFT_EMA_WINDOW, 1.0)
        delta_g, residual_g, drift_g = self._drift_gauges()
        delta_g.set(self.fluid_backlog_bytes
                    - self.port.queue.size_bytes)
        residual_g.set(residual)
        drift_g.set(total_q_bytes - self._queue_ema)

        self.net.sim.schedule(dt, self._step)

    def _drift_gauges(self):
        """The three ``sim.hybrid.*`` gauges, re-resolved only when
        the active registry changes identity (telemetry toggled)."""
        registry = _metrics.get_registry()
        if registry is not self._gauge_registry:
            self._gauge_registry = registry
            self._gauges = (
                registry.gauge("sim.hybrid.backlog_delta_bytes"),
                registry.gauge("sim.hybrid.rate_residual"),
                registry.gauge("sim.hybrid.tail_drift_bytes"))
        return self._gauges

    def drift_signals(self) -> dict:
        """Current fluid-vs-packet divergence signals.

        The dict's keys are the signal names
        :class:`repro.obs.health.HybridDriftDetector` consumes:

        ``hybrid_backlog_delta_bytes``
            Fluid backlog minus packet queue occupancy -- where the
            two halves disagree about the bytes at the bottleneck.
        ``hybrid_queue_bytes``
            Total shared queue (packet + fluid), the scale the delta
            is judged against.
        ``hybrid_rate_residual``
            Fraction of line rate granted to the packet mice after
            the elephants' share (clamped at
            :data:`MIN_RESIDUAL_FRACTION`).
        ``hybrid_tail_drift_bytes``
            Total queue minus its :data:`DRIFT_EMA_WINDOW` moving
            average -- how fast the operating point is moving.
        """
        total = self.total_queue_bytes
        return {
            "hybrid_backlog_delta_bytes":
                self.fluid_backlog_bytes - self.port.queue.size_bytes,
            "hybrid_queue_bytes": total,
            "hybrid_rate_residual": self._last_residual,
            "hybrid_tail_drift_bytes": total - self._queue_ema,
        }

    # -- analysis helpers -----------------------------------------------------

    def as_arrays(self) -> "tuple[np.ndarray, np.ndarray]":
        """Queue trace as ``(times, queue_bytes)`` arrays."""
        return np.asarray(self.times), np.asarray(self.queue_bytes_trace)

    def tail_mean_bytes(self, window: float) -> float:
        """Mean total queue over the trailing ``window`` seconds."""
        times, queue = self.as_arrays()
        if times.size == 0:
            return 0.0
        mask = times >= (times[-1] - window)
        return float(queue[mask].mean())

    def tail_std_bytes(self, window: float) -> float:
        """Std-dev of the total queue over the trailing window."""
        times, queue = self.as_arrays()
        if times.size == 0:
            return 0.0
        mask = times >= (times[-1] - window)
        return float(queue[mask].std())


def attach_hybrid(net: Network, params: DCQCNParams,
                  tick: float = DEFAULT_TICK,
                  extra_feedback_delay: float = 0.0,
                  start: bool = True) -> HybridDCQCNCoupler:
    """Build (and by default start) a hybrid coupler on ``net``.

    The elephants are ``params.num_flows`` long-lived DCQCN flows;
    finite mice flows are installed separately through the usual
    :func:`~repro.sim.topology.install_flow` packet path.
    """
    coupler = HybridDCQCNCoupler(
        net, params, tick=tick,
        extra_feedback_delay=extra_feedback_delay)
    if start:
        coupler.start()
    return coupler


def attach_drift_monitor(coupler: HybridDCQCNCoupler,
                         interval: float,
                         window: Optional[float] = None,
                         context: str = "",
                         stop: Optional[float] = None,
                         session=None):
    """Attach a :class:`~repro.obs.health.HybridDriftDetector` to a
    running coupler.

    Samples :meth:`HybridDCQCNCoupler.drift_signals` every
    ``interval`` seconds of sim time through the engine's
    ``sample_every`` hook and feeds them to a
    :class:`~repro.obs.health.HealthMonitor`, turning sustained
    fluid-vs-packet divergence into health findings.  Mirrors
    :func:`repro.obs.health.attach_packet_health`: returns ``None``
    without touching the simulation when no health session is active,
    so hybrid runs stay zero-cost while telemetry is off.  Call
    ``finalize()`` on the returned monitor after ``sim.run``.
    """
    from repro.obs import health as _health
    if session is None:
        session = _health.current_session()
    if session is None:
        return None
    detector = _health.HybridDriftDetector(
        window=window if window is not None else 10 * interval)
    monitor = _health.HealthMonitor([detector], context=context,
                                    session=session)

    def sample(now: float) -> None:
        monitor.sample(now, **coupler.drift_signals())

    coupler.net.sim.sample_every(interval, sample, stop=stop)
    return monitor
