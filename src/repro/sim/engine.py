"""Discrete-event simulation engine.

A minimal, fast event loop in the style of ns-3's scheduler: events are
``(time, sequence, callback)`` triples in a binary heap; the sequence
number makes ordering deterministic for simultaneous events (FIFO by
scheduling order), which keeps every simulation in this package exactly
reproducible.

Components never advance time themselves; they schedule callbacks and
read :attr:`Simulator.now`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional


class Event:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("time", "callback", "cancelled")

    def __init__(self, time: float, callback: Callable[[], Any]):
        self.time = time
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing (lazy removal in the heap)."""
        self.cancelled = True


class Simulator:
    """Event-driven simulation clock and scheduler."""

    def __init__(self):
        self._now = 0.0
        self._heap: list = []
        self._sequence = itertools.count()
        self._running = False
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time, seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (for perf reporting)."""
        return self._processed

    def schedule(self, delay: float, callback: Callable[[], Any]) -> Event:
        """Run ``callback`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float,
                    callback: Callable[[], Any]) -> Event:
        """Run ``callback`` at absolute simulated time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now={self._now}")
        event = Event(time, callback)
        heapq.heappush(self._heap, (time, next(self._sequence), event))
        return event

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Process events in time order.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time (the clock is left
            at ``until``).  None runs until the heap empties.
        max_events:
            Safety valve against runaway event storms.
        """
        self._running = True
        processed = 0
        heap = self._heap
        while heap and self._running:
            time, _seq, event = heap[0]
            if until is not None and time > until:
                break
            heapq.heappop(heap)
            if event.cancelled:
                continue
            self._now = time
            event.callback()
            processed += 1
            self._processed += 1
            if max_events is not None and processed >= max_events:
                raise RuntimeError(
                    f"exceeded max_events={max_events} at t={self._now:.6f}")
        if until is not None and self._now < until:
            self._now = until
        self._running = False

    def stop(self) -> None:
        """Abort :meth:`run` after the current callback returns."""
        self._running = False
